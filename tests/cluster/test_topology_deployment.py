"""Unit tests for topologies and cluster deployment."""

import pytest

from repro.cluster import TopologyConfig, build_cluster, region_rtt_ms
from repro.cluster.topology import DataNodeSpec, MiddlewareSpec
from repro.middleware import ModuloPartitioner
from repro.sim import JitterLatency


def test_region_rtt_lookup():
    assert region_rtt_ms("beijing", "beijing") == 0.0
    assert region_rtt_ms("beijing", "london") == 251.0
    assert region_rtt_ms("London", "Beijing") == 251.0
    with pytest.raises(KeyError):
        region_rtt_ms("beijing", "mars")


def test_paper_default_topology_matches_paper_rtts():
    topology = TopologyConfig.paper_default()
    assert topology.node_names() == ["ds0", "ds1", "ds2", "ds3"]
    dm = topology.middlewares[0]
    rtts = [topology.middleware_link_model(dm, node).rtt_at(0)
            for node in topology.data_nodes]
    assert rtts == [0.0, 27.0, 73.0, 251.0]


def test_from_rtts_topology_and_validation():
    topology = TopologyConfig.from_rtts([10, 50, 90])
    dm = topology.middlewares[0]
    assert [topology.middleware_link_model(dm, n).rtt_at(0)
            for n in topology.data_nodes] == [10, 50, 90]
    with pytest.raises(ValueError):
        TopologyConfig.from_rtts([])
    with pytest.raises(ValueError):
        TopologyConfig.paper_default(num_nodes=9)
    with pytest.raises(ValueError):
        TopologyConfig(data_nodes=[])
    with pytest.raises(ValueError):
        TopologyConfig(data_nodes=[DataNodeSpec(name="a"), DataNodeSpec(name="a")])


def test_from_latency_models_uses_given_models():
    model = JitterLatency(40, std_ms=5)
    topology = TopologyConfig.from_latency_models([model, model])
    dm = topology.middlewares[0]
    assert topology.middleware_link_model(dm, topology.data_nodes[0]) is model


def test_multi_middleware_topology_places_second_dm_remotely():
    topology = TopologyConfig.multi_middleware()
    assert len(topology.middlewares) == 2
    dm2 = topology.middlewares[1]
    # dm2 is co-located with the last (London) data node.
    assert topology.middleware_link_model(dm2, topology.data_nodes[-1]).rtt_at(0) == 0.0
    assert topology.middleware_link_model(dm2, topology.data_nodes[0]).rtt_at(0) == 251.0


def test_multi_middleware_scales_to_k_coordinators():
    for k in (1, 3, 4):
        topology = TopologyConfig.multi_middleware(num_middlewares=k)
        assert [m.name for m in topology.middlewares] == [
            f"dm{i + 1}" for i in range(k)]
        # Beyond the legacy K=2 geo-split, the fleet is co-located.
        if k != 2:
            assert {m.region for m in topology.middlewares} == {"beijing"}
    custom = TopologyConfig.multi_middleware(
        num_middlewares=2, middleware_regions=["beijing", "beijing"])
    assert {m.region for m in custom.middlewares} == {"beijing"}
    with pytest.raises(ValueError):
        TopologyConfig.multi_middleware(num_middlewares=0)
    with pytest.raises(ValueError):
        TopologyConfig.multi_middleware(num_middlewares=2,
                                        middleware_regions=["beijing"])


def test_duplicate_middleware_names_are_rejected():
    # Txn-id prefixes key recovery ownership and per-middleware attribution,
    # so two coordinators must never share a name.
    with pytest.raises(ValueError, match="middleware names"):
        TopologyConfig(data_nodes=[DataNodeSpec(name="ds0")],
                       middlewares=[MiddlewareSpec(name="dm1"),
                                    MiddlewareSpec(name="dm1")])


def test_cluster_middleware_named_lookup():
    topology = TopologyConfig.multi_middleware()
    cluster = build_cluster("ssp", topology,
                            ModuloPartitioner(topology.node_names()))
    assert cluster.middleware_named("dm2").name == "dm2"
    with pytest.raises(KeyError, match="dm9"):
        cluster.middleware_named("dm9")


def test_rtt_overrides_take_precedence():
    topology = TopologyConfig(
        data_nodes=[DataNodeSpec(name="ds0", region="beijing", rtt_to_dm_ms=40.0)],
        middlewares=[MiddlewareSpec(rtt_overrides={"ds0": 5.0})])
    dm = topology.middlewares[0]
    assert topology.middleware_link_model(dm, topology.data_nodes[0]).rtt_at(0) == 5.0


def test_build_cluster_for_every_supported_system():
    from repro.cluster import SUPPORTED_SYSTEMS, get_system_plugin
    for system in SUPPORTED_SYSTEMS:
        topology = TopologyConfig.from_rtts([5, 30])
        partitioner = ModuloPartitioner(topology.node_names())
        cluster = build_cluster(system, topology, partitioner)
        assert cluster.system == system
        assert set(cluster.datasources) == {"ds0", "ds1"}
        assert len(cluster.middlewares) == 1
        # Geo-agents are wired exactly when the plugin's capability asks for
        # them — the deployment must not special-case any system name.
        if get_system_plugin(system).needs_agents:
            assert set(cluster.agents) == {"ds0", "ds1"}
        else:
            assert cluster.agents == {}


def test_build_cluster_accepts_aliases_and_rejects_unknown():
    topology = TopologyConfig.from_rtts([5])
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("ScalarDB+", topology, partitioner)
    assert cluster.system == "scalardb_plus"
    cluster = build_cluster("YugabyteDB", topology, partitioner)
    assert cluster.system == "yugabyte"
    with pytest.raises(ValueError):
        build_cluster("oracle-rac", topology, partitioner)


def test_build_cluster_heterogeneous_dialects():
    topology = TopologyConfig.paper_default(dialects=["mysql", "postgresql",
                                                      "mysql", "postgresql"])
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("ssp", topology, partitioner)
    assert cluster.datasources["ds0"].dialect.name == "mysql"
    assert cluster.datasources["ds1"].dialect.name == "postgresql"


def test_yugabyte_coordinator_is_colocated_with_first_node():
    topology = TopologyConfig.paper_default()
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("yugabyte", topology, partitioner)
    assert cluster.network.rtt("dm", "ds0") == 0.0
    assert cluster.network.rtt("dm", "ds3") == region_rtt_ms("beijing", "london")
