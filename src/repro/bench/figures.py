"""Checked figure pipeline: sweep documents → sanity-checked paper figures.

The report layer that turns the JSON documents emitted by ``python -m
repro.bench run``/``chaos`` into the paper-shaped artifacts: throughput and
tail-latency knees vs offered load, availability timelines around fault
windows, fleet scale-out efficiency and the chaos invariant heatmap.

Two deliberate constraints shape the module:

* **No pandas.**  A figure's backing data is a plain dict-of-columns
  (:class:`Figure.columns`): equal-length lists keyed by column name.  That is
  all the structure the checks and the renderers need, and it keeps the bench
  layer dependency-free.
* **No unchecked artifacts** (the ``df_to_figure`` discipline from
  data-to-paper): every :class:`Figure` names the sanity checks registered
  for it — monotone offered-load axis, availability buckets summing to the
  collector totals, no NaNs, no empty series, complete heatmap grids — and
  :func:`emit_figures` refuses to write *any* file for a figure whose backing
  data fails one.  A violation is a loud, actionable message, not a quietly
  wrong PNG in a paper.

Rendering uses matplotlib when it is installed (the ``figures`` optional
dependency; CI installs it); without it the pipeline still runs every check
and writes the per-figure data JSONs, so the checked layer is exercised on
dependency-free machines too.  ``python -m repro.bench figures`` drives it.
"""

from __future__ import annotations

import importlib.util
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

# ----------------------------------------------------------------- the figure
@dataclass
class Figure:
    """One figure: columnar backing data plus everything needed to render it.

    ``columns`` is the dict-of-columns table; ``x``/``y`` name the plotted
    columns and ``series`` (optional) the column whose distinct values become
    plot series.  ``checks`` lists registered sanity-check names — all of
    them must pass before the figure may be emitted.  ``annotations`` carries
    check parameters and render hints (knee markers, fault windows, expected
    series, heatmap axes) as plain JSON-serialisable values.
    """

    name: str
    title: str
    kind: str                       # "line" | "timeline" | "heatmap"
    columns: Dict[str, List[Any]]
    x: str
    y: str
    x_label: str
    y_label: str
    series: Optional[str] = None
    checks: Tuple[str, ...] = ()
    annotations: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values()))) if self.columns else 0

    def series_values(self) -> List[Any]:
        """Distinct series values, in first-appearance order."""
        if self.series is None:
            return []
        seen: List[Any] = []
        for value in self.columns.get(self.series, []):
            if value not in seen:
                seen.append(value)
        return seen

    def rows_for(self, series_value: Any) -> List[int]:
        """Row indices belonging to one series value."""
        column = self.columns.get(self.series or "", [])
        return [i for i, value in enumerate(column) if value == series_value]

    def to_dict(self) -> Dict[str, Any]:
        """The JSON artifact written next to the rendered figure."""
        return {"name": self.name, "title": self.title, "kind": self.kind,
                "x": self.x, "y": self.y, "x_label": self.x_label,
                "y_label": self.y_label, "series": self.series,
                "checks": list(self.checks), "annotations": self.annotations,
                "columns": self.columns}


class FigureCheckError(RuntimeError):
    """Raised when a figure's backing data fails its sanity checks."""

    def __init__(self, figure_name: str, failures: Sequence[str]):
        self.figure_name = figure_name
        self.failures = list(failures)
        super().__init__(f"figure {figure_name!r} failed "
                         f"{len(self.failures)} sanity check(s):\n  - "
                         + "\n  - ".join(self.failures))


# ------------------------------------------------------------ check registry
#: Registered sanity checks: name -> callable returning failure messages.
FIGURE_CHECKS: Dict[str, Callable[[Figure], List[str]]] = {}


def figure_check(name: str):
    """Register a sanity check under ``name`` (used in ``Figure.checks``)."""
    def decorator(fn: Callable[[Figure], List[str]]):
        FIGURE_CHECKS[name] = fn
        return fn
    return decorator


def check_figure(figure: Figure) -> List[str]:
    """Run every check the figure names; returns all failure messages."""
    failures: List[str] = []
    for name in figure.checks:
        try:
            check = FIGURE_CHECKS[name]
        except KeyError:
            failures.append(f"check {name!r} is not registered "
                            f"(known: {sorted(FIGURE_CHECKS)})")
            continue
        failures.extend(f"[{name}] {message}" for message in check(figure))
    return failures


def assert_figure(figure: Figure) -> None:
    """Raise :class:`FigureCheckError` unless every named check passes."""
    failures = check_figure(figure)
    if failures:
        raise FigureCheckError(figure.name, failures)


def _is_bad_number(value: Any) -> bool:
    return isinstance(value, float) and not math.isfinite(value)


@figure_check("columns_aligned")
def _check_columns_aligned(figure: Figure) -> List[str]:
    """Every column exists, all columns share one nonzero length."""
    failures = []
    if not figure.columns:
        return ["figure has no columns at all"]
    lengths = {name: len(values) for name, values in figure.columns.items()}
    if len(set(lengths.values())) > 1:
        failures.append(f"columns have unequal lengths {lengths}; the "
                        f"dict-of-columns table must be rectangular")
    if min(lengths.values()) == 0:
        failures.append("columns are empty — there is no data to plot")
    for required in (figure.x, figure.y, *( [figure.series]
                                            if figure.series else [] )):
        if required not in figure.columns:
            failures.append(f"declared column {required!r} is missing from "
                            f"the data (have {sorted(figure.columns)})")
    return failures


@figure_check("no_nans")
def _check_no_nans(figure: Figure) -> List[str]:
    """No NaN/inf anywhere, and no ``None`` in the plotted x/y columns."""
    failures = []
    for name, values in figure.columns.items():
        for i, value in enumerate(values):
            if _is_bad_number(value):
                failures.append(f"column {name!r} row {i} is {value!r}; "
                                f"a non-finite value means the producing run "
                                f"or reshaping is broken")
            elif value is None and name in (figure.x, figure.y):
                failures.append(f"plotted column {name!r} row {i} is None")
    return failures


@figure_check("nonempty_series")
def _check_nonempty_series(figure: Figure) -> List[str]:
    """At least one row per expected series (no silently vanished system)."""
    if figure.series is None:
        return ["check requires a series column but the figure declares none"]
    present = figure.series_values()
    if not present:
        return [f"series column {figure.series!r} has no values"]
    expected = figure.annotations.get("expected_series")
    if expected:
        missing = [value for value in expected if value not in present]
        if missing:
            return [f"expected series {missing} are missing from the data "
                    f"(present: {present}); a system dropped out of the sweep"]
    return []


@figure_check("monotone_x")
def _check_monotone_x(figure: Figure) -> List[str]:
    """Within each series the x axis is strictly increasing.

    The offered-load and time axes must never fold back: a duplicate or
    out-of-order x value means rows were duplicated, shuffled or merged from
    incompatible sweeps.
    """
    failures = []
    xs = figure.columns.get(figure.x, [])
    groups = ([(value, figure.rows_for(value))
               for value in figure.series_values()]
              if figure.series else [("all", list(range(len(xs))))])
    for series_value, rows in groups:
        for prev, cur in zip(rows, rows[1:]):
            if not (xs[cur] > xs[prev]):
                failures.append(
                    f"series {series_value!r}: x ({figure.x}) is not "
                    f"strictly increasing at rows {prev}->{cur} "
                    f"({xs[prev]!r} -> {xs[cur]!r}); rows are duplicated or "
                    f"out of order")
                break
    return failures


@figure_check("buckets_sum_to_totals")
def _check_buckets_sum_to_totals(figure: Figure) -> List[str]:
    """Timeline buckets account for every counted transaction.

    ``annotations["totals"]`` carries the collector totals of the producing
    run; the committed/aborted columns must sum to them exactly (the
    availability buckets start at the warm-up boundary, so measured counters
    and buckets cover the same window).
    """
    totals = figure.annotations.get("totals")
    if not isinstance(totals, dict):
        return ["annotations['totals'] (collector totals) is missing — the "
                "builder must record what the buckets should sum to"]
    failures = []
    for column, expected in sorted(totals.items()):
        got = sum(figure.columns.get(column, []))
        if got != expected:
            failures.append(f"column {column!r} sums to {got} but the "
                            f"collector counted {expected}; buckets are "
                            f"dropping or double-counting transactions")
    return failures


@figure_check("heatmap_complete")
def _check_heatmap_complete(figure: Figure) -> List[str]:
    """The heatmap grid is complete and every cell value is a known status."""
    rows = figure.annotations.get("rows") or []
    cols = figure.annotations.get("cols") or []
    failures = []
    if not rows or not cols:
        failures.append("annotations['rows']/'cols' (the grid axes) are "
                        "missing or empty")
    expected = len(rows) * len(cols)
    if expected and figure.n_rows() != expected:
        failures.append(f"grid has {figure.n_rows()} cells but "
                        f"{len(rows)}x{len(cols)}={expected} are required; "
                        f"a scenario/invariant pair is missing or duplicated")
    allowed = {0.0, 0.5, 1.0}
    for i, value in enumerate(figure.columns.get(figure.y, [])):
        if value not in allowed:
            failures.append(f"cell {i} has status {value!r}; expected one of "
                            f"{sorted(allowed)} (fail / skipped / passed)")
            break
    return failures


# ------------------------------------------------------------- figure builders
_LINE_CHECKS = ("columns_aligned", "no_nans", "nonempty_series", "monotone_x")


def load_sweep_figures(document: Dict[str, Any]) -> List[Figure]:
    """Goodput and p99 vs offered rate, the knee marked per system."""
    scenario = document.get("scenario", "load_sweep")
    systems: List[str] = []
    columns: Dict[str, List[Any]] = {"system": [], "rate_tps": [],
                                     "goodput_tps": [], "p99_latency_ms": [],
                                     "drop_rate": []}
    for row in document.get("rows", []):
        params = row.get("params", {})
        if "rate_tps" not in params or row.get("open_loop") is None:
            continue
        system = params.get("system", row.get("system"))
        if system not in systems:
            systems.append(system)
        columns["system"].append(system)
        columns["rate_tps"].append(params["rate_tps"])
        columns["goodput_tps"].append(row["throughput_tps"])
        columns["p99_latency_ms"].append(row["p99_latency_ms"])
        columns["drop_rate"].append(row["open_loop"]["drop_rate"])
    knees = {}
    for system in systems:
        best, best_rate = -1.0, None
        for i, s in enumerate(columns["system"]):
            if s == system and columns["goodput_tps"][i] > best:
                best, best_rate = columns["goodput_tps"][i], columns["rate_tps"][i]
        knees[system] = {"rate_tps": best_rate, "goodput_tps": best}
    annotations = {"expected_series": systems, "knees": knees}
    return [
        Figure(name=f"{scenario}_goodput", kind="line",
               title="Goodput vs offered load (knee marked)",
               columns={k: list(v) for k, v in columns.items()},
               x="rate_tps", y="goodput_tps", series="system",
               x_label="offered load (tps)", y_label="goodput (tps)",
               checks=_LINE_CHECKS, annotations=dict(annotations)),
        Figure(name=f"{scenario}_p99", kind="line",
               title="p99 latency vs offered load",
               columns={k: list(v) for k, v in columns.items()},
               x="rate_tps", y="p99_latency_ms", series="system",
               x_label="offered load (tps)", y_label="p99 latency (ms)",
               checks=_LINE_CHECKS, annotations=dict(annotations)),
    ]


def availability_figures(document: Dict[str, Any]) -> List[Figure]:
    """Per-second availability timeline around the fault window, per row."""
    scenario = document.get("scenario", "faults")
    figures = []
    for row in document.get("rows", []):
        faults = row.get("faults")
        if not faults:
            continue
        availability = faults["availability"]
        series = availability["series"]
        columns = {"t_s": [bucket[0] / 1000.0 for bucket in series],
                   "committed": [bucket[1] for bucket in series],
                   "aborted": [bucket[2] for bucket in series]}
        label = "_".join(str(value) for value in row.get("params", {}).values()) \
            or row.get("system", "run")
        windows = [{"start_s": event["at_ms"] / 1000.0,
                    "end_s": (event["at_ms"] + event["duration_ms"]) / 1000.0,
                    "label": event["kind"]}
                   for event in faults.get("plan", [])]
        figures.append(Figure(
            name=f"{scenario}_availability_{label}", kind="timeline",
            title=f"Availability timeline — {scenario} ({label})",
            columns=columns, x="t_s", y="committed",
            x_label="simulated time (s)", y_label="transactions per bucket",
            checks=("columns_aligned", "no_nans", "monotone_x",
                    "buckets_sum_to_totals"),
            annotations={"windows": windows,
                         "totals": {"committed": row["committed"],
                                    "aborted": row["aborted"]}}))
    return figures


def fleet_scaleout_figures(document: Dict[str, Any]) -> List[Figure]:
    """Throughput and scale-out efficiency vs fleet size."""
    scenario = document.get("scenario", "fleet_scaleout")
    systems: List[str] = []
    columns: Dict[str, List[Any]] = {"system": [], "middleware_count": [],
                                     "throughput_tps": []}
    for row in document.get("rows", []):
        params = row.get("params", {})
        if "middleware_count" not in params:
            continue
        system = params.get("system")
        if system not in systems:
            systems.append(system)
        columns["system"].append(system)
        columns["middleware_count"].append(params["middleware_count"])
        columns["throughput_tps"].append(row["throughput_tps"])
    figures = [Figure(
        name=f"{scenario}_throughput", kind="line",
        title="Fleet scale-out: throughput vs coordinator count",
        columns={k: list(v) for k, v in columns.items()},
        x="middleware_count", y="throughput_tps", series="system",
        x_label="middlewares (K)", y_label="throughput (tps)",
        checks=_LINE_CHECKS,
        annotations={"expected_series": list(systems)})]
    baselines = {}
    for i, system in enumerate(columns["system"]):
        if columns["middleware_count"][i] == 1:
            baselines[system] = columns["throughput_tps"][i]
    if baselines:
        eff: Dict[str, List[Any]] = {"system": [], "middleware_count": [],
                                     "efficiency": []}
        for i, system in enumerate(columns["system"]):
            base = baselines.get(system)
            if not base:
                continue
            k = columns["middleware_count"][i]
            eff["system"].append(system)
            eff["middleware_count"].append(k)
            eff["efficiency"].append(columns["throughput_tps"][i] / (k * base))
        figures.append(Figure(
            name=f"{scenario}_efficiency", kind="line",
            title="Fleet scale-out efficiency (tps(K) / K·tps(1))",
            columns=eff, x="middleware_count", y="efficiency",
            series="system", x_label="middlewares (K)",
            y_label="scale-out efficiency",
            checks=_LINE_CHECKS,
            annotations={"expected_series": sorted(baselines)}))
    return figures


#: Invariant status -> heatmap cell value (the only values the check allows).
_INVARIANT_STATUS = {"failed": 0.0, "skipped": 0.5, "passed": 1.0}


def chaos_heatmap_figures(document: Dict[str, Any]) -> List[Figure]:
    """Scenario×invariant pass/fail heatmap from a ``chaos`` report document."""
    row_labels: List[str] = []
    cells: Dict[str, Dict[str, float]] = {}
    invariant_names: List[str] = []
    for entry in document.get("results", []):
        for point in entry.get("points", []):
            system = point.get("params", {}).get("system", "?")
            label = f"{entry['scenario']} [{system}]"
            row_labels.append(label)
            statuses = point.get("invariants") or {}
            cells[label] = {}
            for name, report in statuses.items():
                if name not in invariant_names:
                    invariant_names.append(name)
                cells[label][name] = _INVARIANT_STATUS.get(
                    report.get("status"), 0.0)
    columns: Dict[str, List[Any]] = {"scenario": [], "invariant": [],
                                     "status": []}
    for label in row_labels:
        for name in invariant_names:
            columns["scenario"].append(label)
            columns["invariant"].append(name)
            # An invariant missing from a point never ran there: skipped.
            columns["status"].append(cells[label].get(name, 0.5))
    return [Figure(
        name="chaos_invariants", kind="heatmap",
        title="Chaos matrix: robustness invariants per scenario",
        columns=columns, x="invariant", y="status", series="scenario",
        x_label="invariant", y_label="scenario",
        checks=("columns_aligned", "no_nans", "heatmap_complete"),
        annotations={"rows": row_labels, "cols": invariant_names})]


#: Builder registry in detection order; each predicate inspects the document.
FIGURE_BUILDERS: Tuple[Tuple[str, Callable[[Dict[str, Any]], bool],
                             Callable[[Dict[str, Any]], List[Figure]]], ...] = (
    ("chaos_heatmap",
     lambda doc: bool(doc.get("results")) and "scenarios_run" in doc,
     chaos_heatmap_figures),
    ("load_knee",
     lambda doc: any(row.get("open_loop") is not None
                     and "rate_tps" in row.get("params", {})
                     for row in doc.get("rows", [])),
     load_sweep_figures),
    ("fleet_scaleout",
     lambda doc: any("middleware_count" in row.get("params", {})
                     for row in doc.get("rows", [])),
     fleet_scaleout_figures),
    ("availability",
     lambda doc: any(row.get("faults") for row in doc.get("rows", [])),
     availability_figures),
)


def build_figures(document: Dict[str, Any]) -> List[Figure]:
    """All figures the applicable builders derive from ``document``."""
    figures: List[Figure] = []
    for _name, applies, builder in FIGURE_BUILDERS:
        if applies(document):
            figures.extend(builder(document))
    if not figures:
        raise ValueError(
            "no figure builder applies to this document; expected a "
            "`run` document of an open-system, fault, or fleet scenario, "
            "or a `chaos` report")
    return figures


# ------------------------------------------------------------------ rendering
def matplotlib_available() -> bool:
    """True when the optional ``figures`` dependency is importable."""
    return importlib.util.find_spec("matplotlib") is not None


#: Fixed categorical palette (validated colorblind-safe set, light mode) and
#: the stable system -> slot assignment: a system keeps its color across every
#: figure and filter, never its rank in one sweep.
_PALETTE = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4",
            "#008300", "#4a3aa7", "#e34948")
_SYSTEM_SLOTS = {"geotp": 0, "ssp": 1, "scalardb_plus": 2, "ssp_local": 3,
                 "scalardb": 4, "quro": 5, "chiller": 6, "yugabyte": 7}
#: Status colors (reserved; never used for plain series).
_STATUS_GOOD, _STATUS_BAD, _STATUS_NEUTRAL = "#0ca30c", "#e34948", "#f0efec"
_INK_PRIMARY, _INK_SECONDARY, _SURFACE = "#0b0b0b", "#52514e", "#fcfcfb"


def _series_color(series_value: Any, fallback_index: int) -> str:
    slot = _SYSTEM_SLOTS.get(str(series_value))
    if slot is None:
        slot = fallback_index % len(_PALETTE)
    return _PALETTE[slot]


def _style_axes(ax) -> None:
    ax.set_facecolor(_SURFACE)
    ax.grid(True, linewidth=0.6, alpha=0.25)
    ax.tick_params(colors=_INK_SECONDARY, labelsize=8)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(_INK_SECONDARY)


def render_figure(figure: Figure, path: Path) -> None:
    """Render one checked figure to ``path`` with matplotlib (Agg backend)."""
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6.4, 4.0), dpi=150)
    fig.patch.set_facecolor(_SURFACE)
    _style_axes(ax)
    if figure.kind == "heatmap":
        self_render = _render_heatmap
    elif figure.kind == "timeline":
        self_render = _render_timeline
    else:
        self_render = _render_line
    self_render(figure, ax, plt)
    ax.set_title(figure.title, color=_INK_PRIMARY, fontsize=10)
    fig.tight_layout()
    fig.savefig(path, facecolor=fig.get_facecolor())
    plt.close(fig)


def _render_line(figure: Figure, ax, plt) -> None:
    xs, ys = figure.columns[figure.x], figure.columns[figure.y]
    series_values = figure.series_values() or [None]
    for index, series_value in enumerate(series_values):
        rows = (figure.rows_for(series_value) if figure.series
                else list(range(len(xs))))
        color = _series_color(series_value, index)
        ax.plot([xs[i] for i in rows], [ys[i] for i in rows],
                color=color, linewidth=2, marker="o", markersize=6,
                label=str(series_value))
        knee = (figure.annotations.get("knees") or {}).get(series_value)
        if knee and knee.get("rate_tps") is not None \
                and figure.y == "goodput_tps":
            ax.plot([knee["rate_tps"]], [knee["goodput_tps"]], marker="o",
                    markersize=10, markerfacecolor="none",
                    markeredgecolor=color, markeredgewidth=2)
    ax.set_xlabel(figure.x_label, color=_INK_SECONDARY, fontsize=9)
    ax.set_ylabel(figure.y_label, color=_INK_SECONDARY, fontsize=9)
    if len(series_values) > 1:
        ax.legend(fontsize=8, frameon=False, labelcolor=_INK_PRIMARY)


def _render_timeline(figure: Figure, ax, plt) -> None:
    xs = figure.columns[figure.x]
    ax.plot(xs, figure.columns["committed"], color=_PALETTE[0], linewidth=2,
            marker="o", markersize=6, label="committed")
    ax.plot(xs, figure.columns["aborted"], color=_STATUS_BAD, linewidth=2,
            marker="o", markersize=6, label="aborted")
    for window in figure.annotations.get("windows", []):
        ax.axvspan(window["start_s"], window["end_s"], color=_INK_SECONDARY,
                   alpha=0.15, linewidth=0)
        ax.text(window["start_s"], ax.get_ylim()[1], window["label"],
                fontsize=7, color=_INK_SECONDARY, va="top")
    ax.set_xlabel(figure.x_label, color=_INK_SECONDARY, fontsize=9)
    ax.set_ylabel(figure.y_label, color=_INK_SECONDARY, fontsize=9)
    ax.legend(fontsize=8, frameon=False, labelcolor=_INK_PRIMARY)


def _render_heatmap(figure: Figure, ax, plt) -> None:
    from matplotlib.colors import BoundaryNorm, ListedColormap
    from matplotlib.patches import Patch

    rows = figure.annotations["rows"]
    cols = figure.annotations["cols"]
    index = {(figure.columns["scenario"][i], figure.columns["invariant"][i]):
             figure.columns["status"][i] for i in range(figure.n_rows())}
    grid = [[index[(row, col)] for col in cols] for row in rows]
    cmap = ListedColormap([_STATUS_BAD, _STATUS_NEUTRAL, _STATUS_GOOD])
    norm = BoundaryNorm([-0.25, 0.25, 0.75, 1.25], cmap.N)
    ax.imshow(grid, cmap=cmap, norm=norm, aspect="auto")
    ax.set_xticks(range(len(cols)), cols, rotation=45, ha="right", fontsize=7)
    ax.set_yticks(range(len(rows)), rows, fontsize=6)
    ax.grid(False)
    ax.legend(handles=[Patch(facecolor=_STATUS_GOOD, label="passed"),
                       Patch(facecolor=_STATUS_NEUTRAL, label="skipped"),
                       Patch(facecolor=_STATUS_BAD, label="failed")],
              fontsize=7, frameon=False, loc="upper left",
              bbox_to_anchor=(1.01, 1.0))


# ------------------------------------------------------------------- emission
def emit_figures(figures: Sequence[Figure], output_dir: str,
                 render: bool = True) -> Dict[str, Any]:
    """Check every figure; write artifacts only for the ones that pass.

    Each passing figure gets its backing data as ``<name>.json`` and — when
    matplotlib is available and ``render`` is true — a ``<name>.png``.  A
    failing figure gets *no* files; its failure messages are collected in the
    returned report's ``violations`` list.  Callers (the CLI, CI) treat a
    nonempty ``violations`` as a hard failure.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    render = render and matplotlib_available()
    report: Dict[str, Any] = {"rendered": render, "figures": [],
                              "violations": []}
    for figure in figures:
        failures = check_figure(figure)
        if failures:
            report["violations"].append({"figure": figure.name,
                                         "failures": failures})
            continue
        files = []
        data_path = out / f"{figure.name}.json"
        with open(data_path, "w", encoding="utf-8") as handle:
            json.dump(figure.to_dict(), handle, indent=2)
            handle.write("\n")
        files.append(str(data_path))
        if render:
            png_path = out / f"{figure.name}.png"
            render_figure(figure, png_path)
            files.append(str(png_path))
        report["figures"].append({"figure": figure.name, "checks":
                                  list(figure.checks), "files": files})
    return report
