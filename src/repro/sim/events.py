"""Event primitives for the discrete-event simulation engine (facade).

The implementation lives in the engine kernel — :mod:`repro.sim._kernel.events`
(pure Python, source of truth) or its mypyc-compiled twin — and is selected
once per process by :mod:`repro.sim.engine` from the ``REPRO_ENGINE``
environment variable.  This module re-exports the selected classes so that
existing imports (``from repro.sim.events import Event``) keep working and
never mix classes from the two engines.

See the kernel module for the full design notes on the event lifecycle, the
same-time microqueue and the heap entry layout.
"""

from repro.sim.engine import events as _impl

Interrupt = _impl.Interrupt
PENDING = _impl.PENDING
_PendingValue = _impl._PendingValue
Event = _impl.Event
Timeout = _impl.Timeout
ConditionValue = _impl.ConditionValue
Condition = _impl.Condition
AllOf = _impl.AllOf
AnyOf = _impl.AnyOf

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Event",
    "Interrupt",
    "PENDING",
    "Timeout",
]
