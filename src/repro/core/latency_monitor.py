"""Network latency monitoring with exponentially weighted moving averages.

The paper's implementation runs a dedicated thread that pings every data source
every 10 ms and smooths the measurements with an EWMA (§VI, §VII-D "online
adaptivity").  The simulated monitor learns the same way: passively from every
observed request/response round trip, and optionally from an active probing
process that pings each participant endpoint at a configurable interval.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import protocol
from repro.sim.environment import Environment
from repro.sim.network import NetworkInterface


class NetworkLatencyMonitor:
    """Tracks an EWMA estimate of the RTT to each participant."""

    def __init__(self, env: Environment, alpha: float = 0.8,
                 default_rtt_ms: float = 0.0):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.env = env
        self.alpha = alpha
        self.default_rtt_ms = default_rtt_ms
        self._estimates: Dict[str, float] = {}
        self._samples: Dict[str, int] = {}

    # ----------------------------------------------------------------- updates
    def record(self, participant: str, rtt_ms: float) -> None:
        """Fold one observed round trip into the estimate for ``participant``."""
        if rtt_ms < 0:
            return
        current = self._estimates.get(participant)
        if current is None:
            self._estimates[participant] = rtt_ms
        else:
            self._estimates[participant] = (
                self.alpha * current + (1.0 - self.alpha) * rtt_ms)
        self._samples[participant] = self._samples.get(participant, 0) + 1

    def prime(self, participant: str, rtt_ms: float) -> None:
        """Seed the estimate (used at deployment time from the topology's nominal RTTs)."""
        self._estimates.setdefault(participant, rtt_ms)

    # ---------------------------------------------------------------- queries
    def estimate(self, participant: str) -> float:
        """Current RTT estimate in ms (falls back to the default when unknown)."""
        return self._estimates.get(participant, self.default_rtt_ms)

    def sample_count(self, participant: str) -> int:
        """How many measurements have been folded in for ``participant``."""
        return self._samples.get(participant, 0)

    def estimates(self) -> Dict[str, float]:
        """All current estimates."""
        return dict(self._estimates)

    def memory_bytes(self) -> int:
        """Approximate memory for the latency table (Figure 6b proxy)."""
        return len(self._estimates) * 48

    # ---------------------------------------------------------------- probing
    def start_probing(self, net: NetworkInterface, endpoints: Dict[str, str],
                      interval_ms: float = 1000.0,
                      until_ms: Optional[float] = None) -> None:
        """Start an active probe loop pinging each endpoint every ``interval_ms``.

        ``endpoints`` maps participant names to network node names.  Passive
        measurement usually suffices; active probing matters when a link's
        latency changes while no transaction is using it (Figure 11b).
        """

        def probe_loop(participant: str, endpoint: str):
            while until_ms is None or self.env.now < until_ms:
                sent_at = self.env.now
                reply = net.request(endpoint, protocol.MSG_PING, {})
                yield reply
                self.record(participant, self.env.now - sent_at)
                yield self.env.timeout(interval_ms)

        for participant, endpoint in endpoints.items():
            self.env.process(probe_loop(participant, endpoint),
                             name=f"probe:{participant}")
