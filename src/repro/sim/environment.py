"""The simulation environment: virtual clock and event queue.

The :class:`Environment` owns the simulated clock (milliseconds, float) and a
priority queue of scheduled events.  :meth:`Environment.run` pops events in
time order and executes their callbacks, which resume waiting processes.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Scheduling priorities: interrupts preempt normal events at the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment with a millisecond clock."""

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Enqueue ``event`` to be processed ``delay`` ms from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -------------------------------------------------------------- execution
    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)

        if not event.ok and not event.defused:
            # An event failed and nobody was prepared to handle it: surface
            # the error instead of silently dropping it.
            raise event.value

    def run(self, until: Optional[float] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an
        :class:`Event` (run until it triggers; its value is returned), or
        ``None`` (run until no events remain).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None

        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past (now={self._now})")

        while True:
            if stop_event is not None and stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            next_time = self.peek()
            if next_time == float("inf"):
                if stop_event is not None and not stop_event.triggered:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited event fired")
                if stop_time is not None:
                    self._now = stop_time
                return None
            if stop_time is not None and next_time > stop_time:
                self._now = stop_time
                return None
            self.step()
