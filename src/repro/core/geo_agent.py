"""The geo-agent: GeoTP's per-data-source coordination proxy (§III-B, §IV-A).

A geo-agent runs next to its data source (LAN round trip of well under a
millisecond) and gives GeoTP two abilities the plain middleware lacks:

* **Decentralized prepare** — after the data source executes the statement
  batch annotated as the transaction's last one, the agent immediately drives
  the XA END / XA PREPARE sequence over the LAN and reports the vote to the
  middleware asynchronously, removing the prepare phase's WAN round trip from
  the critical path (Algorithm 1's ``AsyncPrepare``).
* **Early abort** — when a subtransaction fails, the agent proactively tells
  the peer agents to roll back their branches, without waiting for the
  middleware (Algorithm 1's ``AsyncRollback``), halving the abort latency.

The agent also transparently forwards ordinary XA verbs to its data source so
that commit, rollback and recovery traffic flow through it unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from repro.common import AbortReason, SubtxnResult, Vote
from repro import protocol
from repro.sim.environment import Environment
from repro.sim.network import Message, Network, NetworkInterface


@dataclass
class GeoAgentConfig:
    """Static configuration of one geo-agent."""

    name: str
    datasource: str
    #: Extra processing cost per forwarded message (encode/decode, Fig. 6c "Others").
    forward_overhead_ms: float = 0.1
    enable_early_abort: bool = True
    #: How many global-txn-id -> branch-xid mappings (and poisoned ids) the
    #: agent remembers.  The mappings only matter while a transaction is in
    #: flight — a peer rollback for an id nobody remembers is simply re-poisoned
    #: — so the cap just needs to exceed the maximum concurrent transactions
    #: through one agent.  Without it the agent's bookkeeping grows by two
    #: strings per distributed transaction forever, which open-system runs at
    #: 10⁶+ transactions turn into hundreds of megabytes.
    xid_retention: Optional[int] = 4_096


#: Verbs forwarded verbatim to the co-located data source.
_FORWARDED_VERBS = (
    protocol.MSG_EXECUTE,
    protocol.MSG_XA_START,
    protocol.MSG_XA_END,
    protocol.MSG_XA_PREPARE,
    protocol.MSG_XA_COMMIT,
    protocol.MSG_XA_ROLLBACK,
    protocol.MSG_COMMIT_ONE_PHASE,
    protocol.MSG_LIST_PREPARED,
    protocol.MSG_TXN_STATE,
    protocol.MSG_PING,
    protocol.MSG_KV_GET,
    protocol.MSG_KV_PUT,
    protocol.MSG_KV_PUT_IF_VERSION,
)


class GeoAgentStats:
    """Counters describing what the agent did (used in tests and reports)."""

    __slots__ = ("executes", "decentralized_prepares",
                 "early_abort_notifications", "peer_rollbacks_handled",
                 "forwarded")

    def __init__(self) -> None:
        self.executes = 0
        self.decentralized_prepares = 0
        self.early_abort_notifications = 0
        self.peer_rollbacks_handled = 0
        self.forwarded = 0


class GeoAgent:
    """The per-data-source agent process."""

    def __init__(self, env: Environment, network: Network, config: GeoAgentConfig):
        self.env = env
        self.config = config
        self.name = config.name
        self.datasource = config.datasource
        self.net: NetworkInterface = network.interface(config.name)
        self.stats = GeoAgentStats()
        #: Maps global transaction ids to the local branch xid seen on this node.
        self._local_xids: Dict[str, str] = {}
        #: Global transaction ids aborted by a peer before we even saw them.
        self._poisoned: Set[str] = set()
        # FIFO of ids in insertion order, shared by both structures above:
        # once the retention cap is exceeded the oldest ids — long finished —
        # are forgotten, keeping agent bookkeeping O(1) with run length.
        self._xid_order: Deque[str] = deque()
        # Verb dispatch table, built once: ``_dispatch`` consults it per message.
        self._handlers = {protocol.MSG_AGENT_EXECUTE: self._on_agent_execute,
                          protocol.MSG_AGENT_PREPARE: self._on_agent_prepare,
                          protocol.MSG_PEER_ROLLBACK: self._on_peer_rollback}
        for verb in _FORWARDED_VERBS:
            self._handlers[verb] = self._forward
        # Direct-consumer inbox: see DataSource — one handler spawn per
        # message, no server loop or get-event round trip.
        self.net.inbox.set_consumer(self._dispatch)

    # ------------------------------------------------------------------ server
    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.msg_type) or self._on_unknown
        self.env.process(handler(message), name=message.msg_type, daemon=True)

    def _on_unknown(self, message: Message):
        if message.reply_event is not None:
            self.net.reply(message, {"status": "error",
                                     "error": f"unknown verb {message.msg_type}"})
        return
        yield  # pragma: no cover - makes this a generator like real handlers

    def _handle(self, message: Message):
        """Handle one message (kept for direct use by tests/tools)."""
        handler = self._handlers.get(message.msg_type) or self._on_unknown
        yield from handler(message)

    def _forward(self, message: Message):
        """Transparently forward a verb to the data source and relay the reply."""
        self.stats.forwarded += 1
        yield self.config.forward_overhead_ms
        reply = yield self.net.request(self.datasource, message.msg_type, message.payload)
        if message.reply_event is not None:
            self.net.reply(message, reply)

    # ----------------------------------------------------------- GeoTP execute
    def _on_agent_execute(self, message: Message):
        payload = message.payload or {}
        xid = payload["xid"]
        global_txn_id = payload.get("global_txn_id", xid)
        coordinator = payload.get("coordinator", message.sender)
        peers = list(payload.get("peers", []))
        is_last = bool(payload.get("is_last", False))
        decentralized = bool(payload.get("decentralized_prepare", False))
        self.stats.executes += 1
        self._remember_xid(global_txn_id, xid)

        yield self.config.forward_overhead_ms

        if global_txn_id in self._poisoned:
            # A peer already aborted this transaction: do not waste execution.
            result = SubtxnResult(xid=xid, datasource=self.datasource, success=False,
                                  error="aborted by peer before execution",
                                  abort_reason=AbortReason.PEER_ABORT)
            if message.reply_event is not None:
                self.net.reply(message, result)
            self._send_state(coordinator, global_txn_id, protocol.STATE_ROLLBACKED)
            return

        execute_payload = {
            "xid": xid,
            "global_txn_id": global_txn_id,
            "operations": payload.get("operations", []),
            "auto_start": payload.get("auto_start", True),
        }
        result = yield self.net.request(self.datasource, protocol.MSG_EXECUTE,
                                        execute_payload)

        if isinstance(result, SubtxnResult) and not result.success:
            # Execution failed (typically a lock timeout): early abort.
            if message.reply_event is not None:
                self.net.reply(message, result)
            yield from self._async_rollback(global_txn_id, xid, peers, coordinator,
                                            already_aborted=True)
            return

        if message.reply_event is not None:
            self.net.reply(message, result)

        if is_last and decentralized:
            yield from self._async_prepare(global_txn_id, xid, peers, coordinator)

    def _on_agent_prepare(self, message: Message):
        """Explicit prepare request for participants without a last statement."""
        payload = message.payload or {}
        xid = payload["xid"]
        global_txn_id = payload.get("global_txn_id", xid)
        coordinator = payload.get("coordinator", message.sender)
        peers = list(payload.get("peers", []))
        if global_txn_id not in self._local_xids:
            self._remember_xid(global_txn_id, xid)
        yield self.config.forward_overhead_ms
        if message.reply_event is not None:
            self.net.reply(message, {"status": "ok"})
        yield from self._async_prepare(global_txn_id, xid, peers, coordinator)

    # ------------------------------------------------- Algorithm 1: AsyncPrepare
    def _async_prepare(self, global_txn_id: str, xid: str, peers, coordinator: str):
        if not peers:
            # Centralized transaction: nothing to prepare, report IDLE (Alg. 1 l.7-9).
            self._send_state(coordinator, global_txn_id, protocol.STATE_IDLE)
            return

        end_reply = yield self.net.request(self.datasource, protocol.MSG_XA_END,
                                           {"xid": xid})
        if not (isinstance(end_reply, dict) and end_reply.get("status") == "ok"):
            self._send_state(coordinator, global_txn_id, protocol.STATE_ROLLBACK_ONLY)
            yield from self._async_rollback(global_txn_id, xid, peers, coordinator)
            return

        prepare_reply = yield self.net.request(self.datasource, protocol.MSG_XA_PREPARE,
                                               {"xid": xid})
        vote = prepare_reply.get("vote") if isinstance(prepare_reply, dict) else None
        if vote is Vote.YES:
            self.stats.decentralized_prepares += 1
            self._send_state(coordinator, global_txn_id, protocol.STATE_PREPARED)
        else:
            self._send_state(coordinator, global_txn_id, protocol.STATE_FAILURE)
            yield from self._async_rollback(global_txn_id, xid, peers, coordinator)

    # ------------------------------------------------ Algorithm 1: AsyncRollback
    def _async_rollback(self, global_txn_id: str, xid: str, peers, coordinator: str,
                        already_aborted: bool = False):
        if self.config.enable_early_abort:
            for peer in peers:
                if peer == self.name:
                    continue
                self.stats.early_abort_notifications += 1
                self.net.send(peer, protocol.MSG_PEER_ROLLBACK,
                              {"global_txn_id": global_txn_id,
                               "coordinator": coordinator})
        if not already_aborted:
            yield self.net.request(self.datasource, protocol.MSG_XA_ROLLBACK,
                                   {"xid": xid})
        else:
            yield self.env.timeout(0)
        self._send_state(coordinator, global_txn_id, protocol.STATE_ROLLBACKED)

    def _on_peer_rollback(self, message: Message):
        """A peer agent told us to abort our branch of a failing transaction."""
        payload = message.payload or {}
        global_txn_id = payload["global_txn_id"]
        coordinator = payload.get("coordinator")
        self.stats.peer_rollbacks_handled += 1
        xid = self._local_xids.get(global_txn_id)
        if xid is None:
            # We have not executed anything yet; poison the id so a late
            # execute is rejected immediately instead of doing useless work.
            self._poison(global_txn_id)
            yield self.env.timeout(0)
            return
        yield self.net.request(self.datasource, protocol.MSG_XA_ROLLBACK, {"xid": xid})
        if coordinator:
            self._send_state(coordinator, global_txn_id, protocol.STATE_ROLLBACKED)

    # ------------------------------------------------------------------ helpers
    def _remember_xid(self, global_txn_id: str, xid: str) -> None:
        """Record the local branch xid for a global transaction (bounded)."""
        if global_txn_id not in self._local_xids:
            self._track(global_txn_id)
        self._local_xids[global_txn_id] = xid

    def _poison(self, global_txn_id: str) -> None:
        """Mark a never-seen transaction as aborted-by-peer (bounded)."""
        if global_txn_id not in self._poisoned:
            self._track(global_txn_id)
            self._poisoned.add(global_txn_id)

    def _track(self, global_txn_id: str) -> None:
        """Enter an id into the retention FIFO, forgetting the oldest ids.

        Retention only needs to outlast a transaction's in-flight window (the
        client pool bounds concurrency far below the default cap of 4096), so
        forgetting the oldest ids never touches a live transaction.  A stale
        peer rollback for a forgotten id takes the poison path, exactly as if
        the rollback had arrived before the execute.
        """
        retention = self.config.xid_retention
        if retention is None:
            return
        order = self._xid_order
        order.append(global_txn_id)
        while len(order) > retention:
            old = order.popleft()
            self._local_xids.pop(old, None)
            self._poisoned.discard(old)

    def _send_state(self, coordinator: Optional[str], global_txn_id: str,
                    state: str) -> None:
        if not coordinator:
            return
        self.net.send(coordinator, protocol.MSG_AGENT_PREPARE_RESULT,
                      {"global_txn_id": global_txn_id,
                       "datasource": self.datasource,
                       "agent": self.name,
                       "state": state})
