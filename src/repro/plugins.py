"""Plugin registries: the open-for-extension seams of the harness.

The reproduction compares many *systems* (coordination protocols) over many
*workloads* on one shared simulated substrate.  Both axes are registries of
self-describing plugins instead of closed ``if system == ...`` ladders:

* :class:`SystemPlugin` — registered by each coordinator module (the seven
  baselines, GeoTP, and any contrib/third-party variant).  A plugin carries
  the builder that instantiates its coordinator plus *capability flags*
  (``needs_agents``, ``colocated_with_ds0``, ``supports_active_probing``,
  ablation config factories); ``repro.cluster.deployment`` consumes only
  these capabilities and never compares system names.
* :class:`WorkloadPlugin` — registered by each workload module (YCSB, TPC-C,
  contrib workloads).  ``repro.bench.runner.make_workload`` instantiates
  whatever the registry returns.

Registration happens as a side effect of importing the defining module;
:func:`load_plugins` imports the builtin modules (``repro.baselines``,
``repro.core.geotp``, every ``repro.contrib`` submodule) and any third-party
distribution that advertises the ``repro.plugins`` entry-point group, and is
invoked lazily on the first registry lookup.  Adding a ninth system or a third
workload is therefore one self-registering module — no edits to the cluster,
runner or CLI layers.

Name canonicalization lives here too: :func:`normalize_system` /
:func:`normalize_workload` are the single canonicalizers every entry point
(``build_cluster``, scenario sweeps, the CLI) routes through, so aliases like
``ScalarDB+`` or ``TPC-C`` resolve identically everywhere.
"""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import-time cycles avoided on purpose
    from repro.core.config import GeoTPConfig
    from repro.middleware.middleware import MiddlewareBase
    from repro.workloads.base import Workload, WorkloadConfig

#: Entry-point group third-party distributions use to ship plugins: each entry
#: names a module (imported for its registration side effects) or a zero-arg
#: callable invoked after loading.
ENTRY_POINT_GROUP = "repro.plugins"

#: Modules whose import registers the builtin plugins.  ``repro.contrib`` in
#: turn imports every module dropped into the contrib package.
_BUILTIN_PLUGIN_MODULES = ("repro.baselines", "repro.core.geotp", "repro.contrib")


def canonical_key(name: str) -> str:
    """The spelling-insensitive key of a plugin name (case/hyphen/space folded)."""
    return name.strip().lower().replace("-", "_").replace(" ", "_")


# ------------------------------------------------------------------ build ctx
@dataclass(frozen=True)
class BuildContext:
    """Everything a system plugin's builder may consume to wire a coordinator.

    One context is created per middleware node; ``seed`` is already offset by
    the middleware index so multi-middleware deployments get distinct RNG
    streams.  Builders pick the fields they need and ignore the rest (an SSP
    coordinator never looks at ``geotp_config``).
    """

    env: Any
    network: Any
    middleware_config: Any
    participants: Dict[str, Any]
    partitioner: Any
    geotp_config: Optional["GeoTPConfig"] = None
    scalardb_config: Any = None
    seed: int = 0


# ------------------------------------------------------------------- plugins
@dataclass(frozen=True)
class SystemPlugin:
    """One system under test: its coordinator builder plus capability flags."""

    #: Canonical system identifier (lowercase, underscores).
    name: str
    #: ``builder(ctx) -> MiddlewareBase`` constructing one coordinator node.
    builder: Callable[[BuildContext], "MiddlewareBase"]
    description: str = ""
    #: Alternate spellings resolving to this plugin (already case-folded by
    #: :func:`canonical_key` at registration).
    aliases: Tuple[str, ...] = ()
    #: The middleware talks to per-data-source geo-agents instead of raw data
    #: sources (GeoTP's O1); the deployment builds and wires the agents.
    needs_agents: bool = False
    #: The coordinator runs co-located with the first data node, so its link
    #: cost to every node is the inter-node RTT (YugabyteDB-style kernels).
    colocated_with_ds0: bool = False
    #: The coordinator exposes ``start_probing()`` and benefits from active
    #: latency probing when link latencies change outside the workload's view.
    supports_active_probing: bool = False
    #: Include this system unchanged as the reference row of ablation studies.
    ablation_reference: bool = False
    #: Ablation variants: suffix -> factory of the config running it (the
    #: Figure 12 study derives its ``<system>_<suffix>`` variants from these).
    ablations: Mapping[str, Callable[[], "GeoTPConfig"]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "aliases",
                           tuple(canonical_key(a) for a in self.aliases))
        object.__setattr__(self, "ablations", dict(self.ablations))

    def build(self, ctx: BuildContext) -> "MiddlewareBase":
        """Instantiate one coordinator middleware for this system."""
        return self.builder(ctx)


@dataclass(frozen=True)
class WorkloadPlugin:
    """One workload family: generator factory plus config construction."""

    #: Canonical workload identifier (lowercase, underscores).
    name: str
    #: ``factory(datasource_names, config) -> Workload``.
    factory: Callable[[Sequence[str], "WorkloadConfig"], "Workload"]
    #: Zero-arg factory of the workload's default configuration.
    config_factory: Callable[[], "WorkloadConfig"]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    #: Name of the legacy ``ExperimentConfig`` field carrying this workload's
    #: config ("ycsb"/"tpcc"); plugin-shipped workloads use the generic
    #: ``ExperimentConfig.workload_config`` slot instead and leave this None.
    config_field: Optional[str] = None
    #: Config type this workload accepts; derived from ``config_factory`` when
    #: that is a class.  Used to reject a stale ``workload_config`` left over
    #: from a different workload with a clear error.
    config_type: Optional[type] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "aliases",
                           tuple(canonical_key(a) for a in self.aliases))
        if self.config_type is None and isinstance(self.config_factory, type):
            object.__setattr__(self, "config_type", self.config_factory)

    def create(self, datasource_names: Sequence[str],
               config: "WorkloadConfig") -> "Workload":
        """Instantiate the workload generator over the given data sources."""
        return self.factory(datasource_names, config)


# ------------------------------------------------------------------ registry
class PluginRegistry:
    """Ordered name -> plugin mapping with alias-aware canonicalization."""

    def __init__(self, kind: str):
        self.kind = kind
        self._plugins: Dict[str, Any] = {}
        self._aliases: Dict[str, str] = {}

    def register(self, plugin: Any) -> Any:
        """Add (or replace) a plugin; names and aliases must not shadow each other."""
        name = canonical_key(plugin.name)
        if name != plugin.name:
            raise ValueError(f"{self.kind} name {plugin.name!r} is not canonical "
                             f"(expected {name!r})")
        alias_owner = self._aliases.get(name)
        if alias_owner is not None and alias_owner != name:
            # normalize() consults aliases first, so a plugin named after
            # another plugin's alias would register but never resolve.
            raise ValueError(f"{self.kind} name {name!r} collides with an "
                             f"alias of {alias_owner!r}")
        for alias in plugin.aliases:
            owner = self._aliases.get(alias)
            if (owner is not None and owner != name) or (
                    alias in self._plugins and alias != name):
                raise ValueError(f"{self.kind} alias {alias!r} of {name!r} "
                                 f"collides with {owner or alias!r}")
        self._plugins[name] = plugin
        for alias in plugin.aliases:
            self._aliases[alias] = name
        return plugin

    def normalize(self, name: str) -> str:
        """Resolve any accepted spelling to the canonical plugin name."""
        key = canonical_key(name)
        key = self._aliases.get(key, key)
        if key not in self._plugins:
            known = ", ".join(self.names())
            raise ValueError(f"unknown {self.kind} {name!r}; "
                             f"expected one of ({known})")
        return key

    def get(self, name: str) -> Any:
        """Look up a plugin by any accepted spelling."""
        return self._plugins[self.normalize(name)]

    def names(self) -> List[str]:
        """Canonical plugin names, in registration order."""
        return list(self._plugins)

    def plugins(self) -> List[Any]:
        """All registered plugins, in registration order."""
        return list(self._plugins.values())

    def __contains__(self, name: str) -> bool:
        try:
            self.normalize(name)
        except ValueError:
            return False
        return True


SYSTEMS = PluginRegistry("system")
WORKLOADS = PluginRegistry("workload")


# ------------------------------------------------------------------- loading
_plugins_loaded = False
_plugins_loading = False


def load_plugins() -> None:
    """Import every module that registers builtin or third-party plugins.

    Idempotent and re-entrant: a separate in-progress flag stops a plugin
    module that itself touches the registries from recursing, while the
    done flag is only set on success — a broken plugin module raises here
    and the next call retries the import instead of serving a silently
    half-empty registry.  Lookup helpers call this lazily, so merely
    importing ``repro.plugins`` (as the plugin modules themselves do) stays
    side-effect free.
    """
    global _plugins_loaded, _plugins_loading
    if _plugins_loaded or _plugins_loading:
        return
    _plugins_loading = True
    try:
        for module in _BUILTIN_PLUGIN_MODULES:
            importlib.import_module(module)
        _load_entry_point_plugins()
        _plugins_loaded = True
    finally:
        _plugins_loading = False


def _load_entry_point_plugins() -> None:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - importlib.metadata ships with 3.8+
        return
    try:
        points = entry_points(group=ENTRY_POINT_GROUP)
    except Exception:  # pragma: no cover - tolerate exotic metadata backends
        return
    for point in points:
        loaded = point.load()
        # A module registers on import; a callable hook is invoked explicitly.
        if callable(loaded) and not isinstance(loaded, type):
            loaded()


# ----------------------------------------------------------- system helpers
def register_system(plugin: SystemPlugin) -> SystemPlugin:
    """Register a system plugin (called by the coordinator's module)."""
    return SYSTEMS.register(plugin)


def get_system_plugin(name: str) -> SystemPlugin:
    """The system plugin for any accepted spelling of ``name``."""
    load_plugins()
    return SYSTEMS.get(name)


def normalize_system(name: str) -> str:
    """Canonical system identifier for any accepted spelling (single source)."""
    load_plugins()
    return SYSTEMS.normalize(name)


def system_names() -> List[str]:
    """Canonical names of every registered system, in registration order."""
    load_plugins()
    return SYSTEMS.names()


def system_plugins() -> List[SystemPlugin]:
    """Every registered system plugin, in registration order."""
    load_plugins()
    return SYSTEMS.plugins()


# --------------------------------------------------------- workload helpers
def register_workload(plugin: WorkloadPlugin) -> WorkloadPlugin:
    """Register a workload plugin (called by the workload's module)."""
    return WORKLOADS.register(plugin)


def get_workload_plugin(name: str) -> WorkloadPlugin:
    """The workload plugin for any accepted spelling of ``name``."""
    load_plugins()
    return WORKLOADS.get(name)


def normalize_workload(name: str) -> str:
    """Canonical workload identifier for any accepted spelling."""
    load_plugins()
    return WORKLOADS.normalize(name)


def workload_names() -> List[str]:
    """Canonical names of every registered workload, in registration order."""
    load_plugins()
    return WORKLOADS.names()


def workload_plugins() -> List[WorkloadPlugin]:
    """Every registered workload plugin, in registration order."""
    load_plugins()
    return WORKLOADS.plugins()


# ----------------------------------------------------------- scenario hooks
_scenario_hooks: List[Callable[[], None]] = []


def register_scenario_hook(hook: Callable[[], None]) -> None:
    """Defer scenario registration until the scenario registry exists.

    Plugin modules must not import ``repro.bench.scenarios`` at module level
    (the bench layer imports the cluster layer, which loads the plugins —
    a cycle).  Instead they pass a zero-arg hook here; the scenario module
    drains the queue once its registry is fully initialised.  If that has
    already happened (a plugin loaded later, e.g. via an entry point), the
    hook runs immediately.
    """
    scenarios = sys.modules.get("repro.bench.scenarios")
    if scenarios is not None and getattr(scenarios, "SCENARIOS_READY", False):
        hook()
        return
    _scenario_hooks.append(hook)


def drain_scenario_hooks() -> None:
    """Run every queued scenario hook (called by ``repro.bench.scenarios``)."""
    while _scenario_hooks:
        _scenario_hooks.pop(0)()
