"""Seeded random number utilities for workload generation.

All stochastic behaviour in the reproduction flows through a :class:`SeededRNG`
so that experiments are repeatable.  The :class:`ZipfianGenerator` reproduces
the YCSB-style skewed key distribution controlled by the paper's *skew factor*
(theta): 0.3 = low, 0.9 = medium, 1.5 = high contention.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRNG:
    """Thin wrapper over :class:`random.Random` with convenience helpers."""

    def __init__(self, seed: Optional[int] = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of ``seq``."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Pick ``k`` distinct elements of ``seq``."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def gauss(self, mean: float, std: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mean, std)

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        return self._random.expovariate(1.0 / mean) if mean > 0 else 0.0

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def spawn(self, salt: int) -> "SeededRNG":
        """Derive an independent child generator (stable for a given salt)."""
        base = self.seed if self.seed is not None else 0
        return SeededRNG(seed=(base * 1_000_003 + salt) & 0x7FFFFFFF)


class ZipfianGenerator:
    """Zipfian-distributed integers over ``[0, item_count)``.

    Uses the rejection-free inverse-CDF approximation from Gray et al. (the
    same method as the original YCSB ``ZipfianGenerator``), so generation is
    O(1) per sample regardless of the key-space size.
    """

    def __init__(self, item_count: int, theta: float, rng: Optional[SeededRNG] = None):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng or SeededRNG(0)
        #: pow(0.5, theta), precomputed: ``next`` consults it on every draw.
        self._half_pow_theta = math.pow(0.5, theta)

        if theta == 0:
            # Degenerates to uniform; handled separately in next().
            self._zetan = float(item_count)
            self._alpha = 1.0
            self._eta = 1.0
            self._zeta2 = 1.0
            return

        self._zeta2 = self._zeta(2, theta)
        self._zetan = self._zeta(item_count, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta != 1.0 else float("inf")
        # With item_count == 2 the zetas coincide and eta's 0/0 is never
        # consulted: next() resolves both items through its closed-form
        # branches before reaching eta, so any finite value is safe.
        denominator = 1.0 - self._zeta2 / self._zetan
        self._eta = ((1.0 - math.pow(2.0 / item_count, 1.0 - theta)) / denominator
                     if theta != 1.0 and denominator != 0.0 else 0.0)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # For very large n the exact harmonic sum is too slow; use the integral
        # approximation, which is accurate enough for workload skew purposes.
        if n <= 10_000:
            return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        head = sum(1.0 / math.pow(i, theta) for i in range(1, 10_001))
        if theta == 1.0:
            tail = math.log(n) - math.log(10_000)
        else:
            tail = (math.pow(n, 1.0 - theta) - math.pow(10_000, 1.0 - theta)) / (1.0 - theta)
        return head + tail

    def next(self) -> int:
        """Draw the next Zipfian-distributed item index (0 is the hottest)."""
        if self.theta == 0:
            return self._rng.randint(0, self.item_count - 1)

        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + self._half_pow_theta:
            return 1
        if self.theta == 1.0:
            # Inverse CDF is not closed-form at theta == 1; fall back to a
            # harmonic-series inversion via exponentiation of the uniform draw.
            return int(self.item_count ** u) - 1 if self.item_count ** u >= 1 else 0
        value = int(self.item_count * math.pow(
            self._eta * u - self._eta + 1.0, self._alpha))
        return min(max(value, 0), self.item_count - 1)

    def sample_many(self, count: int, distinct: bool = False) -> List[int]:
        """Draw ``count`` items, optionally forcing them to be distinct."""
        if not distinct:
            return [self.next() for _ in range(count)]
        if count > self.item_count:
            raise ValueError("cannot draw more distinct items than the key space holds")
        seen = set()
        out: List[int] = []
        while len(out) < count:
            item = self.next()
            if item not in seen:
                seen.add(item)
                out.append(item)
        return out
