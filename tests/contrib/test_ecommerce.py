"""The contrib e-commerce workload: sessions, flash crowds, plugin wiring."""

import pytest

from repro.bench.runner import run_experiment
from repro.bench.scenarios import get_scenario
from repro.contrib.ecommerce import (
    ADD_TO_CART,
    BROWSE,
    CHECKOUT,
    PAYMENT,
    EcommerceConfig,
    EcommerceWorkload,
)
from repro.plugins import get_workload_plugin, workload_names

NODES = ("ds0", "ds1", "ds2")


def make_workload(**overrides):
    return EcommerceWorkload(NODES, EcommerceConfig(**overrides))


def drain_session(workload, terminal_id=0):
    """Generate exactly one full session's transactions for a terminal."""
    spec = workload.next_transaction(terminal_id)
    stages = [spec]
    while workload._sessions[terminal_id]["stages"]:
        stages.append(workload.next_transaction(terminal_id))
    return stages


# ---------------------------------------------------------------- plugin wiring
def test_plugin_is_registered_with_aliases():
    assert "ecommerce" in workload_names()
    plugin = get_workload_plugin("ecommerce")
    assert get_workload_plugin("ecom") is plugin
    assert get_workload_plugin("checkout") is plugin
    assert plugin.factory is EcommerceWorkload
    assert plugin.config_factory is EcommerceConfig


def test_flash_crowd_scenario_is_registered():
    scenario = get_scenario("ecommerce_flash_crowd")
    (shift_axis,) = [axis for axis in scenario.axes
                     if axis.name == "shift_every"]
    assert shift_axis.values == (0, 2_000, 500)
    assert shift_axis.path == "workload_config.hotspot_shift_every"
    assert scenario.base.workload == "ecommerce"


def test_config_validation_rejects_bad_knobs():
    with pytest.raises(ValueError, match="products_per_node"):
        make_workload(products_per_node=1)
    with pytest.raises(ValueError, match="customers_per_node"):
        make_workload(customers_per_node=0)
    with pytest.raises(ValueError, match="hotspot_shift_every"):
        make_workload(hotspot_shift_every=-1)
    with pytest.raises(ValueError, match="distributed_ratio"):
        make_workload(distributed_ratio=1.5)


# -------------------------------------------------------------------- sessions
def test_sessions_follow_the_browse_cart_checkout_payment_arc():
    workload = make_workload(seed=5)
    for _ in range(20):
        stages = [spec.txn_type for spec in drain_session(workload)]
        checkout_at = stages.index(CHECKOUT)
        assert stages[checkout_at:] == [CHECKOUT, PAYMENT]
        browses = stages[:stages.index(ADD_TO_CART)]
        assert browses and all(s == BROWSE for s in browses)
        assert 1 <= len(browses) <= workload.config.max_browses
        adds = stages[len(browses):checkout_at]
        assert adds and all(s == ADD_TO_CART for s in adds)
        assert 1 <= len(adds) <= workload.config.max_cart_adds


def test_terminals_hold_independent_sessions():
    workload = make_workload(seed=1)
    first = workload.next_transaction(0)
    second = workload.next_transaction(7)
    assert first.txn_type == second.txn_type == BROWSE
    assert set(workload._sessions) == {0, 7}
    assert workload._sessions[0] is not workload._sessions[7]


def test_checkout_metadata_matches_the_reserved_product_homes():
    workload = make_workload(seed=9, distributed_ratio=0.5)
    node_count = len(NODES)
    seen = set()
    for _ in range(50):
        for spec in drain_session(workload):
            if spec.txn_type != CHECKOUT:
                continue
            home = spec.metadata["home_node"]
            reserved = [stmt.operation.key for stmt in spec.all_statements
                        if stmt.operation.table == "products"
                        and stmt.operation.op_type.name == "UPDATE"]
            assert reserved, "a checkout must reserve stock"
            expected = any(key % node_count != home for key in reserved)
            assert spec.metadata["distributed"] == expected
            seen.add(expected)
    assert seen == {True, False}, "expected a mix of local and distributed"


def spec_digest(spec):
    """Comparable view of a spec (spec_id is a process-global counter)."""
    return (spec.txn_type, spec.metadata,
            [(s.operation.op_type, s.operation.table, s.operation.key,
              s.operation.value) for s in spec.all_statements])


def test_same_seed_generators_replay_byte_identically():
    first, second = make_workload(seed=42), make_workload(seed=42)
    for _ in range(100):
        assert spec_digest(first.next_transaction(3)) == \
            spec_digest(second.next_transaction(3))


def test_initial_data_preloads_catalog_customers_and_carts():
    workload = make_workload(products_per_node=100,
                             preload_products_per_node=10,
                             customers_per_node=4)
    data = workload.initial_data()
    assert set(data) == set(NODES)
    for node_index, name in enumerate(NODES):
        assert len(data[name]["products"]) == 10
        assert len(data[name]["customers"]) == 4
        assert set(data[name]["carts"]) == set(data[name]["customers"])
        for key in data[name]["products"]:
            assert key % len(NODES) == node_index


# ----------------------------------------------------------------- flash crowd
def test_static_hot_window_never_moves():
    workload = make_workload(hotspot_shift_every=0)
    bases = set()
    for _ in range(30):
        drain_session(workload)
        bases.add(workload._hot_window_base())
    assert bases == {0}


def test_flash_crowd_shifts_scatter_the_hot_window():
    workload = make_workload(hotspot_shift_every=10, products_per_node=10_000)
    bases = []
    for _ in range(40):
        drain_session(workload)
        base = workload._hot_window_base()
        if not bases or bases[-1] != base:
            bases.append(base)
    assert len(bases) >= 3, "the hot window never shifted"
    span = workload.config.products_per_node - workload.config.hotspot_products
    assert all(0 <= base < span for base in bases)
    # Successive windows jump, they don't slide.
    gaps = [abs(b - a) for a, b in zip(bases, bases[1:])]
    assert min(gaps) > workload.config.hotspot_products


def test_hot_draws_land_inside_the_current_window():
    workload = make_workload(hotspot_probability=1.0, hotspot_products=50,
                             products_per_node=1_000, hotspot_shift_every=0)
    node_count = len(NODES)
    for _ in range(200):
        key = workload._draw_product(1)
        assert key % node_count == 1
        assert 0 <= key // node_count < 50


# ------------------------------------------------------------------ end to end
def test_flash_crowd_scenario_smoke_run_commits_transactions():
    sweep = get_scenario("ecommerce_flash_crowd").sweep(
        axes={"system": ("geotp",), "shift_every": (500,)},
        duration_ms=3_000.0, warmup_ms=600.0, terminals=4,
        workload_config__products_per_node=1_000,
        workload_config__preload_products_per_node=200,
        workload_config__customers_per_node=100)
    (point,) = sweep.points()
    result = run_experiment(point.config)
    assert result.committed > 0
    by_type = {}
    for sample in result.collector.samples:
        by_type[sample.txn_type] = by_type.get(sample.txn_type, 0) + 1
    assert set(by_type) <= {BROWSE, ADD_TO_CART, CHECKOUT, PAYMENT}
    assert by_type.get(CHECKOUT, 0) > 0 and by_type.get(PAYMENT, 0) > 0
