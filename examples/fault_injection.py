"""Fault injection: a region outage mid-run and the availability timeline.

At t = 6 s every network link touching the Singapore data node (``ds2``) is
cut for 2 s — in-flight messages are parked and released when the region
heals, as if the WAN route flapped and TCP retransmissions finally got
through.  Transactions touching ds2 stall for the outage window and resume on
their own (nothing crashed, so no recovery protocol runs; compare the
``fault_ds_crash`` scenario for a crash with §V-A recovery).

The script prints the per-second availability timeline (committed and aborted
transactions per second) with the fault window marked, plus the derived
metrics: availability fraction, abort spike and time-to-recover.

Usage::

    PYTHONPATH=src python examples/fault_injection.py
"""

from repro import (
    ExperimentConfig,
    FaultEvent,
    FaultKind,
    FaultPlan,
    YCSBConfig,
    run_experiment,
)
from repro.bench.report import print_table

OUTAGE_START_MS = 6_000.0
OUTAGE_MS = 2_000.0
DURATION_MS = 15_000.0


def main() -> None:
    plan = FaultPlan(events=(
        FaultEvent(kind=FaultKind.REGION_OUTAGE, target="ds2",
                   at_ms=OUTAGE_START_MS, duration_ms=OUTAGE_MS),))
    config = ExperimentConfig(
        system="geotp",
        terminals=24,
        duration_ms=DURATION_MS,
        warmup_ms=2_000.0,
        ycsb=YCSBConfig(skew=0.9, distributed_ratio=0.5),
        fault_plan=plan,
    )
    result = run_experiment(config)
    faults = result.faults

    rows = []
    for start, committed, aborted in faults["availability"]["series"]:
        window = ""
        if OUTAGE_START_MS <= start < OUTAGE_START_MS + OUTAGE_MS:
            window = "<-- ds2 region down"
        rows.append((f"{start / 1000:.0f}s", committed, aborted, window))
    print_table("Availability timeline (1 s buckets; warm-up samples excluded)",
                ["second", "committed", "aborted", ""], rows)

    availability = faults["availability"]
    heal_at = OUTAGE_START_MS + OUTAGE_MS
    time_to_recover = faults["time_to_recover_ms"][plan.events[0].describe()]
    print(f"\nOverall: {result.throughput_tps:.1f} txn/s, "
          f"abort rate {result.abort_rate:.1%}")
    print(f"Availability (buckets with >= 1 commit): "
          f"{availability['availability']:.0%}")
    print(f"Abort spike (peak bucket / mean):        "
          f"{availability['abort_spike']:.1f}x")
    if time_to_recover is None:
        print("Time to recover: did not recover within the run")
    else:
        print(f"Time to recover after the heal at {heal_at / 1000:.0f}s: "
              f"{time_to_recover:.0f} ms")


if __name__ == "__main__":
    main()
