"""Unit tests for transaction specs and the mini-SQL parser."""

import pytest

from repro.common import Operation, OpType
from repro.middleware import ParseError, SqlParser, Statement, TransactionSpec


def ops(n, write=True):
    op_type = OpType.UPDATE if write else OpType.READ
    return [Operation(op_type=op_type, table="usertable", key=i, value=i) for i in range(n)]


def test_spec_requires_at_least_one_statement():
    with pytest.raises(ValueError):
        TransactionSpec(rounds=[[]])
    with pytest.raises(ValueError):
        TransactionSpec.from_operations([])


def test_from_operations_single_round_marks_last():
    spec = TransactionSpec.from_operations(ops(5))
    assert spec.round_count == 1
    assert spec.statement_count == 5
    assert all(stmt.is_last for stmt in spec.rounds[-1])


def test_from_operations_multiple_rounds_split_evenly():
    spec = TransactionSpec.from_operations(ops(6), rounds=3)
    assert spec.round_count == 3
    assert [len(r) for r in spec.rounds] == [2, 2, 2]
    assert not any(stmt.is_last for stmt in spec.rounds[0])
    assert all(stmt.is_last for stmt in spec.rounds[-1])


def test_from_operations_rounds_capped_by_operation_count():
    spec = TransactionSpec.from_operations(ops(2), rounds=10)
    assert spec.round_count == 2


def test_spec_record_ids_and_tables():
    spec = TransactionSpec.from_operations(ops(3))
    assert spec.record_ids() == [("usertable", 0), ("usertable", 1), ("usertable", 2)]
    assert spec.tables() == {"usertable"}


def test_statement_rendered_sql_synthesised():
    read = Statement(operation=Operation(op_type=OpType.READ, table="t", key="k"))
    write = Statement(operation=Operation(op_type=OpType.UPDATE, table="t", key="k", value=3))
    assert "SELECT" in read.rendered_sql()
    assert "UPDATE" in write.rendered_sql()


def test_parser_select():
    parsed = SqlParser().parse_statement("SELECT value FROM usertable WHERE key = 42;")
    assert parsed.kind == "dml"
    op = parsed.statement.operation
    assert op.op_type is OpType.READ
    assert op.table == "usertable"
    assert op.key == 42


def test_parser_select_quoted_key_and_for_share():
    parsed = SqlParser().parse_statement(
        "SELECT bal FROM savings WHERE name = 'Alice' FOR SHARE;")
    assert parsed.statement.operation.key == "Alice"


def test_parser_update():
    parsed = SqlParser().parse_statement(
        "UPDATE savings SET bal = 100 WHERE name = 'Bob';")
    op = parsed.statement.operation
    assert op.op_type is OpType.UPDATE
    assert op.key == "Bob"
    assert op.value == 100


def test_parser_insert():
    parsed = SqlParser().parse_statement(
        "INSERT INTO orders (o_id, amount) VALUES (7, 19.5);")
    op = parsed.statement.operation
    assert op.op_type is OpType.WRITE
    assert op.key == 7
    assert op.value == {"amount": 19.5}


def test_parser_last_statement_annotation():
    parsed = SqlParser().parse_statement(
        "UPDATE savings SET bal = 1 WHERE name = 'Bob' /*+ LAST */;")
    assert parsed.statement.is_last
    parsed2 = SqlParser().parse_statement(
        "UPDATE savings SET bal = 1 WHERE name = 'Bob' /* last statement */;")
    assert parsed2.statement.is_last


def test_parser_control_statements():
    parser = SqlParser()
    assert parser.parse_statement("BEGIN;").kind == "begin"
    assert parser.parse_statement("COMMIT;").kind == "commit"
    assert parser.parse_statement("ROLLBACK;").kind == "rollback"


def test_parser_rejects_unsupported_sql():
    with pytest.raises(ParseError):
        SqlParser().parse_statement("DROP TABLE users;")
    with pytest.raises(ParseError):
        SqlParser().parse_statement("   ")


def test_parse_transaction_block():
    sql = [
        "BEGIN;",
        "UPDATE savings SET bal = 900 WHERE name = 'Alice';",
        "UPDATE savings SET bal = 1100 WHERE name = 'Bob';",
        "COMMIT;",
    ]
    spec = SqlParser().parse_transaction(sql, txn_type="transfer")
    assert spec.statement_count == 2
    assert spec.rounds[0][-1].is_last
    assert not spec.rounds[0][0].is_last
    assert spec.txn_type == "transfer"


def test_parse_transaction_respects_explicit_annotation():
    sql = [
        "BEGIN;",
        "UPDATE savings SET bal = 900 WHERE name = 'Alice' /*+ LAST */;",
        "SELECT bal FROM savings WHERE name = 'Bob';",
        "COMMIT;",
    ]
    spec = SqlParser().parse_transaction(sql)
    assert spec.rounds[0][0].is_last
    assert not spec.rounds[0][1].is_last


def test_parse_transaction_requires_begin_commit():
    with pytest.raises(ParseError):
        SqlParser().parse_transaction(["UPDATE t SET v = 1 WHERE k = 1;"])
