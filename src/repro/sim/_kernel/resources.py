"""Shared resources for simulation processes (kernel module).

Two primitives are provided:

* :class:`Resource` — a counted resource with FIFO queuing (used for e.g.
  bounded connection pools and the coordinator-thread model of the ScalarDB
  baseline).
* :class:`Store` — an unbounded FIFO message queue (used for node inboxes in
  the network model).

This module is part of the mypyc-compilable kernel (see
:mod:`repro.sim._kernel`): fully annotated, relative imports only, no dynamic
attribute tricks.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class ResourceRequest(Event):
    """Pending request for one unit of a :class:`Resource`.

    Usable as a context manager so that the unit is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` units granted to requesters in FIFO order."""

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[ResourceRequest] = []
        self._waiting: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> ResourceRequest:
        """Ask for one unit; the returned event fires once granted."""
        req = ResourceRequest(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(None)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: ResourceRequest) -> None:
        """Return the unit held by ``request`` (no-op if it never got one)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    def _cancel(self, request: ResourceRequest) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            if req._value is not PENDING:
                continue
            self._users.append(req)
            req.succeed(None)


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ()


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the oldest
    item as soon as one is available.

    A store can alternatively run in **direct-consumer** mode
    (:meth:`set_consumer`): every ``put`` hands the item straight to a
    callback instead of queueing it.  The server loops (``DataSource``,
    ``GeoAgent``, the middleware inbox) use this to skip the whole
    get-event/resume round trip — one per network message — that the
    ``yield receive()`` pattern costs.  Consumer mode and ``get`` are
    mutually exclusive by design.
    """

    __slots__ = ("env", "_items", "_getters", "_consumer")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._consumer: Optional[Callable[[Any], None]] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of the queued items (oldest first)."""
        return list(self._items)

    def set_consumer(self, fn: Callable[[Any], None]) -> None:
        """Switch to direct-consumer mode: every ``put`` calls ``fn(item)``.

        Must be set before any items are queued or getters are waiting; the
        consumer is invoked synchronously at delivery-dispatch time, which is
        when a ``yield receive()`` loop would have been resumed anyway (minus
        the event round trip).
        """
        if self._items or self._getters:
            raise RuntimeError("set_consumer on a store that is already in use")
        self._consumer = fn

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest waiting getter if any."""
        consumer = self._consumer
        if consumer is not None:
            consumer(item)
            return
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is not PENDING:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> StoreGet:
        """Return an event that fires with the next item."""
        if self._consumer is not None:
            # Puts are routed straight to the consumer; a getter's event
            # could never fire.  Fail fast instead of deadlocking the caller.
            raise RuntimeError("get() on a direct-consumer store would never "
                               "complete; the two modes are mutually exclusive")
        get_event = StoreGet(self.env)
        if self._items:
            get_event.succeed(self._items.popleft())
        else:
            self._getters.append(get_event)
        return get_event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if the store is empty."""
        if self._items:
            return self._items.popleft()
        return None
