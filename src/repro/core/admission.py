"""Late transaction scheduling: admission control for hot records (§IV-C, Eq. 9).

Before dispatching a transaction, the middleware predicts the probability that
it will acquire all of its locks: every record contributes
``(c_cnt / t_cnt) ^ max(a_cnt - 1, 0)`` — the chance that all transactions
already queued on the record succeed.  Transactions whose predicted success is
too low are *blocked* (retried after a short backoff) up to a bounded number of
times and then aborted, which both sheds load from hotspots and keeps the
latency forecasts meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Tuple

from repro.core.hotspot import HotspotFootprint
from repro.sim.rng import SeededRNG

RecordId = Tuple[str, Hashable]


@dataclass
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    success_probability: float
    retries_used: int


class LateTransactionScheduler:
    """Implements Algorithm 2's admission loop (lines 11–18)."""

    def __init__(self, footprint: HotspotFootprint, rng: SeededRNG,
                 max_retries: int = 10, backoff_ms: float = 5.0,
                 threshold: float = 1.0):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_ms < 0:
            raise ValueError("backoff_ms must be non-negative")
        self.footprint = footprint
        self.rng = rng
        self.max_retries = max_retries
        self.backoff_ms = backoff_ms
        self.threshold = threshold
        self.admitted_count = 0
        self.blocked_count = 0
        self.rejected_count = 0

    def evaluate(self, record_ids: Iterable[RecordId]) -> AdmissionDecision:
        """One admission draw without retrying (used by tests and ScalarDB+)."""
        probability = self.footprint.success_probability(record_ids)
        admitted = probability >= self.threshold or self.rng.random() < probability
        return AdmissionDecision(admitted=admitted, success_probability=probability,
                                 retries_used=0)

    def admit(self, env, record_ids: Iterable[RecordId]):
        """Generator: retry with backoff until admitted or retries are exhausted.

        Yields simulation timeouts between attempts; returns an
        :class:`AdmissionDecision`.
        """
        ids: List[RecordId] = list(record_ids)
        retries = 0
        while True:
            probability = self.footprint.success_probability(ids)
            if probability >= self.threshold or self.rng.random() < probability:
                self.admitted_count += 1
                return AdmissionDecision(admitted=True,
                                         success_probability=probability,
                                         retries_used=retries)
            if retries >= self.max_retries:
                self.rejected_count += 1
                return AdmissionDecision(admitted=False,
                                         success_probability=probability,
                                         retries_used=retries)
            retries += 1
            self.blocked_count += 1
            if self.backoff_ms > 0:
                yield env.timeout(self.backoff_ms)
