"""§V recovery on a *live* two-middleware cluster (the fleet deployment).

The single-middleware fault tests show the recovery protocol works when the
whole service blinks.  These show it composes with the fleet: crash
coordinator dm1 mid-run while dm2 keeps serving, then assert

* the survivor's traffic is unaffected — dm2 commits in every bucket of the
  crash window,
* dm1's restart pass resolves its own in-doubt branches (no prepared/active
  branch owned by dm1 predates the restart),
* abort accounting matches the single-middleware crash scenario: the same
  ``unavailable`` reason key, totals consistent with per-middleware
  attribution, and
* no transaction is lost or duplicated across the failover (unique ids,
  attribution sums equal to the collector totals).
"""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.metrics.availability import (
    middleware_of,
    per_middleware_attribution,
    per_middleware_availability,
)
from repro.recovery import FaultEvent, FaultKind, FaultPlan
from repro.workloads.ycsb import YCSBConfig

CRASH_AT_MS = 2_000.0
CRASH_MS = 1_000.0
RESTART_MS = CRASH_AT_MS + CRASH_MS


def fleet_crash_config(**overrides):
    defaults = dict(
        system="geotp", terminals=6, duration_ms=5_000.0, warmup_ms=1_000.0,
        middleware_count=2,
        ycsb=YCSBConfig(records_per_node=1_000, preload_rows_per_node=200),
        fault_plan=FaultPlan(events=(
            FaultEvent(kind=FaultKind.MIDDLEWARE_CRASH, at_ms=CRASH_AT_MS,
                       duration_ms=CRASH_MS, target="dm1"),)),
        seed=7)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def crash_run():
    return run_experiment(fleet_crash_config(), keep_cluster=True)


def test_survivor_serves_through_the_crash_window(crash_run):
    per_middleware = per_middleware_availability(
        crash_run.collector.samples, duration_ms=5_000.0, start_ms=1_000.0)
    survivor = per_middleware["dm2"]
    window = [committed for start, committed, _ in survivor.buckets
              if CRASH_AT_MS <= start < RESTART_MS]
    assert window and all(committed > 0 for committed in window), (
        f"dm2 went quiet during dm1's crash window: {survivor.buckets}")
    # And dm1 is back in service after the restart.
    assert crash_run.fleet["states"]["dm1"] == "up"
    post_heal = [committed for start, committed, _
                 in per_middleware["dm1"].buckets if start >= 4_000.0]
    assert sum(post_heal) > 0


def test_restart_pass_resolves_dm1_in_doubt_branches(crash_run):
    faults = crash_run.faults
    assert len(faults["recoveries"]) == 1
    recovery = faults["recoveries"][0]
    assert recovery["kind"] == "middleware_crash"
    assert recovery["restarted_at_ms"] >= RESTART_MS

    # Nothing dm1 owned is still unfinished from before the restart: the
    # crash sweep killed in-flight branches, the restart pass drove the
    # prepared ones to their logged outcome.
    for datasource in crash_run.cluster.datasources.values():
        for txn in datasource.transactions.values():
            if not txn.global_txn_id.startswith("dm1-"):
                continue
            if txn.state.value in ("active", "idle", "prepared"):
                assert txn.started_at > RESTART_MS, (
                    f"stale dm1 branch {txn.xid} in state {txn.state.value}")


def test_abort_accounting_matches_the_single_middleware_scenario(crash_run):
    single = run_experiment(fleet_crash_config(
        middleware_count=1, fault_plan=FaultPlan(events=(
            FaultEvent(kind=FaultKind.MIDDLEWARE_CRASH, at_ms=CRASH_AT_MS,
                       duration_ms=CRASH_MS),))))
    fleet_reasons = crash_run.collector.abort_reasons()
    single_reasons = single.collector.abort_reasons()
    # The crash shows up under the same reason key in both deployments...
    assert single_reasons.get("unavailable", 0) > 0
    assert "unavailable" in fleet_reasons
    # ...and every abort is accounted for, in total and per middleware.
    assert sum(fleet_reasons.values()) == crash_run.aborted
    attribution = per_middleware_attribution(crash_run.collector.samples)
    assert sum(entry["aborted"] for entry in attribution.values()) == \
        crash_run.aborted
    # The fleet's own attribution (reported in the summary) agrees.
    assert crash_run.fleet["attribution"] == attribution
    # But the client-visible outage is far smaller with a survivor around.
    assert fleet_reasons["unavailable"] <= single_reasons["unavailable"]


def test_no_transaction_is_lost_or_duplicated(crash_run):
    samples = crash_run.collector.samples
    ids = [sample.txn_id for sample in samples]
    assert len(ids) == len(set(ids)), "duplicated transaction ids"
    attribution = per_middleware_attribution(samples)
    assert set(attribution) <= {"dm1", "dm2"}
    assert sum(e["committed"] for e in attribution.values()) == \
        crash_run.committed
    # Every sample is attributed to a real coordinator.
    assert all(middleware_of(txn_id) in ("dm1", "dm2") for txn_id in ids)


def test_fleet_report_carries_the_down_episode(crash_run):
    report = crash_run.fleet
    episodes = [e for e in report["down_episodes"]
                if e["middleware"] == "dm1"]
    assert episodes, f"no down episode for dm1: {report['down_episodes']}"
    episode = episodes[0]
    assert CRASH_AT_MS <= episode["down_at_ms"] < RESTART_MS
    assert episode["recovered_at_ms"] is not None
    assert episode["time_to_divert_ms"] is not None
    assert episode["time_to_divert_ms"] >= 0.0
