"""SSP: the Apache ShardingSphere baseline.

ShardingSphere coordinates distributed transactions with the standard XA
two-phase commit driven from the middleware, which is exactly what
:class:`~repro.middleware.coordinator.TwoPhaseCommitCoordinator` implements.
This subclass only pins the system name used in reports.
"""

from __future__ import annotations

from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.plugins import BuildContext, SystemPlugin, register_system


class SSPCoordinator(TwoPhaseCommitCoordinator):
    """ShardingSphere-style middleware XA coordinator."""

    system_name = "SSP"


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> SSPCoordinator:
    return SSPCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                          ctx.participants, ctx.partitioner)


register_system(SystemPlugin(
    name="ssp",
    description="ShardingSphere-style middleware XA 2PC (the paper's base system)",
    aliases=("shardingsphere",),
    builder=_build,
    ablation_reference=True,
))
