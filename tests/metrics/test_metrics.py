"""Unit and property tests for the metrics package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AbortReason, TransactionResult, TxnOutcome
from repro.metrics import (
    LatencyDistribution,
    MetricsCollector,
    PhaseBreakdown,
    ResourceUsage,
    ThroughputTimeline,
    percentile,
)


def make_result(txn_id="t1", committed=True, start=0.0, end=100.0,
                distributed=False, reason=None, breakdown=None):
    return TransactionResult(
        txn_id=txn_id,
        outcome=TxnOutcome.COMMITTED if committed else TxnOutcome.ABORTED,
        start_time=start, end_time=end, is_distributed=distributed,
        abort_reason=reason, phase_breakdown=breakdown or {})


# ------------------------------------------------------------------ percentiles
def test_percentile_basic_and_bounds():
    values = [10, 20, 30, 40, 50]
    assert percentile(values, 0.0) == 10
    assert percentile(values, 1.0) == 50
    assert percentile(values, 0.5) == 30
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_latency_distribution_stats_and_cdf():
    dist = LatencyDistribution([100, 200, 300, 400])
    assert dist.mean == 250
    assert dist.p50 == pytest.approx(250)
    assert dist.p99 <= 400
    cdf = dist.cdf(points=4)
    assert cdf[-1] == (400, 1.0)
    assert len(cdf) == 4
    assert LatencyDistribution([]).mean == 0.0
    assert LatencyDistribution([]).cdf() == []


def test_percentile_interpolation_never_leaves_the_sample_range():
    """Regression: v*(1-w) + v*w can round one ulp below v for tiny w."""
    value = 2.2313463813688646e-173
    result = percentile([value] * 3, 1.192092896e-07)
    assert result == value


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=1))
@settings(max_examples=60, deadline=None)
def test_property_percentile_within_range_and_monotone(values, fraction):
    result = percentile(values, fraction)
    assert min(values) <= result <= max(values)
    assert percentile(values, 1.0) >= percentile(values, 0.0)


# -------------------------------------------------------------------- collector
def test_collector_counts_and_throughput():
    collector = MetricsCollector()
    collector.record(make_result("a", committed=True, end=1000))
    collector.record(make_result("b", committed=False, end=2000,
                                 reason=AbortReason.LOCK_TIMEOUT))
    collector.record(make_result("c", committed=True, end=3000, distributed=True))
    assert collector.committed_count() == 2
    assert collector.aborted_count() == 1
    assert collector.abort_rate() == pytest.approx(1 / 3)
    assert collector.throughput_tps(10_000) == pytest.approx(0.2)
    assert collector.abort_reasons() == {"lock_timeout": 1}


def test_collector_warmup_excludes_early_samples():
    collector = MetricsCollector(warmup_ms=1000)
    collector.record(make_result("early", end=500))
    collector.record(make_result("late", end=1500))
    assert collector.committed_count() == 1
    assert collector.warmup_samples == 1


def test_collector_filters_by_type_and_distribution():
    collector = MetricsCollector()
    collector.record(make_result("a", end=1000, distributed=True), txn_type="payment")
    collector.record(make_result("b", end=2000, distributed=False), txn_type="new_order")
    assert collector.committed_count("payment") == 1
    assert len(collector.latency_distribution(distributed=True)) == 1
    assert collector.average_latency_ms(txn_type="new_order") == 2000.0
    assert collector.throughput_tps(0) == 0.0


# --------------------------------------------------------------------- timeline
def test_timeline_buckets_and_series():
    timeline = ThroughputTimeline(bucket_ms=1000)
    for t in (100, 900, 1500, 2500, 2600, 2700):
        timeline.record(t)
    series = dict(timeline.series())
    assert series[0.0] == 2.0
    assert series[1000.0] == 1.0
    assert series[2000.0] == 3.0
    assert timeline.total() == 6
    with pytest.raises(ValueError):
        ThroughputTimeline(bucket_ms=0)
    assert ThroughputTimeline().series() == []


def test_timeline_series_extends_to_requested_end():
    timeline = ThroughputTimeline(bucket_ms=1000)
    timeline.record(500)
    series = timeline.series(until_ms=3500)
    assert len(series) == 4
    assert series[-1][1] == 0.0


# -------------------------------------------------------------------- breakdown
def test_phase_breakdown_averages():
    breakdown = PhaseBreakdown()
    breakdown.record({"execution": 100, "commit": 50})
    breakdown.record({"execution": 200, "commit": 150, "prepare": 10})
    breakdown.record(None)
    averages = breakdown.average()
    assert averages["execution"] == 150
    assert averages["commit"] == 100
    assert averages["prepare"] == 5
    assert breakdown.transaction_count == 2
    assert PhaseBreakdown().average() == {}


# -------------------------------------------------------------------- resources
def test_resource_usage_per_commit_ratios():
    usage = ResourceUsage(work_units=100, wan_messages=60, metadata_bytes=5000,
                          committed=20)
    assert usage.work_per_commit == 5.0
    assert usage.wan_messages_per_commit == 3.0
    empty = ResourceUsage()
    assert empty.work_per_commit == 0.0
    assert empty.wan_messages_per_commit == 0.0


# --------------------------------------------------------- cached sorted view
def test_latency_distribution_cache_invalidated_on_add():
    dist = LatencyDistribution([30, 10, 20])
    assert dist.p50 == 20
    assert dist.p(1.0) == 30
    dist.add(5)
    assert dist.p(0.0) == 5
    assert dist.p(1.0) == 30
    assert dist.mean == pytest.approx((30 + 10 + 20 + 5) / 4)


def test_latency_distribution_samples_is_a_cached_readonly_view():
    dist = LatencyDistribution([3, 1, 2])
    view = dist.samples
    assert isinstance(view, tuple)
    assert view == (3, 1, 2)               # insertion order, not sorted
    assert dist.samples is view            # cached, no per-access copy
    dist.add(9)
    assert dist.samples == (3, 1, 2, 9)    # invalidated by add


def test_latency_distribution_summary_stats_matches_accessors():
    dist = LatencyDistribution([5, 1, 4, 2, 3])
    stats = dist.summary_stats()
    assert stats["count"] == 5
    assert stats["mean"] == dist.mean
    assert stats["min"] == 1 and stats["max"] == 5
    assert stats["p50"] == dist.p50
    assert stats["p99"] == dist.p99
    assert stats["p999"] == dist.p999
    assert LatencyDistribution().summary_stats()["count"] == 0


def test_collector_incremental_counters_match_scans():
    collector = MetricsCollector(warmup_ms=0.0)
    collector.record(make_result(txn_id="a", committed=True))
    collector.record(make_result(txn_id="b", committed=False,
                                 reason=AbortReason.LOCK_TIMEOUT))
    collector.record(make_result(txn_id="c", committed=False,
                                 reason=AbortReason.LOCK_TIMEOUT))
    collector.record(make_result(txn_id="d", committed=False,
                                 reason=AbortReason.DEADLOCK))
    assert collector.committed_count() == 1
    assert collector.aborted_count() == 3
    assert collector.abort_rate() == 0.75
    assert collector.abort_reasons() == {"lock_timeout": 2, "deadlock": 1}
    # Filtered queries still scan and agree with the running counters.
    assert collector.committed_count(txn_type="generic") == 1
    assert collector.aborted_count(txn_type="generic") == 3
