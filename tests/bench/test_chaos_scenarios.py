"""The generated chaos matrix: registration, determinism, invariants.

The acceptance bar for the chaos combinator, pinned as tests:

* **Registration** — the full matrix generates >= 200 ``chaos_*`` scenarios
  (7 faults x 3 latency profiles x 4 arrival shapes x 3 workloads = 252),
  all under the ``chaos`` scenario family, plus the two graceful-degradation
  specs (``admission_knee``, ``chaos_saturated``).
* **Deterministic budgets** — generation-time pruning and run-time sampling
  are seeded: the same seed always keeps the same combos, and a pruned
  matrix derives byte-identical configs for the combos it keeps.
* **Invariants** — a smoke-scale chaos point runs clean through the full
  robustness-invariant catalog, and same-seed runs replay bit for bit on
  every engine (via the goldens runner subprocess).
"""

import pytest

from repro.bench.goldens import chaos_config
from repro.bench.runner import run_experiment
from repro.bench.scenarios import SCENARIOS, get_scenario
from repro.recovery.chaos import (
    CHAOS_FAULTS,
    CHAOS_LATENCY_PROFILES,
    CHAOS_SHAPES,
    CHAOS_SYSTEMS,
    CHAOS_WORKLOADS,
    KNEE_TPS,
    ChaosMatrix,
    build_chaos_fault_plan,
    chaos_scenario_names,
    sample_chaos_scenarios,
)
from repro.recovery.failures import FaultKind
from repro.recovery.invariants import all_passed, violations

#: Reduced scale shared by the run tests (mirrors the fault-family tests).
SCALE = dict(duration_ms=3_000.0, warmup_ms=600.0, terminals=4,
             ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200)


def expand_point(name, system, **overrides):
    sweep = get_scenario(name).sweep(axes={"system": (system,)},
                                     **{**SCALE, **overrides})
    points = sweep.points()
    assert len(points) == 1
    return points[0].config


# ---------------------------------------------------------------- registration
def test_full_matrix_registers_at_least_200_chaos_scenarios():
    names = chaos_scenario_names()
    expected = (len(CHAOS_FAULTS) * len(CHAOS_LATENCY_PROFILES)
                * len(CHAOS_SHAPES) * len(CHAOS_WORKLOADS))
    assert expected == 252
    assert len(names) == expected
    assert len(names) >= 200


def test_chaos_names_encode_their_axis_values():
    for name in chaos_scenario_names():
        assert name.startswith("chaos_")
        spec = SCENARIOS[name]
        assert spec.family == "chaos"
        fault, latency, shape = (spec.fixed["fault"], spec.fixed["latency"],
                                 spec.fixed["shape"])
        workload = spec.base.workload
        assert name == f"chaos_{fault}_{latency}_{shape}_{workload}"
        (system_axis,) = spec.axes
        assert system_axis.name == "system"
        assert system_axis.values == CHAOS_SYSTEMS


def test_graceful_degradation_scenarios_are_registered():
    knee = get_scenario("admission_knee")
    axes = {axis.name: axis.values for axis in knee.axes}
    assert axes["system"] == ("scalardb_plus", "geotp")
    assert axes["admission"] == ("on", "off")
    assert axes["load_multiple"] == (1.0, 2.0)
    assert set(axes["system"]) <= set(KNEE_TPS)

    saturated = get_scenario("chaos_saturated")
    axes = {axis.name: axis.values for axis in saturated.axes}
    assert axes["system"] == ("ssp", "scalardb_plus", "geotp")
    assert axes["fault"] == ("mw_crash", "ds_crash")


# ----------------------------------------------------------------- fault plans
def test_dual_plan_overlaps_across_targets_by_design():
    plan = build_chaos_fault_plan("dual", 10_000.0)
    outage, partition = plan.events
    assert outage.kind is FaultKind.REGION_OUTAGE
    assert partition.kind is FaultKind.PARTITION
    # The outage heals inside the still-active partition window — that is
    # the re-interception path the network tests pin.
    heal = outage.at_ms + outage.duration_ms
    assert partition.at_ms < heal < partition.at_ms + partition.duration_ms


def test_cascade_plan_windows_are_strictly_sequential():
    plan = build_chaos_fault_plan("cascade", 10_000.0)
    spike, crash = plan.events
    assert spike.kind is FaultKind.LATENCY_SPIKE
    assert crash.kind is FaultKind.DATASOURCE_CRASH
    assert spike.at_ms + spike.duration_ms < crash.at_ms


def test_every_fault_mode_builds_a_plan_inside_the_run():
    for fault in CHAOS_FAULTS:
        plan = build_chaos_fault_plan(fault, 3_000.0)
        for event in plan.events:
            assert 0.0 < event.at_ms
            assert event.at_ms + event.duration_ms < 3_000.0


def test_unknown_fault_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown chaos fault mode"):
        build_chaos_fault_plan("gremlins", 1_000.0)


# ------------------------------------------------------------- budget controls
def test_pruned_matrix_is_a_deterministic_subset_of_the_full_product():
    full = ChaosMatrix().combos()
    pruned_a = ChaosMatrix(max_scenarios=25).combos()
    pruned_b = ChaosMatrix(max_scenarios=25).combos()
    assert pruned_a == pruned_b
    assert len(pruned_a) == 25
    # Order-preserving sample of the full product, chaos_seeds intact: a
    # pruned matrix generates byte-identical configs for the combos it keeps.
    full_names = [ChaosMatrix.scenario_name(c) for c in full]
    kept_names = [ChaosMatrix.scenario_name(c) for c in pruned_a]
    positions = [full_names.index(name) for name in kept_names]
    assert positions == sorted(positions)
    for combo in pruned_a:
        assert combo == full[full_names.index(ChaosMatrix.scenario_name(combo))]


def test_different_prune_seeds_keep_different_subsets():
    a = ChaosMatrix(max_scenarios=25).combos()
    b = ChaosMatrix(max_scenarios=25, seed=7).combos()
    assert a != b


def test_sample_chaos_scenarios_is_seeded_and_bounded():
    first = sample_chaos_scenarios(10, seed=3)
    second = sample_chaos_scenarios(10, seed=3)
    assert first == second
    assert len(first) == 10
    assert all(name in chaos_scenario_names() for name in first)
    assert sample_chaos_scenarios(10, seed=4) != first
    everything = sample_chaos_scenarios(10_000)
    assert everything == chaos_scenario_names()


# -------------------------------------------------------------- materialisation
def test_latency_profiles_materialise_dynamic_topologies():
    flat = expand_point("chaos_dual_flat_poisson_ycsb", "geotp")
    assert flat.topology is None
    drift = expand_point("chaos_dual_drift_poisson_ycsb", "geotp")
    assert drift.topology is not None
    assert drift.active_probing  # geotp probes when latencies move
    churn = expand_point("chaos_dual_churn_poisson_ycsb", "ssp")
    assert churn.topology is not None
    assert not churn.active_probing  # ssp has no probing machinery


def test_fault_windows_scale_with_duration_overrides():
    config = expand_point("chaos_ds_crash_flat_closed_ycsb", "geotp")
    (event,) = config.fault_plan.events
    assert config.warmup_ms <= event.at_ms
    assert event.at_ms + event.duration_ms < config.duration_ms


def test_open_shapes_set_the_below_knee_arrival_process():
    config = expand_point("chaos_mw_crash_flat_mmpp_tpcc", "geotp")
    assert config.arrival is not None
    assert config.arrival.process == "mmpp"
    assert config.arrival.rate_tps < min(KNEE_TPS.values())
    closed = expand_point("chaos_mw_crash_flat_closed_tpcc", "geotp")
    assert closed.arrival is None


def test_admission_knee_points_toggle_the_scheduler_at_the_knee():
    sweep = get_scenario("admission_knee").sweep(**SCALE)
    for point in sweep.points():
        config = point.config
        knee = KNEE_TPS[point.params["system"]]
        assert config.arrival.rate_tps == knee * point.params["load_multiple"]
        if point.params["admission"] == "off":
            assert config.geotp is not None
            assert config.geotp.admission_threshold == 0.0


# ------------------------------------------------- invariants and determinism
def test_smoke_scale_chaos_point_passes_every_invariant():
    config = expand_point("chaos_cascade_drift_poisson_ycsb", "geotp")
    summary = run_experiment(config).summary()
    assert summary.invariants is not None
    assert all_passed(summary.invariants), violations(summary.invariants)
    assert summary.to_dict()["invariants"] == summary.invariants


def test_chaos_determinism_holds_on_every_engine(engine, goldens_runner):
    # The compiled engine runs in a REPRO_ENGINE-pinned subprocess; the
    # config is repro.bench.goldens.chaos_config().
    document = goldens_runner(engine, "determinism", "chaos")
    assert document["identical"], (
        f"chaos point diverged on the {engine} engine: "
        f"{document['first']} != {document['second']}")


def test_chaos_config_matches_the_registered_scenario():
    config = chaos_config()
    assert config.fault_plan is not None
    assert len(config.fault_plan.events) == 2
    assert config.topology is not None
    assert config.arrival is not None and config.arrival.process == "poisson"
