"""Engine selection: pure-Python kernel vs the optional mypyc-compiled core.

The hot kernel of the simulator lives in :mod:`repro.sim._kernel` (pure
Python, the source of truth) and — when the optional build has been run — as
an ahead-of-time-compiled twin in :mod:`repro.sim._ckernel` (mypyc).  Both
packages export the same five modules (``events``, ``process``,
``environment``, ``resources``, ``locks``) with identical semantics; the
compiled one simply removes interpreter overhead.

Which kernel a process uses is decided **once, at import time**, from the
``REPRO_ENGINE`` environment variable:

``pure``
    Always use the interpreted kernel.
``compiled``
    Require the compiled kernel; raise immediately if it is not built (never
    silently fall back — benchmarks asking for the compiled engine must not
    quietly measure the pure one).
``auto`` (default)
    Use the compiled kernel when available, else the pure one.

The public modules (:mod:`repro.sim.events`, :mod:`repro.sim.process`,
:mod:`repro.sim.environment`, :mod:`repro.sim.resources`,
:mod:`repro.storage.lock_manager`) are thin facades re-exporting from the
selected kernel, so the two class sets are never mixed within one process.
Worker processes (e.g. ``SweepRunner``'s ``ProcessPoolExecutor`` children)
inherit ``REPRO_ENGINE`` through the environment and therefore make the same
choice.

:func:`engine_info` is the introspection API every entry point (runner, CLI,
perf harness) reports, and the ``engine`` field of experiment summaries and
BENCH documents comes from :func:`active_engine`.
"""

from __future__ import annotations

import os
from types import ModuleType
from typing import Any, Dict, Optional, Tuple

ENGINE_ENV_VAR = "REPRO_ENGINE"
VALID_ENGINES: Tuple[str, ...] = ("pure", "compiled", "auto")

_requested: str = os.environ.get(ENGINE_ENV_VAR, "auto").strip().lower() or "auto"
if _requested not in VALID_ENGINES:
    raise RuntimeError(
        f"{ENGINE_ENV_VAR}={_requested!r} is not a valid engine; "
        f"choose one of {', '.join(VALID_ENGINES)}")

_compiled_error: Optional[str] = None


def _import_compiled() -> Optional[ModuleType]:
    """Import the compiled kernel package, or record why it is unusable."""
    global _compiled_error
    try:
        from repro.sim import _ckernel  # noqa: PLC0415 - deliberate lazy probe
    except ImportError as exc:
        _compiled_error = str(exc)
        return None
    return _ckernel


kernel: ModuleType
if _requested == "pure":
    from repro.sim import _kernel as kernel

    _active = "pure"
    _compiled_error = f"not attempted ({ENGINE_ENV_VAR}=pure)"
else:
    _compiled = _import_compiled()
    if _compiled is not None:
        kernel = _compiled
        _active = "compiled"
    elif _requested == "compiled":
        raise RuntimeError(
            f"{ENGINE_ENV_VAR}=compiled but the compiled engine core is not "
            f"available: {_compiled_error}. Build it with "
            f"`python tools/build_compiled.py` (requires mypy and a C "
            f"toolchain) or use {ENGINE_ENV_VAR}=auto|pure.")
    else:
        from repro.sim import _kernel as kernel

        _active = "pure"

#: The five kernel modules of the selected engine, re-exported by the facades.
events: ModuleType = kernel.events
process: ModuleType = kernel.process
environment: ModuleType = kernel.environment
resources: ModuleType = kernel.resources
locks: ModuleType = kernel.locks


def requested_engine() -> str:
    """The engine asked for via ``REPRO_ENGINE`` (``auto`` if unset)."""
    return _requested


def active_engine() -> str:
    """The engine this process actually runs: ``pure`` or ``compiled``."""
    return _active


def compiled_available() -> bool:
    """True if the compiled kernel can be imported in this interpreter.

    When the active engine is pure this *probes* the compiled package (the
    probe is cached); the imported compiled classes are simply unused, so the
    probe cannot contaminate the running engine.
    """
    if _active == "compiled":
        return True
    if _requested == "pure" and _compiled_error is not None \
            and _compiled_error.startswith("not attempted"):
        # REPRO_ENGINE=pure skipped the import-time probe; do it now.
        return _import_compiled() is not None
    return False


def engine_info() -> Dict[str, Any]:
    """Describe the engine selection of this process (JSON-serialisable)."""
    return {
        "requested": _requested,
        "active": _active,
        "compiled_available": compiled_available(),
        "compiled_error": None if compiled_available() else _compiled_error,
        "kernel": kernel.__name__,
        "env_var": ENGINE_ENV_VAR,
    }
