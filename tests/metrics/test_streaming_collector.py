"""Streaming-vs-retained collector equivalence and contract tests.

The :class:`StreamingMetricsCollector` folds everything at record time; this
module feeds identical synthetic transaction streams into both collectors and
asserts every aggregate the runner and the derived-metric consumers read is
equal — then pins the failure modes (unsupported filters, grid mismatches,
untracked middlewares) so they raise loudly instead of returning empty data.
"""

import random

import pytest

from repro.common import AbortReason, TransactionResult, TxnOutcome
from repro.metrics import (
    DEFAULT_RESERVOIR_SIZE,
    MetricsCollector,
    StreamingMetricsCollector,
)


def make_result(txn_id="mw-t1", committed=True, end=100.0, latency=50.0,
                distributed=False, reason=None, breakdown=None):
    return TransactionResult(
        txn_id=txn_id,
        outcome=TxnOutcome.COMMITTED if committed else TxnOutcome.ABORTED,
        start_time=end - latency, end_time=end, is_distributed=distributed,
        abort_reason=reason, phase_breakdown=breakdown or {})


def synthetic_stream(count=800, seed=4, middlewares=("geotp-0", "geotp-1")):
    """A deterministic mixed stream: commits/aborts, types, phases, warmup."""
    rng = random.Random(seed)
    reasons = [AbortReason.LOCK_TIMEOUT, AbortReason.ADMISSION_BLOCKED,
               AbortReason.DEADLOCK]
    stream = []
    for i in range(count):
        committed = rng.random() < 0.7
        mw = middlewares[i % len(middlewares)]
        stream.append((make_result(
            txn_id=f"{mw}-t{i}",
            committed=committed,
            end=rng.uniform(0.0, 10_000.0),
            latency=rng.expovariate(1.0 / 120.0) + 1.0,
            distributed=rng.random() < 0.4,
            reason=None if committed else rng.choice(reasons),
            breakdown={"exec": rng.uniform(1, 5), "commit": rng.uniform(1, 5)}
            if committed else None,
        ), rng.choice(["read", "write", "scan"])))
    return stream


def build_pair(stream, warmup_ms=1_000.0, duration_ms=10_000.0,
               track_middlewares=True):
    retained = MetricsCollector(warmup_ms=warmup_ms)
    streaming = StreamingMetricsCollector(
        warmup_ms=warmup_ms, duration_ms=duration_ms, seed=11,
        track_middlewares=track_middlewares)
    for result, txn_type in stream:
        retained.record(result, txn_type)
        streaming.record(result, txn_type)
    return retained, streaming


# ----------------------------------------------------------------- equivalence
def test_counts_and_abort_accounting_match_retained():
    retained, streaming = build_pair(synthetic_stream())
    assert streaming.warmup_samples == retained.warmup_samples
    assert streaming.committed_count() == retained.committed_count()
    assert streaming.aborted_count() == retained.aborted_count()
    assert streaming.abort_rate() == pytest.approx(retained.abort_rate())
    assert streaming.abort_reasons() == retained.abort_reasons()
    assert streaming.throughput_tps(9_000.0) == retained.throughput_tps(9_000.0)
    for txn_type in ("read", "write", "scan", "never-seen"):
        assert streaming.committed_count(txn_type) == \
            retained.committed_count(txn_type)
        assert streaming.aborted_count(txn_type) == \
            retained.aborted_count(txn_type)
        assert streaming.abort_rate(txn_type) == \
            pytest.approx(retained.abort_rate(txn_type))


def test_latency_aggregates_match_retained_exactly_below_capacity():
    # 800 txns << 4096: the reservoirs hold every sample, so not just the
    # exact streaming aggregates but the percentiles must agree.
    retained, streaming = build_pair(synthetic_stream())
    for distributed in (None, True, False):
        exact = retained.latency_distribution(distributed=distributed)
        estimated = streaming.latency_distribution(distributed=distributed)
        assert len(estimated) == len(exact)
        assert estimated.mean == pytest.approx(exact.mean)
        if len(exact):
            assert estimated.p50 == exact.p50
            assert estimated.p99 == exact.p99
    assert streaming.average_latency_ms() == pytest.approx(
        retained.average_latency_ms())


def test_availability_timeline_matches_retained():
    retained, streaming = build_pair(synthetic_stream())
    ours = streaming.availability_report(10_000.0)
    theirs = retained.availability_report(10_000.0)
    assert ours.bucket_ms == theirs.bucket_ms
    assert ours.buckets == theirs.buckets


def test_attribution_and_per_middleware_timelines_match_retained():
    retained, streaming = build_pair(synthetic_stream())
    assert streaming.attribution() == retained.attribution()
    ours = streaming.per_middleware_availability(10_000.0)
    theirs = retained.per_middleware_availability(10_000.0)
    assert set(ours) == set(theirs)
    for name in ours:
        assert ours[name].buckets == theirs[name].buckets


def test_phase_breakdown_matches_retained():
    retained, streaming = build_pair(synthetic_stream())
    ours, theirs = streaming.phase_breakdown(), retained.phase_breakdown()
    assert ours.transaction_count == theirs.transaction_count
    assert ours.average() == pytest.approx(theirs.average())


def test_attribution_sums_to_collector_totals():
    _, streaming = build_pair(synthetic_stream())
    attribution = streaming.attribution()
    assert sum(c["committed"] for c in attribution.values()) == \
        streaming.committed_count()
    assert sum(c["aborted"] for c in attribution.values()) == \
        streaming.aborted_count()


# -------------------------------------------------------------- failure modes
def test_unsupported_filters_raise_instead_of_returning_empty():
    _, streaming = build_pair(synthetic_stream())
    with pytest.raises(RuntimeError, match="retains no per-transaction"):
        streaming.latency_distribution(committed_only=False)
    with pytest.raises(RuntimeError, match="retains no per-transaction"):
        streaming.latency_distribution(txn_type="read")
    with pytest.raises(RuntimeError, match="retains no per-transaction"):
        streaming._filtered()


def test_availability_grid_mismatch_raises():
    _, streaming = build_pair(synthetic_stream())
    with pytest.raises(ValueError, match="grid"):
        streaming.availability_report(10_000.0, bucket_ms=500.0)
    with pytest.raises(ValueError, match="grid"):
        streaming.availability_report(20_000.0)
    with pytest.raises(ValueError):
        streaming.per_middleware_availability(10_000.0, bucket_ms=500.0)


def test_no_duration_means_no_timeline():
    streaming = StreamingMetricsCollector(duration_ms=None)
    streaming.record(make_result())
    with pytest.raises(RuntimeError, match="without duration_ms"):
        streaming.availability_report(10_000.0)


def test_untracked_middlewares_raise():
    _, streaming = build_pair(synthetic_stream(), track_middlewares=False)
    with pytest.raises(RuntimeError, match="track_middlewares"):
        streaming.attribution()
    with pytest.raises(RuntimeError, match="track_middlewares"):
        streaming.per_middleware_availability(10_000.0)


# --------------------------------------------------------------------- memory
def test_retains_samples_flag_and_flat_sample_list():
    retained, streaming = build_pair(synthetic_stream())
    assert MetricsCollector.retains_samples
    assert not StreamingMetricsCollector.retains_samples
    assert len(retained.samples) > 0
    assert streaming.samples == []  # nothing accumulates per transaction


def test_reservoirs_stay_bounded_past_capacity():
    streaming = StreamingMetricsCollector(duration_ms=1_000.0, seed=1)
    for i in range(DEFAULT_RESERVOIR_SIZE * 3):
        streaming.record(make_result(txn_id=f"mw-t{i}", end=500.0,
                                     latency=float(i % 300 + 1)))
    distribution = streaming.latency_distribution()
    assert len(distribution) == DEFAULT_RESERVOIR_SIZE * 3
    assert distribution.reservoir_len == DEFAULT_RESERVOIR_SIZE
    assert streaming.samples == []
