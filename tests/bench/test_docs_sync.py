"""The committed EXPERIMENTS.md registry tables must match the live registries.

``python -m repro.bench list --markdown`` is the single source of the
scenario/system/workload tables; EXPERIMENTS.md commits its output between
marker comments.  This test (and the CI drift step, which runs the same
comparison from the shell) fails whenever a registration lands without the
doc refresh — killing table drift:

    PYTHONPATH=src python -c "from repro.bench.report import \\
        update_registry_block; update_registry_block('EXPERIMENTS.md')"
"""

from pathlib import Path

import pytest

from repro.bench.report import (
    extract_registry_block,
    format_markdown_table,
    registry_markdown,
    update_registry_block,
)
from repro.bench.scenarios import SCENARIO_FAMILIES, SCENARIOS, scenario_names
from repro.plugins import system_names, workload_names

EXPERIMENTS_MD = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"


def test_committed_registry_tables_match_the_live_registries():
    committed = extract_registry_block(EXPERIMENTS_MD.read_text(encoding="utf-8"))
    fresh = registry_markdown()
    assert committed == fresh, (
        "EXPERIMENTS.md registry tables are stale; regenerate with\n"
        "  PYTHONPATH=src python -c \"from repro.bench.report import "
        "update_registry_block; update_registry_block('EXPERIMENTS.md')\"")


def test_markdown_block_lists_every_registration():
    block = registry_markdown()
    for name in scenario_names():
        scenario = SCENARIOS[name]
        if scenario.family is not None:
            # Generated families collapse into one summary row; the member
            # scenarios stay discoverable via plain `list`.
            assert f"`{scenario.family}_*`" in block
        else:
            assert f"`{name}`" in block
    for name in system_names():
        assert f"`{name}`" in block
    for name in workload_names():
        assert f"`{name}`" in block


def test_family_rows_carry_registered_descriptions():
    block = registry_markdown()
    assert "#### Generated scenario families" in block
    for family, description in SCENARIO_FAMILIES.items():
        assert f"`{family}_*`" in block
        assert description in block
    # Family members must NOT get individual rows (that is the point).
    members = [n for n in scenario_names() if SCENARIOS[n].family is not None]
    assert members, "expected at least one generated scenario family"
    assert f"`{members[0]}`" not in block


def test_update_registry_block_roundtrip(tmp_path):
    doc = tmp_path / "doc.md"
    from repro.bench.report import REGISTRY_BLOCK_BEGIN, REGISTRY_BLOCK_END
    doc.write_text(f"prefix\n\n{REGISTRY_BLOCK_BEGIN}\nstale\n"
                   f"{REGISTRY_BLOCK_END}\n\nsuffix\n", encoding="utf-8")
    assert update_registry_block(str(doc)) is True        # replaced stale text
    assert update_registry_block(str(doc)) is False       # now a no-op
    text = doc.read_text(encoding="utf-8")
    assert text.startswith("prefix")
    assert text.endswith("suffix\n")
    assert extract_registry_block(text) == registry_markdown()


def test_extract_registry_block_requires_markers():
    with pytest.raises(ValueError):
        extract_registry_block("no markers here")


def test_markdown_table_escapes_pipes():
    table = format_markdown_table(("a",), [("x|y",)])
    assert "x\\|y" in table
