"""Dedicated unit tests for :mod:`repro.core.admission`.

The broader scheduler test module exercises admission as part of the GeoTP
pipeline; this module pins the `LateTransactionScheduler` contract on its own:
counter bookkeeping, threshold semantics, backoff behaviour and the Eq. 9
probability wiring.
"""

import pytest

from repro.core import HotspotFootprint, LateTransactionScheduler
from repro.core.admission import AdmissionDecision
from repro.sim import Environment, SeededRNG


def make_hot_footprint(t_cnt, c_cnt, a_cnt, record=("t", "hot")):
    footprint = HotspotFootprint()
    entry = footprint.get_or_create(record)
    entry.t_cnt, entry.c_cnt, entry.a_cnt = t_cnt, c_cnt, a_cnt
    return footprint


def run_admit(admission, env, record_ids):
    decisions = []

    def proc():
        decision = yield from admission.admit(env, record_ids)
        decisions.append(decision)

    env.process(proc())
    env.run()
    return decisions[0]


# ----------------------------------------------------------------- probability
def test_success_probability_matches_eq9():
    # Each record contributes (c_cnt / t_cnt) ^ max(a_cnt - 1, 0).
    footprint = make_hot_footprint(10, 5, 3)
    admission = LateTransactionScheduler(footprint, SeededRNG(0))
    decision = admission.evaluate([("t", "hot")])
    assert decision.success_probability == pytest.approx(0.5 ** 2)


def test_unknown_records_are_always_admitted():
    admission = LateTransactionScheduler(HotspotFootprint(), SeededRNG(0))
    for key in range(20):
        decision = admission.evaluate([("t", key)])
        assert decision.admitted
        assert decision.success_probability == 1.0


# -------------------------------------------------------------------- counters
def test_admit_partitions_outcomes_across_counters():
    # p = 0.5 with one active waiter: some admitted, some rejected, and every
    # retry increments blocked_count.
    footprint = make_hot_footprint(10, 5, 2)
    admission = LateTransactionScheduler(footprint, SeededRNG(42),
                                         max_retries=2, backoff_ms=1.0)
    env = Environment()
    decisions = [run_admit(admission, env, [("t", "hot")]) for _ in range(50)]

    admitted = [d for d in decisions if d.admitted]
    rejected = [d for d in decisions if not d.admitted]
    assert admission.admitted_count == len(admitted)
    assert admission.rejected_count == len(rejected)
    assert admission.admitted_count + admission.rejected_count == 50
    assert admission.blocked_count == sum(d.retries_used for d in decisions)
    # Rejections exhausted the retry budget exactly.
    assert all(d.retries_used == 2 for d in rejected)
    assert admitted and rejected  # both outcomes occur at p=0.5


def test_evaluate_never_touches_counters():
    footprint = make_hot_footprint(100, 0, 5)  # hopeless: p == 0
    admission = LateTransactionScheduler(footprint, SeededRNG(3))
    for _ in range(10):
        admission.evaluate([("t", "hot")])
    assert admission.admitted_count == 0
    assert admission.blocked_count == 0
    assert admission.rejected_count == 0


# ------------------------------------------------------------------- threshold
def test_threshold_below_probability_short_circuits_rng():
    class ExplodingRNG:
        def random(self):  # pragma: no cover - must not be called
            raise AssertionError("threshold pass must not draw")

    footprint = make_hot_footprint(10, 9, 2)  # p = 0.81
    admission = LateTransactionScheduler(footprint, ExplodingRNG(),
                                         threshold=0.8)
    decision = admission.evaluate([("t", "hot")])
    assert decision.admitted


def test_threshold_above_probability_falls_back_to_draw():
    footprint = make_hot_footprint(10, 9, 2)  # p = 0.81
    admission = LateTransactionScheduler(footprint, SeededRNG(5),
                                         threshold=0.99)
    outcomes = {admission.evaluate([("t", "hot")]).admitted
                for _ in range(200)}
    assert outcomes == {True, False}


# --------------------------------------------------------------------- backoff
def test_zero_backoff_retries_without_advancing_time():
    footprint = make_hot_footprint(100, 0, 5)  # p == 0, every attempt blocks
    admission = LateTransactionScheduler(footprint, SeededRNG(1),
                                         max_retries=4, backoff_ms=0.0)
    env = Environment()
    decision = run_admit(admission, env, [("t", "hot")])
    assert not decision.admitted
    assert decision.retries_used == 4
    assert env.now == 0.0


def test_max_retries_zero_rejects_immediately():
    footprint = make_hot_footprint(100, 0, 5)
    admission = LateTransactionScheduler(footprint, SeededRNG(1),
                                         max_retries=0, backoff_ms=10.0)
    env = Environment()
    decision = run_admit(admission, env, [("t", "hot")])
    assert not decision.admitted
    assert decision.retries_used == 0
    assert env.now == 0.0
    assert admission.blocked_count == 0
    assert admission.rejected_count == 1


def test_backoff_accumulates_once_per_block():
    footprint = make_hot_footprint(100, 0, 5)
    admission = LateTransactionScheduler(footprint, SeededRNG(1),
                                         max_retries=3, backoff_ms=7.5)
    env = Environment()
    decision = run_admit(admission, env, [("t", "hot")])
    assert decision.retries_used == 3
    assert env.now == pytest.approx(3 * 7.5)


# ----------------------------------------------------------------- determinism
def test_same_seed_same_decisions():
    def trace(seed):
        footprint = make_hot_footprint(10, 5, 2)
        admission = LateTransactionScheduler(footprint, SeededRNG(seed),
                                             max_retries=2, backoff_ms=1.0)
        env = Environment()
        return [run_admit(admission, env, [("t", "hot")])
                for _ in range(25)]

    assert trace(9) == trace(9)
    assert trace(9) != trace(10)


def test_decision_is_plain_dataclass():
    decision = AdmissionDecision(admitted=True, success_probability=1.0,
                                 retries_used=0)
    assert decision == AdmissionDecision(True, 1.0, 0)
