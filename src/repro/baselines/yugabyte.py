"""A YugabyteDB-like geo-distributed database (the Figure 13 comparator).

YugabyteDB is not a middleware: the client connects to the nearest database
node, which acts as the query coordinator, and data is partitioned across the
nodes with transactional replication.  Two behaviours matter for the paper's
comparison and are modelled here:

* the coordinator is co-located with one of the data nodes (zero network cost
  to reach data stored there);
* single-shard transactions take a fast path — the final apply of provisional
  records happens asynchronously after the commit decision, so the client sees
  roughly one round trip.

Multi-shard transactions still pay a distributed commit (prepare + decision),
and there is no latency-aware scheduling, so under high contention remote lock
spans hurt it the same way they hurt SSP — which is where GeoTP wins in the
paper's Figure 13.
"""

from __future__ import annotations

from repro.common import AbortReason, TxnOutcome, Vote
from repro import protocol
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.plugins import BuildContext, SystemPlugin, register_system


class YugabyteCoordinator(TwoPhaseCommitCoordinator):
    """Distributed-database coordinator co-located with a data node."""

    system_name = "YugabyteDB"

    def _commit_centralized(self, ctx: TransactionContext):
        """Single-shard fast path: commit acknowledged after the decision is durable.

        The provisional-record apply is pushed to the data node asynchronously,
        so the client does not wait for the commit round trip.
        """
        name = ctx.participants[0]
        handle = self.participants[name]
        yield from self._flush_decision_log(ctx, commit=True)
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        self.send_participant(handle, protocol.MSG_COMMIT_ONE_PHASE,
                              {"xid": ctx.branch_xid(name)})
        return TxnOutcome.COMMITTED, None

    def _commit_distributed(self, ctx: TransactionContext):
        """Multi-shard transactions: prepare round trip, then asynchronous decision."""
        outcome, reason = yield from self._prepare_only(ctx)
        if outcome is TxnOutcome.ABORTED:
            return outcome, reason
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        for name in ctx.participants:
            handle = self.participants[name]
            self.send_participant(handle, protocol.MSG_XA_COMMIT,
                                  {"xid": ctx.branch_xid(name)})
        return TxnOutcome.COMMITTED, None

    def _prepare_only(self, ctx: TransactionContext):
        vote_events = {}
        for name in ctx.participants:
            handle = self.participants[name]
            vote_events[name] = self.timed_request_participant(
                handle, protocol.MSG_XA_PREPARE, {"xid": ctx.branch_xid(name)})
        condition = yield self.env.all_of(list(vote_events.values()))
        for name, event in vote_events.items():
            reply = condition[event]
            vote = reply.get("vote", Vote.NO) if isinstance(reply, dict) else Vote.NO
            ctx.record_vote(name, vote)
        yield from self._flush_decision_log(ctx, commit=ctx.all_yes())
        if ctx.all_yes():
            return TxnOutcome.COMMITTED, None
        yield from self._dispatch_decision(ctx, protocol.MSG_XA_ROLLBACK)
        return TxnOutcome.ABORTED, AbortReason.PREPARE_FAILED


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> YugabyteCoordinator:
    return YugabyteCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                               ctx.participants, ctx.partitioner)


register_system(SystemPlugin(
    name="yugabyte",
    description="YugabyteDB-like kernel whose coordinator lives on a data node",
    aliases=("yugabytedb",),
    builder=_build,
    colocated_with_ds0=True,
))
