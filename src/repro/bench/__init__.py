"""Benchmark harness: scenario registry, sweep runner, experiments, reporting.

The layer is organised as a pipeline:

* ``scenarios`` — declarative :class:`ScenarioSpec` registry; every paper
  figure/table is a base config plus named parameter axes;
* ``parallel`` — :class:`SweepRunner` expands a sweep and executes its points
  serially or across a process pool;
* ``experiments`` — one thin function per figure that reshapes sweep results
  into the dicts the paper plots;
* ``runner`` / ``report`` — the single-point experiment runner and the
  plain-text tables.

``python -m repro.bench`` lists and runs registered scenarios from the shell.
"""

from repro.bench.parallel import (
    PointResult,
    SweepResult,
    SweepRunner,
    run_scenario_sweep,
)
from repro.bench.perf import (
    PerfMetrics,
    compare_to_baseline,
    measure_scenario,
    run_perf,
)
from repro.bench.report import format_table, print_series, print_table
from repro.bench.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
)
from repro.bench.scenarios import (
    SCENARIOS,
    Axis,
    ScenarioSpec,
    SweepPoint,
    SweepSpec,
    get_scenario,
    scenario_names,
)

__all__ = [
    "Axis",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSummary",
    "PerfMetrics",
    "PointResult",
    "SCENARIOS",
    "compare_to_baseline",
    "measure_scenario",
    "run_perf",
    "ScenarioSpec",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "format_table",
    "get_scenario",
    "print_series",
    "print_table",
    "run_experiment",
    "run_scenario_sweep",
    "scenario_names",
]
