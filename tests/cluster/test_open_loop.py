"""Open-system client pool: accounting invariants, shedding, determinism.

The pool decouples offered load from achieved load, so the books must always
balance: every arrival is either started or dropped, every started session
eventually completes (or is still in flight when the run ends), and the pool
never runs more concurrent sessions than ``max_clients``.  These tests drive
the pool through ``run_experiment`` — the same path the load sweeps use — at
tiny scale.
"""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.workloads.arrivals import ArrivalConfig
from repro.workloads.ycsb import YCSBConfig


def open_config(rate_tps=120.0, max_clients=64, duration_ms=4_000.0,
                warmup_ms=500.0, seed=7, **kwargs):
    return ExperimentConfig(
        system="geotp",
        arrival=ArrivalConfig(rate_tps=rate_tps, max_clients=max_clients),
        duration_ms=duration_ms, warmup_ms=warmup_ms,
        ycsb=YCSBConfig(records_per_node=500, preload_rows_per_node=500),
        seed=seed, **kwargs)


@pytest.fixture(scope="module")
def moderate_run():
    return run_experiment(open_config())


@pytest.fixture(scope="module")
def saturated_run():
    # 600 arrivals/s into 8 session slots: hopelessly past the knee.
    return run_experiment(open_config(rate_tps=600.0, max_clients=8))


# ------------------------------------------------------------------ accounting
def test_every_arrival_is_started_or_dropped(moderate_run, saturated_run):
    for summary in (moderate_run, saturated_run):
        books = summary.open_loop
        assert books["offered"] > 0
        assert books["offered"] == books["started"] + books["dropped"]


def test_every_started_session_completes_or_is_in_flight(moderate_run,
                                                         saturated_run):
    for summary in (moderate_run, saturated_run):
        books = summary.open_loop
        assert books["started"] == books["completed"] + books["in_flight_at_end"]
        assert 0 <= books["in_flight_at_end"] <= books["max_clients"]


def test_completions_match_collector_totals(moderate_run):
    # Sessions that finish during warmup complete without entering the
    # measured totals, so equality holds exactly only at warmup 0; with a
    # warmup the measured totals can never exceed the completion count.
    books = moderate_run.open_loop
    assert moderate_run.committed + moderate_run.aborted <= books["completed"]
    no_warmup = run_experiment(open_config(warmup_ms=0.0))
    assert no_warmup.open_loop["completed"] == \
        no_warmup.committed + no_warmup.aborted


def test_open_runs_default_to_streaming_metrics(moderate_run):
    assert moderate_run.metrics_mode == "streaming"


# -------------------------------------------------------------------- shedding
def test_pool_never_exceeds_max_clients(moderate_run, saturated_run):
    assert moderate_run.open_loop["peak_active"] <= 64
    assert saturated_run.open_loop["peak_active"] <= 8


def test_saturated_pool_sheds_instead_of_queueing(saturated_run):
    books = saturated_run.open_loop
    assert books["peak_active"] == books["max_clients"]
    assert books["dropped"] > 0
    assert books["drop_rate"] > 0.5  # 600 offered vs ~tens served


def test_unsaturated_pool_drops_nothing():
    summary = run_experiment(open_config(rate_tps=10.0, max_clients=64,
                                         duration_ms=3_000.0))
    books = summary.open_loop
    assert books["dropped"] == 0
    assert books["drop_rate"] == 0.0
    assert books["peak_active"] < books["max_clients"]


# ----------------------------------------------------------------- determinism
def test_same_seed_open_runs_are_identical():
    first = run_experiment(open_config(seed=13))
    second = run_experiment(open_config(seed=13))
    assert first.open_loop == second.open_loop
    assert (first.committed, first.aborted) == (second.committed,
                                                second.aborted)
    assert first.p99_latency_ms == second.p99_latency_ms


def test_different_seed_changes_the_arrival_stream():
    first = run_experiment(open_config(seed=13))
    other = run_experiment(open_config(seed=14))
    assert first.open_loop != other.open_loop


# ------------------------------------------------------------------ closed loop
def test_closed_loop_runs_have_no_open_loop_report(moderate_run):
    closed = run_experiment(ExperimentConfig(
        system="geotp", terminals=4, duration_ms=2_000.0, warmup_ms=500.0,
        ycsb=YCSBConfig(records_per_node=500, preload_rows_per_node=500)))
    assert closed.open_loop is None
    assert closed.metrics_mode == "retained"
    assert moderate_run.open_loop is not None
