"""Benchmark harness: scenario registry, sweep runner, experiments, reporting.

The layer is organised as a pipeline:

* ``scenarios`` — declarative :class:`ScenarioSpec` registry; every paper
  figure/table is a base config plus named parameter axes;
* ``parallel`` — :class:`SweepRunner` expands a sweep and executes its points
  serially or across a process pool;
* ``experiments`` — one thin function per figure that reshapes sweep results
  into the dicts the paper plots;
* ``cache`` — opt-in per-point result cache keyed on (canonical config hash,
  seed, engine + kernel fingerprint) that makes killed sweeps resumable;
* ``figures`` — sanity-checked figure pipeline over the CLI's JSON documents
  (dict-of-columns data, registered checks, optional matplotlib rendering);
* ``runner`` / ``report`` — the single-point experiment runner and the
  plain-text tables.

``python -m repro.bench`` lists and runs registered scenarios from the shell.
"""

from repro.bench.cache import (
    SweepCache,
    canonical_repr,
    config_hash,
    engine_token,
)
from repro.bench.figures import (
    Figure,
    FigureCheckError,
    assert_figure,
    build_figures,
    check_figure,
    emit_figures,
)
from repro.bench.parallel import (
    PointResult,
    SweepResult,
    SweepRunner,
    run_scenario_sweep,
)
from repro.bench.perf import (
    PerfMetrics,
    compare_to_baseline,
    measure_scenario,
    run_perf,
)
from repro.bench.report import format_table, print_series, print_table
from repro.bench.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
)
from repro.bench.scenarios import (
    SCENARIOS,
    Axis,
    ScenarioSpec,
    SweepPoint,
    SweepSpec,
    get_scenario,
    scenario_names,
)

__all__ = [
    "Axis",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSummary",
    "Figure",
    "FigureCheckError",
    "PerfMetrics",
    "PointResult",
    "SCENARIOS",
    "SweepCache",
    "assert_figure",
    "build_figures",
    "canonical_repr",
    "check_figure",
    "compare_to_baseline",
    "config_hash",
    "emit_figures",
    "engine_token",
    "measure_scenario",
    "run_perf",
    "ScenarioSpec",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "format_table",
    "get_scenario",
    "print_series",
    "print_table",
    "run_experiment",
    "run_scenario_sweep",
    "scenario_names",
]
