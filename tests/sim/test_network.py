"""Unit tests for the point-to-point network model."""

import pytest

from repro.sim import ConstantLatency, Environment, Network


def make_net(rtt_ab=100.0):
    env = Environment()
    net = Network(env)
    net.set_link("a", "b", ConstantLatency(rtt_ab))
    a = net.interface("a")
    b = net.interface("b")
    return env, net, a, b


def test_send_delivers_after_one_way_delay():
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        msg = yield b.receive()
        received.append((env.now, msg.msg_type, msg.payload))

    def sender():
        yield env.timeout(0)
        a.send("b", "hello", payload=123)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert received == [(50.0, "hello", 123)]


def test_send_to_self_has_zero_delay():
    env, net, a, b = make_net()
    received = []

    def proc():
        a.send("a", "loopback")
        msg = yield a.receive()
        received.append(env.now)

    env.process(proc())
    env.run()
    assert received == [0.0]


def test_send_to_unknown_node_raises():
    env, net, a, b = make_net()
    with pytest.raises(KeyError):
        a.send("nowhere", "x")


def test_request_reply_takes_full_round_trip():
    env, net, a, b = make_net(rtt_ab=100)
    results = []

    def server():
        while True:
            msg = yield b.receive()
            b.reply(msg, msg.payload * 2)

    def client():
        value = yield a.request("b", "double", payload=21)
        results.append((env.now, value))

    env.process(server())
    env.process(client())
    env.run(until=1000)
    assert results == [(100.0, 42)]


def test_request_reply_includes_server_processing_time():
    env, net, a, b = make_net(rtt_ab=100)
    results = []

    def server():
        msg = yield b.receive()
        yield env.timeout(7)
        b.reply(msg, "ok")

    def client():
        value = yield a.request("b", "work")
        results.append(env.now)

    env.process(server())
    env.process(client())
    env.run()
    assert results == [pytest.approx(107.0)]


def test_rtt_between_nodes_reported():
    env, net, a, b = make_net(rtt_ab=73)
    assert net.rtt("a", "b") == 73
    assert net.rtt("b", "a") == 73
    assert net.rtt("a", "a") == 0
    assert a.rtt_to("b") == 73


def test_asymmetric_link_when_requested():
    env = Environment()
    net = Network(env)
    net.set_link("x", "y", ConstantLatency(10), symmetric=False)
    net.set_link("y", "x", ConstantLatency(30), symmetric=False)
    assert net.rtt("x", "y") == 10
    assert net.rtt("y", "x") == 30


def test_default_link_model_applies_to_unknown_pairs():
    env = Environment()
    net = Network(env, default_rtt_ms=8)
    net.interface("p")
    net.interface("q")
    assert net.rtt("p", "q") == 8


def test_network_stats_count_messages_by_type():
    env, net, a, b = make_net()

    def receiver():
        while True:
            yield b.receive()

    def sender():
        a.send("b", "ping")
        a.send("b", "ping")
        a.send("b", "data")
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run(until=500)
    assert net.stats.messages_sent == 3
    assert net.stats.messages_by_type["ping"] == 2
    assert net.stats.messages_by_type["data"] == 1


def test_reply_without_request_rejected():
    env, net, a, b = make_net()

    def receiver():
        msg = yield b.receive()
        with pytest.raises(ValueError):
            b.reply(msg, "oops")

    def sender():
        a.send("b", "one_way")
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run()


# ------------------------------------------------------------- fault support
def test_disrupted_node_parks_messages_and_releases_them_on_heal():
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        while True:
            msg = yield b.receive()
            received.append((env.now, msg.msg_type))

    def sender():
        net.disrupt_node("b")
        a.send("b", "during_outage")
        a.send("b", "also_during")
        yield env.timeout(300)
        net.restore_node("b")
        yield env.timeout(0)

    env.process(receiver(), daemon=True)
    env.process(sender())
    env.run(until=1000)
    # Released in park order, redelivered one link delay after the heal.
    assert received == [(350.0, "during_outage"), (350.0, "also_during")]
    assert net.stats.messages_parked == 2


def test_drop_mode_discards_messages_permanently():
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        while True:
            msg = yield b.receive()
            received.append(msg.msg_type)

    def sender():
        net.disrupt_node("b", mode="drop")
        a.send("b", "lost")
        yield env.timeout(200)
        net.restore_node("b")
        a.send("b", "after_heal")
        yield env.timeout(0)

    env.process(receiver(), daemon=True)
    env.process(sender())
    env.run(until=1000)
    assert received == ["after_heal"]
    assert net.stats.messages_dropped == 1


def test_outage_parks_the_reply_leg_of_an_rpc_in_flight():
    """An RPC whose request got through still stalls on the blocked reply."""
    env, net, a, b = make_net(rtt_ab=100)
    events = {}

    def server():
        msg = yield b.receive()
        # The outage strikes while the request is being processed.
        net.disrupt_node("b")
        b.reply(msg, "pong")

    def client():
        reply = yield a.request("b", "ping")
        events["replied_at"] = (env.now, reply)

    def healer():
        yield env.timeout(400)
        net.restore_node("b")

    env.process(server())
    env.process(client())
    env.process(healer())
    env.run(until=2000)
    # Request arrives at t=50, reply parked, healed at 400, redelivered +50.
    assert events["replied_at"] == (450.0, "pong")


def test_partitioned_link_is_directional_pairs_and_heals():
    env, net, a, b = make_net(rtt_ab=100)
    net.set_link("a", "c", ConstantLatency(10.0))
    c = net.interface("c")
    received = []

    def receiver(iface):
        while True:
            msg = yield iface.receive()
            received.append((env.now, msg.recipient, msg.msg_type))

    def sender():
        net.disrupt_link("a", "b")
        a.send("b", "blocked")
        a.send("c", "unaffected")   # other links keep flowing
        yield env.timeout(100)
        net.restore_link("a", "b")
        yield env.timeout(0)

    env.process(receiver(b), daemon=True)
    env.process(receiver(c), daemon=True)
    env.process(sender())
    env.run(until=1000)
    assert (5.0, "c", "unaffected") in received
    assert (150.0, "b", "blocked") in received


def test_degraded_node_multiplies_link_delay_and_heals():
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        while True:
            msg = yield b.receive()
            received.append((env.now, msg.msg_type))

    def sender():
        net.degrade_node("b", 3.0)
        a.send("b", "slow")          # 50 ms one-way becomes 150 ms
        yield env.timeout(200)
        net.degrade_node("b", 1.0)   # heal
        a.send("b", "fast")
        yield env.timeout(0)

    env.process(receiver(), daemon=True)
    env.process(sender())
    env.run(until=1000)
    assert received == [(150.0, "slow"), (250.0, "fast")]
    assert net._faults is None  # fully healed networks drop the fault state


def test_released_messages_still_honour_other_active_disruptions():
    """Healing one outage must not tunnel traffic through another one.

    A message parked under the *source* node's outage is re-intercepted on
    release: if its destination is still down, it re-parks there and is only
    delivered once that outage heals too.
    """
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        while True:
            msg = yield b.receive()
            received.append((env.now, msg.msg_type))

    def sender():
        net.disrupt_node("a")          # source down first: parks under "a"
        net.disrupt_node("b")
        a.send("b", "caught_twice")
        yield env.timeout(200)
        net.restore_node("a")          # destination is still down
        yield env.timeout(200)
        net.restore_node("b")
        yield env.timeout(0)

    env.process(receiver(), daemon=True)
    env.process(sender())
    env.run(until=2000)
    # Released at t=200 but re-parked under b's outage; delivered one link
    # delay after b heals at t=400, never inside b's outage window.
    assert received == [(450.0, "caught_twice")]
    assert net.stats.messages_parked == 2  # parked once per disruption
    assert net._faults is None


def test_degrade_factor_below_one_rejected():
    env, net, a, b = make_net()
    with pytest.raises(ValueError):
        net.degrade_node("b", 0.5)
    with pytest.raises(ValueError):
        net.disrupt_node("b", mode="teleport")
