"""The simulation environment: virtual clock and event queue (facade).

The implementation lives in the engine kernel —
:mod:`repro.sim._kernel.environment` (pure Python, source of truth) or its
mypyc-compiled twin — and is selected once per process by
:mod:`repro.sim.engine` from the ``REPRO_ENGINE`` environment variable.

See the kernel module for the full design notes: the microqueue/heap split,
the relaxed same-timestamp ordering contract, lazy cancellation with in-place
compaction, and the hashed timer wheel behind ``call_coarse``.
"""

from repro.sim.engine import environment as _impl

Environment = _impl.Environment
EmptySchedule = _impl.EmptySchedule
Timer = _impl.Timer
WheelTimer = _impl.WheelTimer
_WheelBucket = _impl._WheelBucket
PRIORITY_URGENT = _impl.PRIORITY_URGENT
PRIORITY_NORMAL = _impl.PRIORITY_NORMAL
WHEEL_GRANULARITY_MS = _impl.WHEEL_GRANULARITY_MS
_COMPACT_MIN_CANCELLED = _impl._COMPACT_MIN_CANCELLED

__all__ = [
    "EmptySchedule",
    "Environment",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Timer",
    "WHEEL_GRANULARITY_MS",
    "WheelTimer",
]
