"""Unit and property tests for the YCSB workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import OpType
from repro.workloads import YCSBConfig, YCSBWorkload

NODES = ["ds0", "ds1", "ds2", "ds3"]


def make_workload(**overrides):
    config = YCSBConfig(records_per_node=1000, preload_rows_per_node=100, **overrides)
    return YCSBWorkload(NODES, config)


def participants_of(workload, spec):
    partitioner = workload.make_partitioner()
    return {partitioner.locate(op.table, op.key)
            for op in (stmt.operation for stmt in spec.all_statements)}


def test_rejects_invalid_configuration():
    with pytest.raises(ValueError):
        YCSBWorkload(NODES, YCSBConfig(records_per_node=0))
    with pytest.raises(ValueError):
        YCSBWorkload(NODES, YCSBConfig(distributed_ratio=1.5))
    with pytest.raises(ValueError):
        YCSBWorkload(NODES, YCSBConfig(nodes_per_distributed_txn=1))
    with pytest.raises(ValueError):
        YCSBWorkload([], YCSBConfig())


def test_transaction_has_requested_length_and_single_round():
    workload = make_workload(operations_per_transaction=5, rounds=1)
    spec = workload.next_transaction()
    assert spec.statement_count == 5
    assert spec.round_count == 1
    assert spec.txn_type == "ycsb"


def test_rounds_split_operations():
    workload = make_workload(operations_per_transaction=6, rounds=3)
    spec = workload.next_transaction()
    assert spec.round_count == 3


def test_centralized_transactions_touch_one_node():
    workload = make_workload(distributed_ratio=0.0)
    for _ in range(30):
        spec = workload.next_transaction()
        assert len(participants_of(workload, spec)) == 1
        assert spec.metadata["distributed"] is False


def test_distributed_transactions_touch_requested_node_count():
    workload = make_workload(distributed_ratio=1.0, nodes_per_distributed_txn=2)
    for _ in range(30):
        spec = workload.next_transaction()
        assert len(participants_of(workload, spec)) == 2
        assert spec.metadata["distributed"] is True


def test_distributed_ratio_is_roughly_respected():
    workload = make_workload(distributed_ratio=0.3)
    distributed = sum(1 for _ in range(400)
                      if workload.next_transaction().metadata["distributed"])
    assert 60 <= distributed <= 180  # ~30% of 400 with slack


def test_read_ratio_controls_operation_mix():
    workload = make_workload(read_ratio=1.0)
    spec = workload.next_transaction()
    assert all(stmt.operation.op_type is OpType.READ for stmt in spec.all_statements)
    workload = make_workload(read_ratio=0.0)
    spec = workload.next_transaction()
    assert all(stmt.operation.is_write for stmt in spec.all_statements)


def test_keys_within_transaction_are_distinct():
    workload = make_workload(skew=1.5)
    for _ in range(50):
        spec = workload.next_transaction()
        keys = [stmt.operation.key for stmt in spec.all_statements]
        assert len(keys) == len(set(keys))


def test_initial_data_is_partition_consistent():
    workload = make_workload()
    partitioner = workload.make_partitioner()
    data = workload.initial_data()
    assert set(data) == set(NODES)
    for node, tables in data.items():
        rows = tables["usertable"]
        assert len(rows) == 100  # preload cap
        assert all(partitioner.locate("usertable", key) == node for key in rows)


def test_same_seed_gives_same_transaction_stream():
    a = make_workload(seed=5)
    b = make_workload(seed=5)
    keys_a = [stmt.operation.key for stmt in a.next_transaction().all_statements]
    keys_b = [stmt.operation.key for stmt in b.next_transaction().all_statements]
    assert keys_a == keys_b


def test_high_skew_concentrates_accesses():
    hot = make_workload(skew=1.5, distributed_ratio=0.0)
    cold = make_workload(skew=0.1, distributed_ratio=0.0)

    def hot_fraction(workload):
        hits = 0
        total = 0
        for _ in range(200):
            for stmt in workload.next_transaction().all_statements:
                total += 1
                # local sequence = key // node_count
                if stmt.operation.key // len(NODES) < 10:
                    hits += 1
        return hits / total

    assert hot_fraction(hot) > hot_fraction(cold)


@given(ratio=st.floats(min_value=0.0, max_value=1.0),
       skew=st.floats(min_value=0.0, max_value=1.8),
       length=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_property_generated_specs_are_well_formed(ratio, skew, length):
    workload = YCSBWorkload(NODES, YCSBConfig(
        records_per_node=500, preload_rows_per_node=10, distributed_ratio=ratio,
        skew=skew, operations_per_transaction=length))
    spec = workload.next_transaction()
    assert spec.statement_count == length
    partitioner = workload.make_partitioner()
    for stmt in spec.all_statements:
        assert 0 <= stmt.operation.key < 500 * len(NODES)
        assert partitioner.locate("usertable", stmt.operation.key) in NODES
