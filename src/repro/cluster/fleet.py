"""Middleware fleet: client-side routing, failure detection and retry budgets.

A single :class:`~repro.middleware.middleware.MiddlewareBase` is a single
point of failure: when it crashes, every pinned terminal spins against the
corpse until the restart.  This module makes the §V recovery machinery pay
off in the deployment the paper implies but never demonstrates — K
coordinators absorbing traffic for each other:

* **Routing policies** decide which middleware a terminal submits to, per
  submission.  They are pluggable through a registry
  (:func:`register_routing_policy`), exactly like the system/workload
  registries in :mod:`repro.plugins`; ``round_robin``, ``region_affinity``
  and ``least_outstanding`` ship built in.
* **Failure detection** combines two signals on the simulation clock: clean
  refusals observed on submissions (``TransactionResult.rejected``) and a
  lightweight health-probe process that checks each middleware's crash flag
  every ``probe_interval_ms`` — the simulated analogue of an out-of-band
  health endpoint.  Middlewares move between ``up``/``suspected``/``down``
  and every transition is timestamped for the experiment summary.
* **Retry discipline** (:class:`RetryPolicy`) replaces the fixed
  ``RETRY_BACKOFF_MS``: capped exponential backoff with deterministic seeded
  jitter, a per-terminal retry *budget*, and failover re-routing — a clean
  refusal is resubmitted to a *different, healthy* middleware instead of the
  dead one.  Only clean refusals (the middleware was already crashed at
  submit time, nothing was coordinated) are failover-retried; an interrupted
  in-flight coordination also reports ``UNAVAILABLE`` but is **never**
  resubmitted, because its in-doubt branches may still be committed by the
  recovery protocol — resubmission could duplicate the work.

The fleet is strictly opt-in: single-middleware experiments never construct
one, so the fault-free golden pins stay byte-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.middleware.middleware import MiddlewareBase
from repro.sim.environment import Environment
from repro.sim.rng import SeededRNG


# ------------------------------------------------------------- retry policy
@dataclass
class RetryPolicy:
    """Backoff and failover discipline of one client terminal.

    ``backoff_ms(attempt)`` grows ``base_ms * multiplier**attempt`` capped at
    ``cap_ms``, with a deterministic seeded jitter of ``+-jitter`` (relative)
    so terminals that failed together do not retry in lockstep.  The policy
    rides inside ``ExperimentConfig`` so scenarios can sweep its fields as
    axes (e.g. ``Axis("base_ms", ..., path="retry.base_ms")``).
    """

    #: First backoff delay (matches the legacy ``RETRY_BACKOFF_MS`` default).
    base_ms: float = 50.0
    #: Upper bound of the exponential growth.
    cap_ms: float = 400.0
    #: Growth factor per consecutive failure.
    multiplier: float = 2.0
    #: Relative jitter amplitude in [0, 1); 0 disables jitter.
    jitter: float = 0.1
    #: Failover resubmissions allowed per logical transaction.
    max_failovers: int = 3
    #: Total failover retries one terminal may spend over its lifetime
    #: (the per-terminal retry budget); 0 disables failover entirely.
    budget: int = 1_000

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.cap_ms < self.base_ms:
            raise ValueError("need 0 <= base_ms <= cap_ms")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if self.max_failovers < 0 or self.budget < 0:
            raise ValueError("max_failovers and budget must be >= 0")

    def backoff_ms(self, attempt: int, rng: Optional[SeededRNG] = None) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered via ``rng``."""
        delay = min(self.base_ms * self.multiplier ** attempt, self.cap_ms)
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


# ------------------------------------------------------------- fleet config
@dataclass
class FleetConfig:
    """How a :class:`MiddlewareFleet` routes and detects failures."""

    #: Name of a registered routing policy (see :func:`routing_policy_names`).
    routing_policy: str = "round_robin"
    #: Health-probe period (simulated ms); 0 disables the probe process and
    #: leaves detection to submission outcomes alone.  Deliberately coarse:
    #: between ticks, detection rides on refused submissions (the faster
    #: channel under load), and the probe mainly notices *recovery*.
    probe_interval_ms: float = 250.0
    #: Consecutive clean refusals before a middleware is marked suspected.
    suspect_after: int = 1
    #: Consecutive clean refusals before it is marked down (the probe marks
    #: a crashed middleware down directly, without waiting for refusals).
    down_after: int = 2

    def __post_init__(self) -> None:
        if self.probe_interval_ms < 0:
            raise ValueError("probe_interval_ms must be >= 0")
        if not 1 <= self.suspect_after <= self.down_after:
            raise ValueError("need 1 <= suspect_after <= down_after")


class HealthState(enum.Enum):
    """Detector state of one middleware, as seen by the fleet."""

    UP = "up"
    SUSPECTED = "suspected"
    DOWN = "down"


# -------------------------------------------------------- routing registry
#: A routing policy picks one middleware for a terminal from the healthy
#: candidates (never empty; the fleet falls back to less-healthy tiers).
RoutingPolicy = Callable[["MiddlewareFleet", int, Sequence[MiddlewareBase]],
                         MiddlewareBase]

_ROUTING_POLICIES: Dict[str, RoutingPolicy] = {}


def register_routing_policy(name: str,
                            policy: RoutingPolicy) -> RoutingPolicy:
    """Register a routing policy (contrib plugins add theirs here)."""
    if not name:
        raise ValueError("a routing policy needs a non-empty name")
    _ROUTING_POLICIES[name] = policy
    return policy


def get_routing_policy(name: str) -> RoutingPolicy:
    """Look up a registered routing policy by name."""
    try:
        return _ROUTING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_ROUTING_POLICIES))
        raise KeyError(f"unknown routing policy {name!r}; "
                       f"registered: {known}") from None


def routing_policy_names() -> List[str]:
    """All registered routing policy names, sorted."""
    return sorted(_ROUTING_POLICIES)


def _round_robin(fleet: "MiddlewareFleet", terminal_id: int,
                 candidates: Sequence[MiddlewareBase]) -> MiddlewareBase:
    """Cycle a fleet-global cursor over the healthy middlewares."""
    choice = candidates[fleet._rr_cursor % len(candidates)]
    fleet._rr_cursor += 1
    return choice


def _region_affinity(fleet: "MiddlewareFleet", terminal_id: int,
                     candidates: Sequence[MiddlewareBase]) -> MiddlewareBase:
    """Stick to a deterministic home middleware; fail over cyclically.

    The home assignment (``terminal_id mod K`` over the topology order, which
    groups middlewares by region) keeps a terminal on one coordinator — and
    therefore one region — for its whole life unless that coordinator is
    unhealthy, in which case the nearest following candidate serves it.
    """
    home_index = terminal_id % len(fleet.middlewares)
    home = fleet.middlewares[home_index]
    if home in candidates:
        return home
    ordered = fleet.middlewares[home_index:] + fleet.middlewares[:home_index]
    for middleware in ordered:
        if middleware in candidates:
            return middleware
    return candidates[0]


def _least_outstanding(fleet: "MiddlewareFleet", terminal_id: int,
                       candidates: Sequence[MiddlewareBase]) -> MiddlewareBase:
    """Pick the candidate with the fewest in-flight submissions (index ties)."""
    return min(candidates,
               key=lambda m: (fleet.outstanding[m.name],
                              fleet._index[m.name]))


register_routing_policy("round_robin", _round_robin)
register_routing_policy("region_affinity", _region_affinity)
register_routing_policy("least_outstanding", _least_outstanding)


# ------------------------------------------------------------------- fleet
class MiddlewareFleet:
    """Client-side view of K middlewares: routing, health, attribution.

    One fleet is shared by every terminal of an experiment.  It holds no
    simulation processes besides the optional health probe, records every
    state transition with its simulated timestamp, and reduces to a plain
    picklable dict (:meth:`summary`) for ``ExperimentSummary.fleet``.
    """

    def __init__(self, env: Environment, middlewares: Sequence[MiddlewareBase],
                 config: Optional[FleetConfig] = None):
        if not middlewares:
            raise ValueError("a fleet needs at least one middleware")
        self.env = env
        self.middlewares: List[MiddlewareBase] = list(middlewares)
        self.config = config or FleetConfig()
        self._policy = get_routing_policy(self.config.routing_policy)
        self._index = {m.name: i for i, m in enumerate(self.middlewares)}
        if len(self._index) != len(self.middlewares):
            raise ValueError("middleware names must be unique within a fleet")
        self.states: Dict[str, HealthState] = {
            m.name: HealthState.UP for m in self.middlewares}
        self.outstanding: Dict[str, int] = {m.name: 0 for m in self.middlewares}
        self._refusal_streak: Dict[str, int] = {
            m.name: 0 for m in self.middlewares}
        self.counters: Dict[str, Dict[str, int]] = {
            m.name: {"submitted": 0, "committed": 0, "aborted": 0,
                     "rejected": 0, "failovers": 0}
            for m in self.middlewares}
        #: ``[at_ms, middleware, new_state]`` rows, in simulated-time order.
        self.transitions: List[List[Any]] = []
        #: One entry per down episode (see :meth:`_set_state`).
        self.down_episodes: List[Dict[str, Any]] = []
        self.failovers = 0
        self.retries = 0
        self.budget_exhausted = 0
        self._rr_cursor = 0
        if self.config.probe_interval_ms > 0:
            env.process(self._probe(), name="fleet-health-probe", daemon=True)

    # ----------------------------------------------------------------- routing
    def route(self, terminal_id: int) -> MiddlewareBase:
        """Pick the middleware a terminal should submit to right now."""
        return self._policy(self, terminal_id, self._candidates())

    def route_away_from(self, terminal_id: int,
                        avoid: MiddlewareBase) -> MiddlewareBase:
        """Failover routing: prefer any healthy middleware other than ``avoid``."""
        candidates = [m for m in self._candidates() if m is not avoid]
        if not candidates:
            return self.route(terminal_id)
        return self._policy(self, terminal_id, candidates)

    def _candidates(self) -> List[MiddlewareBase]:
        """Healthiest non-empty tier: up, else suspected, else everyone."""
        ups = [m for m in self.middlewares
               if self.states[m.name] is HealthState.UP]
        if ups:
            return ups
        suspects = [m for m in self.middlewares
                    if self.states[m.name] is HealthState.SUSPECTED]
        return suspects or list(self.middlewares)

    # ------------------------------------------------------------- accounting
    def note_submit(self, middleware: MiddlewareBase,
                    failover: bool = False) -> None:
        """Record a submission leaving for ``middleware``."""
        counters = self.counters[middleware.name]
        counters["submitted"] += 1
        if failover:
            counters["failovers"] += 1
            self.failovers += 1
        self.outstanding[middleware.name] += 1

    def note_result(self, middleware: MiddlewareBase, result: Any) -> None:
        """Record a submission outcome and feed the failure detector."""
        self.outstanding[middleware.name] -= 1
        counters = self.counters[middleware.name]
        if getattr(result, "rejected", False):
            counters["rejected"] += 1
            self._note_refusal(middleware)
            return
        if result.committed:
            counters["committed"] += 1
            self._note_divert(middleware.name)
        else:
            counters["aborted"] += 1
        # Any coordinated outcome — commit or abort — proves liveness.
        self._refusal_streak[middleware.name] = 0
        if self.states[middleware.name] is not HealthState.UP:
            self._set_state(middleware.name, HealthState.UP)

    def note_budget_exhausted(self) -> None:
        """A terminal wanted to fail over but its retry budget is spent."""
        self.budget_exhausted += 1

    # -------------------------------------------------------------- detection
    def _note_refusal(self, middleware: MiddlewareBase) -> None:
        streak = self._refusal_streak[middleware.name] + 1
        self._refusal_streak[middleware.name] = streak
        state = self.states[middleware.name]
        if streak >= self.config.down_after:
            if state is not HealthState.DOWN:
                self._set_state(middleware.name, HealthState.DOWN)
        elif streak >= self.config.suspect_after and state is HealthState.UP:
            self._set_state(middleware.name, HealthState.SUSPECTED)

    def _probe(self):
        """Daemon process: poll each middleware's health out-of-band."""
        interval = self.config.probe_interval_ms
        while True:
            yield self.env.timeout(interval)
            for middleware in self.middlewares:
                state = self.states[middleware.name]
                if middleware.crashed:
                    if state is not HealthState.DOWN:
                        self._set_state(middleware.name, HealthState.DOWN)
                elif state is not HealthState.UP:
                    self._refusal_streak[middleware.name] = 0
                    self._set_state(middleware.name, HealthState.UP)

    def _set_state(self, name: str, state: HealthState) -> None:
        self.states[name] = state
        self.transitions.append([self.env.now, name, state.value])
        if state is HealthState.DOWN:
            self.down_episodes.append({
                "middleware": name, "down_at_ms": self.env.now,
                "diverted_at_ms": None, "recovered_at_ms": None})
        elif state is HealthState.UP:
            for episode in reversed(self.down_episodes):
                if episode["middleware"] == name:
                    if episode["recovered_at_ms"] is None:
                        episode["recovered_at_ms"] = self.env.now
                    break

    def _note_divert(self, committed_on: str) -> None:
        """A commit landed on ``committed_on``: close open divert windows.

        Time-to-divert of a down episode is the gap between the middleware
        being marked down and the fleet's *next* successful commit on any
        other middleware — the client-visible outage of the failover path.
        """
        for episode in self.down_episodes:
            if (episode["diverted_at_ms"] is None
                    and episode["middleware"] != committed_on):
                episode["diverted_at_ms"] = self.env.now

    # ----------------------------------------------------------------- report
    def summary(self) -> Dict[str, Any]:
        """The picklable fleet report stored in ``ExperimentSummary.fleet``."""
        episodes = []
        for episode in self.down_episodes:
            entry = dict(episode)
            entry["time_to_divert_ms"] = (
                episode["diverted_at_ms"] - episode["down_at_ms"]
                if episode["diverted_at_ms"] is not None else None)
            episodes.append(entry)
        return {
            "policy": self.config.routing_policy,
            "middlewares": [m.name for m in self.middlewares],
            "states": {name: state.value for name, state in self.states.items()},
            "per_middleware": {name: dict(counters)
                               for name, counters in self.counters.items()},
            "failovers": self.failovers,
            "retries": self.retries,
            "budget_exhausted": self.budget_exhausted,
            "transitions": [list(row) for row in self.transitions],
            "down_episodes": episodes,
        }
