"""Figure 10 — sensitivity to the mean and standard deviation of network latency."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig10_latency_sweep


def test_fig10_latency_mean_and_std(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_latency_sweep(means_ms=(20, 80), stds_ms=(0, 40),
                                    duration_ms=BENCH_DURATION_MS,
                                    terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    mean_sweep = {mean: improvement for mean, _s, _g, improvement in result["mean_sweep"]}
    std_sweep = {std: improvement for std, _s, _g, improvement in result["std_sweep"]}
    # GeoTP improves on SSP (clearly so at the larger mean latency, where the
    # paper's improvement also peaks) and benefits from latency variance.
    assert all(improvement > 0.9 for improvement in mean_sweep.values())
    assert mean_sweep[80] > 1.0
    assert mean_sweep[80] >= mean_sweep[20] * 0.7
    assert all(improvement > 0.9 for improvement in std_sweep.values())
    assert std_sweep[max(std_sweep)] >= 1.0
