"""Strict two-phase-locking lock manager (facade).

The implementation lives in the engine kernel — :mod:`repro.sim._kernel.locks`
(pure Python, source of truth) or its mypyc-compiled twin — and is selected
once per process by :mod:`repro.sim.engine` from the ``REPRO_ENGINE``
environment variable.  The lock manager sits in the kernel because its inner
paths (grant/release/wheel-timer churn) run once per record access and are
part of the simulator's hot loop.

See the kernel module for the design notes on lock compatibility, FIFO
hand-off, wheel-timer timeouts and the wait-for-graph deadlock detector.
"""

from repro.sim.engine import locks as _impl

LockMode = _impl.LockMode
LockTimeoutError = _impl.LockTimeoutError
DeadlockError = _impl.DeadlockError
_compatible = _impl._compatible
LockRequest = _impl.LockRequest
_LockEntry = _impl._LockEntry
LockStats = _impl.LockStats
LockManager = _impl.LockManager

__all__ = [
    "DeadlockError",
    "LockManager",
    "LockMode",
    "LockRequest",
    "LockStats",
    "LockTimeoutError",
]
