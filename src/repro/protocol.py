"""Wire-protocol message types exchanged between middleware, geo-agents and data sources.

Centralising the message-type strings avoids typo bugs and documents, in one
place, the vocabulary of the simulated system.  The groups mirror the paper's
architecture (Figure 3): XA verbs spoken to data sources, geo-agent control
messages, key-value verbs used by the ScalarDB baseline, and failure-injection
controls used by the recovery tests.
"""

# --- XA protocol verbs (middleware / geo-agent -> data source) --------------
MSG_XA_START = "xa_start"
MSG_EXECUTE = "execute"
MSG_XA_END = "xa_end"
MSG_XA_PREPARE = "xa_prepare"
MSG_XA_COMMIT = "xa_commit"
MSG_XA_ROLLBACK = "xa_rollback"
MSG_COMMIT_ONE_PHASE = "commit_one_phase"
MSG_LIST_PREPARED = "list_prepared"
MSG_TXN_STATE = "txn_state"

# --- Geo-agent control (middleware -> geo-agent, geo-agent -> geo-agent) ----
MSG_AGENT_EXECUTE = "agent_execute"          # forward statements; may carry last-statement flag
MSG_AGENT_PREPARE = "agent_prepare"          # explicit prepare for participants without a last statement
MSG_AGENT_PREPARE_RESULT = "agent_prepare_result"  # async vote back to the middleware
MSG_AGENT_COMMIT = "agent_commit"
MSG_AGENT_ROLLBACK = "agent_rollback"
MSG_PEER_ROLLBACK = "peer_rollback"          # early-abort notification between geo-agents
MSG_AGENT_BEGIN = "agent_begin"

# --- Key-value verbs for the ScalarDB-style baseline -------------------------
MSG_KV_GET = "kv_get"
MSG_KV_PUT = "kv_put"
MSG_KV_PUT_IF_VERSION = "kv_put_if_version"

# --- Failure injection / recovery --------------------------------------------
MSG_CRASH = "crash"
MSG_RESTART = "restart"
MSG_PING = "ping"

# --- Participant states reported during decentralized prepare (Alg. 1) -------
STATE_IDLE = "IDLE"              # centralized transaction: no prepare needed
STATE_PREPARED = "PREPARED"
STATE_FAILURE = "FAILURE"
STATE_ROLLBACK_ONLY = "ROLLBACK_ONLY"
STATE_ROLLBACKED = "ROLLBACKED"
