"""Point-to-point network model.

The model mirrors the paper's deployment: a database middleware host and a set
of geo-distributed data source hosts connected by WAN links of very different
round-trip times, plus LAN links between a geo-agent and its co-located data
source.  Nodes are named endpoints with an inbox; the :class:`Network` routes
messages between them applying the per-link :class:`~repro.sim.latency.LatencyModel`.

Two communication styles are supported:

* one-way ``send`` — deliver a :class:`Message` to the destination inbox after
  the one-way link delay (used for asynchronous notifications such as the
  decentralized prepare votes and early-abort messages);
* ``request`` — RPC-style: the caller gets an event that fires with the reply
  value after the full round trip plus the receiver's processing time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.environment import Environment
from repro.sim.events import PENDING, Event
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.resources import Store

_message_ids = count(1)


@dataclass(slots=True)
class Message:
    """A network message between two named nodes."""

    sender: str
    recipient: str
    msg_type: str
    payload: Any = None
    message_id: int = field(default_factory=_message_ids.__next__)
    sent_at: float = 0.0
    delivered_at: float = 0.0
    #: Event to trigger on the sender's side when the recipient replies.
    reply_event: Optional[Event] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.message_id} {self.msg_type} "
                f"{self.sender}->{self.recipient}>")


class NetworkStats:
    """Aggregate counters of network activity (messages and bytes proxied)."""

    __slots__ = ("messages_sent", "messages_by_type", "total_delay_ms")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_by_type: Dict[str, int] = {}
        self.total_delay_ms = 0.0

    def record(self, message: Message, delay_ms: float) -> None:
        self.messages_sent += 1
        self.messages_by_type[message.msg_type] = (
            self.messages_by_type.get(message.msg_type, 0) + 1)
        self.total_delay_ms += delay_ms


class Network:
    """Routes messages between registered nodes with per-link latencies."""

    def __init__(self, env: Environment, default_rtt_ms: float = 0.0):
        self.env = env
        self.default_model: LatencyModel = ConstantLatency(default_rtt_ms)
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._inboxes: Dict[str, Store] = {}
        self.stats = NetworkStats()

    # ---------------------------------------------------------------- wiring
    def register_node(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.env)
        return self._inboxes[name]

    def has_node(self, name: str) -> bool:
        """True if ``name`` has been registered."""
        return name in self._inboxes

    def set_link(self, src: str, dst: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        """Set the latency model for the ``src -> dst`` link."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def link_model(self, src: str, dst: str) -> LatencyModel:
        """The latency model in effect for ``src -> dst``."""
        return self._links.get((src, dst), self.default_model)

    def rtt(self, src: str, dst: str) -> float:
        """Nominal RTT in ms between two nodes at the current time."""
        if src == dst:
            return 0.0
        return self.link_model(src, dst).rtt_at(self.env.now)

    def interface(self, name: str) -> "NetworkInterface":
        """Return a bound interface for node ``name`` (registering it)."""
        self.register_node(name)
        return NetworkInterface(self, name)

    # ------------------------------------------------------------- messaging
    def send(self, message: Message) -> float:
        """Deliver ``message`` after the one-way link delay; return the delay."""
        if message.recipient not in self._inboxes:
            raise KeyError(f"unknown network node {message.recipient!r}")
        env = self.env
        message.sent_at = now = env.now
        if message.sender == message.recipient:
            delay = 0.0
        else:
            model = self._links.get((message.sender, message.recipient),
                                    self.default_model)
            delay = model.sample_one_way(now)
        # NetworkStats.record, inlined: one call per simulated message adds up.
        stats = self.stats
        stats.messages_sent += 1
        by_type = stats.messages_by_type
        by_type[message.msg_type] = by_type.get(message.msg_type, 0) + 1
        stats.total_delay_ms += delay

        inbox = self._inboxes[message.recipient]
        # Allocation-free delivery: a bound method plus args instead of a
        # per-message closure.  Zero-delay links (self-sends and colocated
        # nodes) skip the heap entirely via the same-time microqueue.
        if delay == 0.0:
            env._soon.append((self._deliver, (message, inbox)))
        else:
            env.call_at(delay, self._deliver, message, inbox)
        return delay

    def _deliver(self, message: Message, inbox: Store) -> None:
        message.delivered_at = self.env.now
        inbox.put(message)

    def deliver_reply(self, original: Message, value: Any) -> None:
        """Send the reply for an RPC ``original`` back to its sender."""
        if original.reply_event is None:
            raise ValueError("message was not sent as a request; it has no reply event")
        if original.sender == original.recipient:
            delay = 0.0
        else:
            model = self.link_model(original.recipient, original.sender)
            delay = model.sample_one_way(self.env.now)

        if delay == 0.0:
            self.env._soon.append((self._fire_reply, (original.reply_event, value)))
        else:
            self.env.call_at(delay, self._fire_reply, original.reply_event, value)

    def _fire_reply(self, reply_event: Event, value: Any) -> None:
        # Trigger *and* dispatch in one step: this callback already runs at
        # the reply's delivery time, so parking the event on the microqueue
        # for a second dispatch would only delay it within the same
        # timestamp.  (Same-timestamp reordering; equivalence-harness
        # territory.)
        if reply_event._value is not PENDING:
            return
        reply_event._ok = True
        reply_event._value = value
        callbacks = reply_event.callbacks
        if callbacks is not None:
            # Count the merged event dispatch so events_processed keeps
            # meaning "entries dispatched", replies included.
            self.env.events_processed += 1
            reply_event.callbacks = None
            for callback in callbacks:
                callback(reply_event)


class NetworkInterface:
    """A node's handle on the network: typed helpers bound to its name."""

    def __init__(self, network: Network, name: str):
        self.network = network
        self.name = name
        self.inbox: Store = network.register_node(name)

    @property
    def env(self) -> Environment:
        return self.network.env

    def send(self, recipient: str, msg_type: str, payload: Any = None) -> Message:
        """Fire-and-forget message to ``recipient``."""
        message = Message(sender=self.name, recipient=recipient,
                          msg_type=msg_type, payload=payload)
        self.network.send(message)
        return message

    def request(self, recipient: str, msg_type: str, payload: Any = None) -> Event:
        """RPC to ``recipient``; the returned event fires with the reply value."""
        reply_event = Event(self.env)
        message = Message(sender=self.name, recipient=recipient,
                          msg_type=msg_type, payload=payload,
                          reply_event=reply_event)
        self.network.send(message)
        return reply_event

    def reply(self, message: Message, value: Any) -> None:
        """Answer an RPC message previously received in our inbox."""
        self.network.deliver_reply(message, value)

    def receive(self) -> Event:
        """Event firing with the next message in our inbox."""
        return self.inbox.get()

    def rtt_to(self, other: str) -> float:
        """Nominal RTT to another node at the current simulated time."""
        return self.network.rtt(self.name, other)
