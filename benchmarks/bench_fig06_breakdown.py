"""Figure 6 — resource proxies and per-phase latency breakdown."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig6_resources_breakdown


def test_fig6_resources_and_breakdown(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_resources_breakdown(duration_ms=BENCH_DURATION_MS,
                                         terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    ssp = result["ssp"]
    geotp = result["geotp"]
    # GeoTP does less WAN coordination per committed transaction (the paper's
    # "higher CPU efficiency") but keeps extra metadata (hotspot footprint).
    assert geotp["wan_messages_per_commit"] < ssp["wan_messages_per_commit"]
    assert geotp["metadata_bytes"] > ssp["metadata_bytes"]
    # GeoTP's average latency is well below SSP's (the paper reports -66.6%).
    assert geotp["avg_latency_ms"] < ssp["avg_latency_ms"]
    # The decentralized prepare keeps the prepare wait tiny compared to the
    # commit round trip (Figure 6c: 3.5 ms wait vs ~75 ms network phases).
    assert geotp["breakdown"]["prepare"] < geotp["breakdown"]["commit"]
