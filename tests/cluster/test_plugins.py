"""Unit tests for the system/workload plugin registries and canonicalization."""

import pytest

from repro.cluster import TopologyConfig, build_cluster
from repro.middleware import ModuloPartitioner
from repro.plugins import (
    PluginRegistry,
    SystemPlugin,
    WorkloadPlugin,
    canonical_key,
    get_system_plugin,
    get_workload_plugin,
    normalize_system,
    normalize_workload,
    system_names,
    system_plugins,
    workload_names,
)


def test_canonical_key_folds_case_hyphens_and_spaces():
    assert canonical_key(" ScalarDB-Plus ") == "scalardb_plus"
    assert canonical_key("TPC-C") == "tpc_c"
    assert canonical_key("ssp") == "ssp"


@pytest.mark.parametrize("spelling, expected", [
    ("geotp", "geotp"),
    ("GeoTP", "geotp"),
    ("ScalarDB+", "scalardb_plus"),
    ("ScalarDB-Plus", "scalardb_plus"),
    ("scalardbplus", "scalardb_plus"),
    ("YugabyteDB", "yugabyte"),
    ("ShardingSphere", "ssp"),
    ("SSP (local)", "ssp_local"),
    ("ssplocal", "ssp_local"),
    ("GeoTP(static)", "geotp_static"),
])
def test_normalize_system_resolves_every_alias(spelling, expected):
    assert normalize_system(spelling) == expected


def test_normalize_system_is_identical_at_every_entry_point():
    """The same canonicalizer runs in build_cluster and in scenario sweeps."""
    from repro.bench.scenarios import Axis

    topology = TopologyConfig.from_rtts([5])
    partitioner = ModuloPartitioner(topology.node_names())
    for spelling in ("ScalarDB+", "YugabyteDB", "GeoTP"):
        canonical = normalize_system(spelling)
        assert build_cluster(spelling, topology, partitioner).system == canonical
        assert Axis("system", (spelling,)).values == (canonical,)


def test_normalize_unknown_names_raise_with_known_list():
    with pytest.raises(ValueError, match="geotp"):
        normalize_system("oracle-rac")
    with pytest.raises(ValueError, match="ycsb"):
        normalize_workload("tpc-e")


def test_workload_aliases_resolve():
    assert normalize_workload("TPC-C") == "tpcc"
    assert normalize_workload("YCSB") == "ycsb"
    assert normalize_workload("small-bank") == "smallbank"
    assert get_workload_plugin("TPC-C").name == "tpcc"


def test_supported_systems_is_derived_from_the_registry():
    from repro.cluster.deployment import SUPPORTED_SYSTEMS

    assert SUPPORTED_SYSTEMS == tuple(system_names())
    assert {"ssp", "geotp", "yugabyte", "geotp_static"} <= set(SUPPORTED_SYSTEMS)
    assert {"ycsb", "tpcc", "smallbank"} <= set(workload_names())


def test_supported_systems_spellings_agree_and_stay_live():
    """All three public spellings are views of the same live registry."""
    import repro
    import repro.cluster
    from repro.cluster import deployment

    assert (repro.SUPPORTED_SYSTEMS == repro.cluster.SUPPORTED_SYSTEMS
            == deployment.SUPPORTED_SYSTEMS == tuple(system_names()))


def test_capability_flags_describe_the_builtin_systems():
    assert get_system_plugin("geotp").needs_agents
    assert get_system_plugin("geotp").supports_active_probing
    assert get_system_plugin("yugabyte").colocated_with_ds0
    assert not get_system_plugin("ssp").needs_agents
    ssp = get_system_plugin("ssp")
    assert ssp.ablation_reference and not ssp.ablations
    assert set(get_system_plugin("geotp").ablations) == {"o1", "o1_o2", "o1_o3"}


def test_plugins_round_trip_through_lookups():
    """Every registered plugin resolves to itself via name and every alias."""
    for plugin in system_plugins():
        assert get_system_plugin(plugin.name) is plugin
        for alias in plugin.aliases:
            assert normalize_system(alias) == plugin.name


def test_registry_rejects_non_canonical_names_and_alias_collisions():
    registry = PluginRegistry("demo")
    with pytest.raises(ValueError, match="not canonical"):
        registry.register(SystemPlugin(name="Bad-Name", builder=lambda ctx: None))
    registry.register(SystemPlugin(name="one", builder=lambda ctx: None,
                                   aliases=("uno",)))
    with pytest.raises(ValueError, match="collides"):
        registry.register(SystemPlugin(name="two", builder=lambda ctx: None,
                                       aliases=("uno",)))
    with pytest.raises(ValueError, match="collides"):
        registry.register(SystemPlugin(name="three", builder=lambda ctx: None,
                                       aliases=("one",)))
    # A name equal to an existing alias would register unreachably (normalize
    # consults aliases first), so it is rejected too.
    with pytest.raises(ValueError, match="alias of 'one'"):
        registry.register(SystemPlugin(name="uno", builder=lambda ctx: None))
    # The colliding plugins were rejected atomically; re-registering the same
    # name replaces the plugin (last wins).
    assert registry.names() == ["one"]
    replacement = SystemPlugin(name="one", builder=lambda ctx: None)
    registry.register(replacement)
    assert registry.get("one") is replacement


def test_workload_plugin_carries_config_construction():
    ycsb = get_workload_plugin("ycsb")
    assert ycsb.config_field == "ycsb"
    config = ycsb.config_factory()
    workload = ycsb.create(["ds0", "ds1"], config)
    assert workload.name == "ycsb"
    smallbank = get_workload_plugin("smallbank")
    assert smallbank.config_field is None  # rides ExperimentConfig.workload_config
