"""Baseline systems the paper compares GeoTP against.

Every baseline runs on the same simulated substrate (network, data sources,
workloads) so differences in the results come only from the coordination
protocol, mirroring how the paper re-implemented QURO and Chiller on its own
platform "for a fair comparison".
"""

from repro.baselines.ssp import SSPCoordinator
from repro.baselines.ssp_local import SSPLocalCoordinator
from repro.baselines.quro import QUROCoordinator
from repro.baselines.chiller import ChillerCoordinator
from repro.baselines.scalardb import ScalarDBCoordinator, ScalarDBConfig
from repro.baselines.scalardb_plus import ScalarDBPlusCoordinator
from repro.baselines.yugabyte import YugabyteCoordinator

__all__ = [
    "ChillerCoordinator",
    "QUROCoordinator",
    "SSPCoordinator",
    "SSPLocalCoordinator",
    "ScalarDBConfig",
    "ScalarDBCoordinator",
    "ScalarDBPlusCoordinator",
    "YugabyteCoordinator",
]
