"""Chiller: contention-centric execution ordering (Zamanian et al., SIGMOD 2020).

Chiller attacks lock contention in geo-distributed transactions with two ideas
the paper re-implements on its middleware platform for comparison:

* the prepare phase is merged into the execution phase (each participant
  prepares its branch as soon as it finishes executing, so commit needs only
  one further round trip);
* subtransactions on the *outer* regions (remote, high-latency) are executed
  first and the *inner* region (local, low-latency — where the hot records
  usually live) is executed last, so locks on hot records are held only
  briefly.

Unlike GeoTP this serialises the outer and inner parts (increasing transaction
latency) and uses a fixed region split rather than per-link latency
measurements, which is why GeoTP overtakes it under high contention.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common import AbortReason, SubtxnResult, TxnOutcome
from repro import protocol
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.middleware.rewriter import SubtransactionPlan
from repro.middleware.statements import Statement
from repro.plugins import BuildContext, SystemPlugin, register_system


class ChillerCoordinator(TwoPhaseCommitCoordinator):
    """Execute outer regions first, inner region last, with merged prepare."""

    system_name = "Chiller"

    def execute_payload(self, ctx: TransactionContext, plan: SubtransactionPlan,
                        is_final_round: bool) -> Dict:
        payload = super().execute_payload(ctx, plan, is_final_round)
        # Merge the prepare phase into execution for distributed transactions.
        payload["prepare_after"] = is_final_round and len(ctx.participants) > 1
        return payload

    def _split_inner_outer(self, plans: Dict[str, SubtransactionPlan]) -> Tuple[List[str], List[str]]:
        """The lowest-latency participant is the inner region; the rest are outer."""
        by_latency = sorted(plans, key=self.participant_rtt)
        inner = [by_latency[0]]
        outer = by_latency[1:]
        return inner, outer

    def _execute_round(self, ctx: TransactionContext, statements: List[Statement],
                       is_final_round: bool):
        plans = self.rewriter.plan_round(statements)
        for name in plans:
            ctx.branch_xid(name)
        if len(plans) < 2:
            return (yield from super()._execute_round(ctx, statements, is_final_round))

        inner, outer = self._split_inner_outer(plans)
        results: List[SubtxnResult] = []

        for group in (outer, inner):
            if not group:
                continue
            processes = [self.env.process(
                self._execute_subtransaction(ctx, plans[name], 0.0, is_final_round),
                name=f"{ctx.txn_id}:chiller:{name}") for name in group]
            condition = yield self.env.all_of(processes)
            group_results = [condition[p] for p in processes]
            results.extend(group_results)
            failures = [r for r in group_results if not r.success]
            for result in group_results:
                ctx.results[result.datasource] = result
                ctx.merge_record_latencies(result)
            if failures:
                return False, failures[0].abort_reason or AbortReason.FAILURE

        self.on_round_complete(ctx, results)
        return True, None

    def _commit_distributed(self, ctx: TransactionContext):
        """Participants prepared during execution: only the commit round trip remains."""
        all_prepared = all(
            result.prepared for result in ctx.results.values()) and ctx.results
        if not all_prepared:
            # Fall back to classic 2PC if any participant did not merge-prepare
            # (e.g. it only appeared in a non-final round).
            missing = [name for name in ctx.participants
                       if not ctx.results.get(name) or not ctx.results[name].prepared]
            votes = []
            for name in missing:
                handle = self.participants[name]
                votes.append(self.timed_request_participant(
                    handle, protocol.MSG_XA_PREPARE, {"xid": ctx.branch_xid(name)}))
            if votes:
                yield self.env.all_of(votes)
        yield from self._flush_decision_log(ctx, commit=True)
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        yield from self._dispatch_decision(ctx, protocol.MSG_XA_COMMIT)
        return TxnOutcome.COMMITTED, None


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> ChillerCoordinator:
    return ChillerCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                              ctx.participants, ctx.partitioner)


register_system(SystemPlugin(
    name="chiller",
    description="Chiller contention-centric outer/inner execution ordering",
    builder=_build,
))
