"""Fault injection: primitive crash/restart helpers and scheduled fault plans.

Two layers live here:

* :class:`FailureInjector` — the low-level primitives the recovery tests use
  directly: crash/restart one middleware or data source.
* The **scheduled fault subsystem** — a declarative :class:`FaultPlan` (timed
  :class:`FaultEvent`\\ s: middleware/data-source crash-and-restart, region
  outage, network partition, transient latency degradation) executed by a
  :class:`FaultInjector` against a live
  :class:`~repro.cluster.deployment.Cluster`.  The experiment runner wires one
  up whenever ``ExperimentConfig.fault_plan`` is set, so every registered
  scenario, the sweep runner and the CLI can run fault experiments unchanged.

The injector owns the full fault lifecycle: it schedules each event on the
simulation clock, performs the disruption (interrupting in-flight coordinator
work and rolling back the orphaned database sessions a real crash would kill),
schedules the heal/restart, runs the §V-A recovery protocol
(:class:`~repro.recovery.recovery_manager.RecoveryManager`) after every
restart, and keeps a timeline of everything it did for the experiment summary
(see :func:`FaultInjector.summarize` and
:mod:`repro.metrics.availability`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro import protocol
from repro.middleware.middleware import MiddlewareBase
from repro.recovery.recovery_manager import RecoveryManager
from repro.sim.environment import Environment
from repro.sim.network import DROP, Network, NetworkInterface, PARK
from repro.storage.datasource import DataSource
from repro.storage.transaction import TxnState

if TYPE_CHECKING:  # pragma: no cover - cluster imports recovery consumers
    from repro.cluster.deployment import Cluster
    from repro.metrics.collector import MetricsCollector


class FailureInjector:
    """Crashes and restarts simulated nodes (the low-level primitives)."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self.net: NetworkInterface = network.interface("failure-injector")
        self.injected: Dict[str, int] = {}

    def crash_middleware(self, middleware: MiddlewareBase) -> None:
        """Crash a middleware: it stops reacting to replies and async messages.

        The middleware is stateless (its in-flight coordinator processes are
        abandoned); only the flushed decision log survives, exactly as §V-A
        assumes.
        """
        middleware.crashed = True
        middleware.active_contexts.clear()
        self.injected["middleware"] = self.injected.get("middleware", 0) + 1

    def restart_middleware(self, middleware: MiddlewareBase) -> None:
        """Bring a crashed middleware back (with an empty in-memory state)."""
        middleware.crashed = False

    def crash_datasource(self, datasource: DataSource):
        """Generator: crash a data source node (yields until acknowledged)."""
        self.injected["datasource"] = self.injected.get("datasource", 0) + 1
        reply = yield self.net.request(datasource.name, protocol.MSG_CRASH, {})
        return reply

    def restart_datasource(self, datasource: DataSource):
        """Generator: restart a crashed data source."""
        reply = yield self.net.request(datasource.name, protocol.MSG_RESTART, {})
        return reply


# ---------------------------------------------------------------- fault plans
class FaultKind(enum.Enum):
    """The kinds of scheduled fault a :class:`FaultPlan` can contain."""

    #: Crash the middleware; restart (plus §V-A recovery) after ``duration_ms``.
    MIDDLEWARE_CRASH = "middleware_crash"
    #: Crash a data source; restart plus in-doubt resolution after ``duration_ms``.
    DATASOURCE_CRASH = "datasource_crash"
    #: Cut every network link touching a data node (and its geo-agent) for
    #: ``duration_ms``; in-flight messages are parked/dropped per ``mode``.
    REGION_OUTAGE = "region_outage"
    #: Cut the links between two regions (``target`` and ``peer``) only.
    PARTITION = "partition"
    #: Multiply the delay of every link touching the target region by
    #: ``factor`` for ``duration_ms`` (a transient latency degradation).
    LATENCY_SPIKE = "latency_spike"


#: Kinds whose ``target`` names a data node.
_DATA_NODE_KINDS = (FaultKind.DATASOURCE_CRASH, FaultKind.REGION_OUTAGE,
                    FaultKind.PARTITION)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: what breaks, when, for how long, and how."""

    kind: FaultKind
    #: Simulated time (ms) at which the fault strikes.
    at_ms: float
    #: How long the fault lasts; the matching restart/heal fires at
    #: ``at_ms + duration_ms``.  ``0`` means the fault is never repaired.
    duration_ms: float = 0.0
    #: The afflicted node: a data-node name for data-source/region/partition
    #: faults, a middleware name (default: the first middleware) for
    #: middleware crashes, and optionally ``None`` for a latency spike that
    #: degrades every data node.
    target: Optional[str] = None
    #: The second region of a :attr:`FaultKind.PARTITION`.
    peer: Optional[str] = None
    #: Delay multiplier of a :attr:`FaultKind.LATENCY_SPIKE` (>= 1).
    factor: float = 1.0
    #: Disruption mode of outages/partitions: ``"park"`` holds messages back
    #: until the heal, ``"drop"`` discards them (see :mod:`repro.sim.network`).
    mode: str = PARK

    def __post_init__(self) -> None:
        if self.at_ms < 0 or self.duration_ms < 0:
            raise ValueError("fault times must be non-negative")
        if self.kind in _DATA_NODE_KINDS and self.target is None:
            raise ValueError(f"{self.kind.value} needs an explicit target node")
        if self.kind is FaultKind.PARTITION and self.peer is None:
            raise ValueError("a partition needs a peer region")
        if self.kind is FaultKind.LATENCY_SPIKE and self.factor < 1.0:
            raise ValueError("latency-spike factor must be >= 1")
        if self.mode not in (PARK, DROP):
            raise ValueError(f"unknown disruption mode {self.mode!r}")

    def describe(self) -> str:
        """Compact human-readable form used in logs and summaries."""
        where = self.target or "*"
        if self.peer:
            where = f"{where}<->{self.peer}"
        return (f"{self.kind.value}({where}) @{self.at_ms:.0f}ms "
                f"for {self.duration_ms:.0f}ms")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form for experiment summaries."""
        out: Dict[str, Any] = {"kind": self.kind.value, "at_ms": self.at_ms,
                               "duration_ms": self.duration_ms}
        if self.target is not None:
            out["target"] = self.target
        if self.peer is not None:
            out["peer"] = self.peer
        if self.kind is FaultKind.LATENCY_SPIKE:
            out["factor"] = self.factor
        if self.kind in (FaultKind.REGION_OUTAGE, FaultKind.PARTITION):
            out["mode"] = self.mode
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of :class:`FaultEvent`\\ s for one experiment.

    Plans are plain data: deep-copyable and picklable, so they ride inside
    ``ExperimentConfig`` through the scenario registry and across sweep-worker
    process boundaries like any other config knob.
    """

    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        events = tuple(self.events)
        if not events:
            raise ValueError("a fault plan needs at least one event")
        self._reject_overlaps(events)
        object.__setattr__(self, "events", events)

    @staticmethod
    def _reject_overlaps(events: Tuple[FaultEvent, ...]) -> None:
        """Refuse plans whose same-kind, same-target windows overlap.

        The network fault state is single-slot per node/link: a second
        overlapping disruption of the same thing would be clobbered by the
        first one's heal (releasing parked traffic mid-outage).  A
        ``target=None`` latency spike degrades every node, so it conflicts
        with every other spike, and a partition disrupts both directions of
        the link, so ``A<->B`` conflicts with ``B<->A``.

        Cross-target concurrency is deliberately *allowed*: composed chaos
        plans overlap faults on different nodes/links (e.g. a region outage
        inside a longer partition window).  That is safe because the network
        re-intercepts parked deliveries on release — a message freed by one
        heal is re-checked against every still-active disruption and parked
        (or dropped) again if another fault covers it; see
        ``Network._release_parked`` and the chaos-plan re-interception test.
        """
        def key(event: FaultEvent):
            if event.kind is FaultKind.PARTITION:
                # Both directions of the link are disrupted and restored
                # together, so the pair is unordered for conflict purposes.
                return (event.kind,) + tuple(sorted(
                    name for name in (event.target, event.peer)
                    if name is not None))
            return (event.kind, event.target, event.peer)

        def window(event: FaultEvent):
            end = (event.at_ms + event.duration_ms if event.duration_ms > 0
                   else float("inf"))
            return event.at_ms, end

        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if key(a) != key(b) and not (
                        a.kind is FaultKind.LATENCY_SPIKE
                        and b.kind is FaultKind.LATENCY_SPIKE
                        and (a.target is None or b.target is None)):
                    continue
                a_start, a_end = window(a)
                b_start, b_end = window(b)
                if a_start < b_end and b_start < a_end:
                    raise ValueError(
                        f"overlapping fault windows for {a.describe()} and "
                        f"{b.describe()}; sequential windows only")

    def first_at_ms(self) -> float:
        """Injection time of the earliest event."""
        return min(event.at_ms for event in self.events)

    def outage_windows(self) -> List[Tuple[float, float]]:
        """``(start_ms, end_ms)`` of every repaired fault, in schedule order."""
        return [(event.at_ms, event.at_ms + event.duration_ms)
                for event in self.events if event.duration_ms > 0]


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live cluster.

    Created (and :meth:`install`\\ ed) by the experiment runner when
    ``ExperimentConfig.fault_plan`` is set.  Every action is logged with its
    simulated timestamp; :meth:`summarize` folds the log, the recovery
    reports and the availability timeline into the picklable dict that lands
    in ``ExperimentSummary.faults``.
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.env = cluster.env
        self.network = cluster.network
        self.failures = FailureInjector(self.env, self.network)
        #: Timeline of executed actions: ``{"at_ms", "action", "event"}``.
        self.log: List[Dict[str, Any]] = []
        #: One entry per completed recovery pass (see ``_recover``).
        self.recovery_reports: List[Dict[str, Any]] = []

    # --------------------------------------------------------------- lifecycle
    def install(self) -> None:
        """Schedule every event of the plan on the simulation clock.

        Targets are resolved against the live cluster first, so a typo'd
        node name fails here — before the run starts — instead of raising
        from a timer callback four simulated seconds in (or, worse, silently
        disrupting nothing and reporting fault-free data as fault results).
        """
        now = self.env.now
        for event in self.plan.events:
            self._resolve_targets(event)
            self.env.call_at(max(event.at_ms - now, 0.0), self._fire, event)

    def _resolve_targets(self, event: FaultEvent) -> None:
        datasources = self.cluster.datasources
        if event.kind is FaultKind.MIDDLEWARE_CRASH:
            self._middleware(event.target)  # raises KeyError on a bad name
            return
        for name in filter(None, (event.target, event.peer)):
            if name not in datasources:
                raise KeyError(
                    f"fault target {name!r} is not a data node of this "
                    f"cluster (known: {', '.join(datasources)})")

    def _fire(self, event: FaultEvent) -> None:
        self._log("inject", event)
        if event.kind is FaultKind.MIDDLEWARE_CRASH:
            self._crash_middleware(event)
        elif event.kind is FaultKind.DATASOURCE_CRASH:
            self.env.process(self._crash_datasource_proc(event), daemon=True)
        elif event.kind is FaultKind.REGION_OUTAGE:
            self._start_outage(event)
        elif event.kind is FaultKind.PARTITION:
            self._start_partition(event)
        elif event.kind is FaultKind.LATENCY_SPIKE:
            self._start_latency_spike(event)

    def _log(self, action: str, event: FaultEvent, **details: Any) -> None:
        entry = {"at_ms": self.env.now, "action": action,
                 "event": event.describe()}
        entry.update(details)
        self.log.append(entry)

    # ------------------------------------------------------- region membership
    def _middleware(self, name: Optional[str]) -> MiddlewareBase:
        if name is None:
            return self.cluster.middlewares[0]
        return self.cluster.middleware_named(name)

    def _region_members(self, node_name: str) -> List[str]:
        """The network endpoints living in a data node's region."""
        members = [node_name]
        agent = self.cluster.agents.get(node_name)
        if agent is not None:
            members.append(agent.name)
        return members

    # -------------------------------------------------------- middleware crash
    def _crash_middleware(self, event: FaultEvent) -> None:
        middleware = self._middleware(event.target)
        # Abandon the in-flight coordinators first (their clients observe the
        # connection drop), then flip the crash flag and roll back the
        # orphaned database sessions, exactly as the servers would when the
        # coordinator's connections reset.
        for process in list(middleware.active_processes.values()):
            if process.is_alive:
                process.interrupt("middleware crash")
        self.failures.crash_middleware(middleware)
        middleware.active_processes.clear()
        self._kill_orphaned_sessions(middleware)
        if event.duration_ms > 0:
            self.env.call_at(event.duration_ms, self._restart_middleware,
                             middleware, event)

    def _kill_orphaned_sessions(self, middleware: MiddlewareBase) -> None:
        prefix = middleware.name + "-"
        for datasource in self.cluster.datasources.values():
            datasource.kill_sessions(prefix)

    def _restart_middleware(self, middleware: MiddlewareBase,
                            event: FaultEvent) -> None:
        self._log("restart", event)
        # Stragglers: a subtransaction already past the crash-time sweep may
        # have opened a branch since; roll those sessions back before the
        # recovery pass decides the genuinely in-doubt (prepared) branches.
        self._kill_orphaned_sessions(middleware)
        self.env.process(self._recover(middleware, event,
                                       participant_names=None), daemon=True)

    # ------------------------------------------------------- data source crash
    def _crash_datasource_proc(self, event: FaultEvent):
        datasource = self.cluster.datasources[event.target]
        yield from self.failures.crash_datasource(datasource)
        if event.duration_ms > 0:
            remaining = event.at_ms + event.duration_ms - self.env.now
            self.env.call_at(max(remaining, 0.0), self._restart_datasource,
                             datasource, event)

    def _restart_datasource(self, datasource: DataSource,
                            event: FaultEvent) -> None:
        self.env.process(self._restart_datasource_proc(datasource, event),
                         daemon=True)

    def _restart_datasource_proc(self, datasource: DataSource,
                                 event: FaultEvent):
        yield from self.failures.restart_datasource(datasource)
        self._log("restart", event)
        for middleware in self.cluster.middlewares:
            if not middleware.crashed:
                yield from self._recover(middleware, event,
                                         participant_names=[datasource.name])

    # ----------------------------------------------------------- §V-A recovery
    def _recover(self, middleware: MiddlewareBase, event: FaultEvent,
                 participant_names: Optional[List[str]]):
        """Generator: run the recovery protocol and record what it did.

        Transactions that still have a live coordinator are skipped — only
        their own coordinator may decide them (relevant after a data-source
        restart, where other participants hold legitimately mid-prepare
        branches).  After a middleware crash there are none: the crash
        abandoned them all.
        """
        manager = RecoveryManager(middleware)
        restarted_at = self.env.now
        report = yield from manager.resolve_in_doubt(
            participant_names=participant_names,
            skip_global_ids=list(middleware.active_contexts),
            owned_prefix=middleware.name + "-")
        if middleware.crashed:
            # The restart completes only once recovery has resolved every
            # in-doubt branch; submissions are refused until then.
            self.failures.restart_middleware(middleware)
        self.recovery_reports.append({
            "kind": event.kind.value,
            "target": event.target or middleware.name,
            "restarted_at_ms": restarted_at,
            "completed_at_ms": self.env.now,
            "recovery_ms": self.env.now - restarted_at,
            "committed": len(report.committed),
            "rolled_back": len(report.rolled_back),
        })

    # ------------------------------------------------------- network disruption
    def _start_outage(self, event: FaultEvent) -> None:
        members = self._region_members(event.target)
        for member in members:
            self.network.disrupt_node(member, mode=event.mode)
        if event.duration_ms > 0:
            self.env.call_at(event.duration_ms, self._heal_outage,
                             members, event)

    def _heal_outage(self, members: List[str], event: FaultEvent) -> None:
        for member in members:
            self.network.restore_node(member)
        self._log("heal", event)

    def _start_partition(self, event: FaultEvent) -> None:
        pairs = [(a, b) for a in self._region_members(event.target)
                 for b in self._region_members(event.peer)]
        for a, b in pairs:
            self.network.disrupt_link(a, b, mode=event.mode)
        if event.duration_ms > 0:
            self.env.call_at(event.duration_ms, self._heal_partition,
                             pairs, event)

    def _heal_partition(self, pairs: List[Tuple[str, str]],
                        event: FaultEvent) -> None:
        for a, b in pairs:
            self.network.restore_link(a, b)
        self._log("heal", event)

    def _start_latency_spike(self, event: FaultEvent) -> None:
        targets = ([event.target] if event.target is not None
                   else list(self.cluster.datasources))
        members = [member for target in targets
                   for member in self._region_members(target)]
        for member in members:
            self.network.degrade_node(member, event.factor)
        if event.duration_ms > 0:
            self.env.call_at(event.duration_ms, self._heal_latency_spike,
                             members, event)

    def _heal_latency_spike(self, members: List[str],
                            event: FaultEvent) -> None:
        for member in members:
            self.network.degrade_node(member, 1.0)
        self._log("heal", event)

    # ------------------------------------------------------------------ report
    def summarize(self, collector: "MetricsCollector", duration_ms: float,
                  bucket_ms: float = 1000.0) -> Dict[str, Any]:
        """The picklable fault report stored in ``ExperimentSummary.faults``."""
        # The accessor dispatches to retained samples or the streaming
        # accumulator, so fault runs work under either metrics mode.
        availability = collector.availability_report(duration_ms,
                                                     bucket_ms=bucket_ms)
        time_to_recover: Dict[str, Any] = {}
        baselines: Dict[str, float] = {}
        for event in self.plan.events:
            if event.duration_ms <= 0:
                continue
            heal_at = event.at_ms + event.duration_ms
            # Baseline from the window before the fault *struck*: averaging
            # up to the heal would dilute it with the outage's near-zero
            # buckets and under-report the recovery time.
            baseline = availability.throughput_before(event.at_ms)
            baselines[event.describe()] = baseline
            time_to_recover[event.describe()] = availability.time_to_recover_ms(
                heal_at, baseline_tps=baseline)
        return {
            "plan": [event.to_dict() for event in self.plan.events],
            "log": list(self.log),
            "recoveries": list(self.recovery_reports),
            "injected": dict(self.failures.injected),
            "availability": availability.to_dict(),
            "time_to_recover_ms": time_to_recover,
            # Per-event pre-fault baseline (tps).  0.0 means the fault struck
            # before a full bucket existed — recovery is then unobservable,
            # which the availability invariant must treat as a skip, not a
            # violation (time_to_recover_ms is None in both cases).
            "recovery_baseline_tps": baselines,
            "wal_in_doubt": self._wal_in_doubt(),
        }

    def _wal_in_doubt(self) -> Dict[str, Any]:
        """End-of-run census of prepared branches nobody will ever resolve.

        A branch still ``PREPARED`` when the run stops is fine while its
        global transaction is live on some coordinator (decision pending) or
        its owner has logged a decision (the commit/rollback delivery is in
        flight).  A prepared branch with *neither* is an orphan: §V-A
        recovery should have resolved it, and the ``wal_in_doubt_empty``
        invariant fails the run if any survive.
        """
        live_gids = set()
        for middleware in self.cluster.middlewares:
            live_gids.update(middleware.active_contexts)
        orphans: List[Dict[str, Any]] = []
        prepared_at_end = 0
        for ds_name, datasource in self.cluster.datasources.items():
            for xid, txn in datasource.transactions.items():
                if txn.state is not TxnState.PREPARED:
                    continue
                prepared_at_end += 1
                gid = txn.global_txn_id
                if gid in live_gids:
                    continue
                owner = next(
                    (mw for mw in self.cluster.middlewares
                     if gid.startswith(f"{mw.name}-")), None)
                if owner is not None and owner.wal.last_decision(gid) is not None:
                    continue
                orphans.append({
                    "datasource": ds_name, "xid": xid, "gid": gid,
                    "owner": owner.name if owner is not None else None,
                })
        return {"prepared_at_end": prepared_at_end, "orphans": orphans}


def post_recovery_band(fault_free_committed: int, measured_ms: float,
                       outage_ms: float, slack: float = 0.35) -> Tuple[float, float]:
    """Sanity band for the committed count of a fault run.

    A fault run should commit roughly what the fault-free run commits minus
    the outage window, give or take ``slack`` (faults also cost abort
    cascades and recovery time, so the band is deliberately generous).  Used
    by the fault-scenario sanity tests::

        lo, hi = post_recovery_band(ok.committed, measured_ms, outage_ms)
        assert lo <= faulted.committed <= hi
    """
    if measured_ms <= 0:
        raise ValueError("measured_ms must be positive")
    surviving = max(measured_ms - outage_ms, 0.0) / measured_ms
    expected = fault_free_committed * surviving
    return expected * (1.0 - slack), fault_free_committed * (1.0 + slack)
