"""The geo-scheduler: latency-aware subtransaction start times (§IV-B, Eq. 1–3 & 8).

For every interaction round of a transaction the scheduler computes how long to
postpone the dispatch of each participant's statement batch.  Without the
high-contention optimization the optimal start time is

    t_start(Tij) = max_s(tau_is) - tau_ij                      (Eq. 3)

and with forecasted local execution latencies (O3) it becomes

    t_start(Tij) = max_s(tau_is + dLEL(Tis)) - (tau_ij + dLEL(Tij))   (Eq. 8)

so that every subtransaction finishes its execution-and-prepare phase at the
same moment the slowest one does, which minimises each subtransaction's lock
contention span without lengthening the transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.forecasting import LocalExecutionForecaster
from repro.core.latency_monitor import NetworkLatencyMonitor


@dataclass
class ScheduleDecision:
    """The scheduler's output for one round of one transaction."""

    #: Postpone delay in milliseconds per participant.
    delays: Dict[str, float] = field(default_factory=dict)
    #: The network latency estimate used per participant.
    latencies: Dict[str, float] = field(default_factory=dict)
    #: The forecasted local execution latency per participant (0 when O3 is off).
    forecasts: Dict[str, float] = field(default_factory=dict)

    @property
    def max_total_latency(self) -> float:
        """max_s (tau_s + dLEL_s) — the round's critical path."""
        if not self.latencies:
            return 0.0
        return max(self.latencies[p] + self.forecasts.get(p, 0.0)
                   for p in self.latencies)


class GeoScheduler:
    """Computes per-participant dispatch postponements."""

    def __init__(self, latency_monitor: NetworkLatencyMonitor,
                 forecaster: Optional[LocalExecutionForecaster] = None,
                 use_forecast: bool = False):
        self.latency_monitor = latency_monitor
        self.forecaster = forecaster
        self.use_forecast = use_forecast and forecaster is not None
        self.decisions = 0

    def schedule(self, records_by_participant: Dict[str, list]) -> ScheduleDecision:
        """Schedule one round given each participant's records to access.

        ``records_by_participant`` maps participant name to the list of
        (table, key) record ids its subtransaction will touch this round.
        """
        decision = ScheduleDecision()
        if not records_by_participant:
            return decision
        self.decisions += 1

        for participant, records in records_by_participant.items():
            latency = self.latency_monitor.estimate(participant)
            forecast = 0.0
            if self.use_forecast:
                forecast = self.forecaster.forecast(records)
            decision.latencies[participant] = latency
            decision.forecasts[participant] = forecast

        critical_path = decision.max_total_latency
        for participant in records_by_participant:
            total = (decision.latencies[participant]
                     + decision.forecasts.get(participant, 0.0))
            decision.delays[participant] = max(critical_path - total, 0.0)
        return decision
