"""Cluster construction: topologies, deployments and client terminals."""

from repro.cluster.topology import (
    DataNodeSpec,
    MiddlewareSpec,
    TopologyConfig,
    region_rtt_ms,
)
from repro.cluster.deployment import Cluster, SUPPORTED_SYSTEMS, build_cluster
from repro.cluster.client import ClientTerminal, start_terminals

__all__ = [
    "ClientTerminal",
    "Cluster",
    "DataNodeSpec",
    "MiddlewareSpec",
    "SUPPORTED_SYSTEMS",
    "TopologyConfig",
    "build_cluster",
    "region_rtt_ms",
    "start_terminals",
]
