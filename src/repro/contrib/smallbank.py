"""SmallBank-style banking workload (contrib plugin).

A read-heavy variant of the classic SmallBank benchmark (Alomari et al.,
ICDE 2008): customer accounts hold a ``savings`` and a ``checking`` row, and
terminals issue short banking transactions — balance reads, deposits,
withdrawals and payments — over accounts striped across the data nodes.

The knob the geo-distributed experiments care about is ``distributed_ratio``:
with that probability a transaction spans two data nodes (a cross-node
payment, amalgamate, or multi-account balance read); otherwise every account
it touches lives on one node.  Contention is controlled with a hot-account
set, as in the original benchmark.

This module is a *plugin*: it registers the workload and a scenario without
any edits to ``repro.cluster.deployment`` or ``repro.bench.runner`` —
importing it (``repro.contrib`` does so automatically) is all it takes for
``smallbank`` to appear in ``python -m repro.bench list --workloads``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common import Operation, OpType
from repro.middleware.router import ModuloPartitioner
from repro.middleware.statements import TransactionSpec
from repro.plugins import WorkloadPlugin, register_scenario_hook, register_workload
from repro.workloads.base import Workload, WorkloadConfig

SAVINGS = "savings"
CHECKING = "checking"

#: Default transaction mix — read-heavy: 60 % pure balance reads.
DEFAULT_MIX = {
    "balance": 0.60,
    "deposit_checking": 0.10,
    "transact_savings": 0.10,
    "write_check": 0.10,
    "send_payment": 0.10,
}

#: Transaction types that have a two-node (distributed) variant.
DISTRIBUTED_CAPABLE = ("balance", "send_payment", "amalgamate")


@dataclass
class SmallBankConfig(WorkloadConfig):
    """Configuration of the SmallBank generator (sizes scaled for simulation)."""

    #: Customer accounts per data node (each owns a savings + a checking row).
    accounts_per_node: int = 20_000
    #: Accounts materialised per node at load time (cold accounts are created
    #: lazily on first write, mirroring the YCSB loader's memory bound).
    preload_accounts_per_node: int = 2_000
    #: Probability that an account draw comes from the hot set.
    hotspot_probability: float = 0.25
    #: Size of the per-node hot-account set.
    hotspot_accounts: int = 100
    #: Transaction mix; must sum to 1.  ``amalgamate`` may appear here too.
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Initial balance loaded into each savings/checking row.
    initial_balance: float = 1_000.0


class SmallBankWorkload(Workload):
    """Generator of SmallBank transaction specs."""

    name = "smallbank"

    def __init__(self, datasource_names, config: SmallBankConfig):
        super().__init__(datasource_names, config)
        self.config: SmallBankConfig = config
        if config.accounts_per_node < 2:
            raise ValueError("accounts_per_node must be >= 2")
        if not 0 <= config.distributed_ratio <= 1:
            raise ValueError("distributed_ratio must be in [0, 1]")
        total = sum(config.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"transaction mix must sum to 1 (got {total})")
        known = set(DEFAULT_MIX) | {"amalgamate"}
        unknown = set(config.mix) - known
        if unknown:
            raise ValueError(f"unknown transaction types in mix: {sorted(unknown)}")
        self._distributed_mix = {t: w for t, w in config.mix.items()
                                 if t in DISTRIBUTED_CAPABLE and w > 0}
        if not self._distributed_mix:
            # Every mix can express a cross-node payment even when the
            # configured weights exclude one (e.g. a pure-balance mix).
            self._distributed_mix = {"send_payment": 1.0}
        self._distributed_mix_total = sum(self._distributed_mix.values())
        self._partitioner = ModuloPartitioner(self.datasource_names)
        self._builders = {
            "balance": self._balance,
            "deposit_checking": self._deposit_checking,
            "transact_savings": self._transact_savings,
            "write_check": self._write_check,
            "send_payment": self._send_payment,
            "amalgamate": self._amalgamate,
        }

    # --------------------------------------------------------------- interface
    def make_partitioner(self) -> ModuloPartitioner:
        return self._partitioner

    def initial_data(self) -> Dict[str, Dict[str, Dict]]:
        preload = min(self.config.accounts_per_node,
                      self.config.preload_accounts_per_node)
        balance = {"balance": self.config.initial_balance}
        data: Dict[str, Dict[str, Dict]] = {}
        for node_index, name in enumerate(self.datasource_names):
            savings, checking = {}, {}
            for sequence in range(preload):
                account = self._partitioner.key_for_node(node_index, sequence)
                savings[account] = dict(balance)
                checking[account] = dict(balance)
            data[name] = {SAVINGS: savings, CHECKING: checking}
        return data

    def next_transaction(self, terminal_id: int = 0) -> TransactionSpec:
        node_count = len(self.datasource_names)
        home = self.rng.randint(0, node_count - 1)
        is_distributed = (node_count > 1
                          and self.rng.bernoulli(self.config.distributed_ratio))
        if is_distributed:
            txn_type = self._draw_type(self._distributed_mix,
                                       self._distributed_mix_total)
            others = [i for i in range(node_count) if i != home]
            remote = self.rng.choice(others)
        else:
            txn_type = self._draw_type(self.config.mix, 1.0)  # validated sum
            remote = home
        operations = self._builders[txn_type](home, remote)
        return TransactionSpec.from_operations(
            operations, txn_type=txn_type, rounds=self.config.rounds,
            metadata={"distributed": is_distributed, "home_node": home})

    # ------------------------------------------------------------ txn builders
    # Each builder takes (home, remote) node indices; remote == home for
    # centralized transactions, so two-account types fall back to two distinct
    # accounts on the home node.
    def _balance(self, home: int, remote: int) -> List[Operation]:
        account = self._draw_account(home)
        ops = [self._read(SAVINGS, account), self._read(CHECKING, account)]
        if remote != home:
            other = self._draw_account(remote)
            ops += [self._read(SAVINGS, other), self._read(CHECKING, other)]
        return ops

    def _deposit_checking(self, home: int, remote: int) -> List[Operation]:
        account = self._draw_account(home)
        return [self._read(CHECKING, account), self._update(CHECKING, account)]

    def _transact_savings(self, home: int, remote: int) -> List[Operation]:
        account = self._draw_account(home)
        return [self._read(SAVINGS, account), self._update(SAVINGS, account)]

    def _write_check(self, home: int, remote: int) -> List[Operation]:
        account = self._draw_account(home)
        return [self._read(SAVINGS, account), self._read(CHECKING, account),
                self._update(CHECKING, account)]

    def _send_payment(self, home: int, remote: int) -> List[Operation]:
        source = self._draw_account(home)
        destination = self._draw_account(remote, exclude=source)
        return [self._read(CHECKING, source), self._update(CHECKING, source),
                self._update(CHECKING, destination)]

    def _amalgamate(self, home: int, remote: int) -> List[Operation]:
        source = self._draw_account(home)
        destination = self._draw_account(remote, exclude=source)
        return [self._read(SAVINGS, source), self._read(CHECKING, source),
                self._update(SAVINGS, source), self._update(CHECKING, destination)]

    # ----------------------------------------------------------------- helpers
    def _draw_type(self, mix: Dict[str, float], total: float) -> str:
        draw = self.rng.random() * total
        cumulative = 0.0
        for txn_type, weight in mix.items():
            cumulative += weight
            if draw < cumulative:
                return txn_type
        return next(iter(mix))

    def _draw_account(self, node_index: int, exclude: int = -1) -> int:
        config = self.config
        for _attempt in range(20):
            if self.rng.bernoulli(config.hotspot_probability):
                sequence = self.rng.randint(
                    0, min(config.hotspot_accounts, config.accounts_per_node) - 1)
            else:
                sequence = self.rng.randint(0, config.accounts_per_node - 1)
            account = self._partitioner.key_for_node(node_index, sequence)
            if account != exclude:
                return account
        return self._partitioner.key_for_node(
            node_index, config.accounts_per_node - 1)

    @staticmethod
    def _read(table: str, account: int) -> Operation:
        return Operation(op_type=OpType.READ, table=table, key=account)

    @staticmethod
    def _update(table: str, account: int) -> Operation:
        return Operation(op_type=OpType.UPDATE, table=table, key=account,
                         value={"balance": "updated"})


# ------------------------------------------------------------------- plugin
register_workload(WorkloadPlugin(
    name="smallbank",
    description="SmallBank-style read-heavy banking mix with a "
                "distributed-ratio knob",
    aliases=("small_bank",),
    factory=SmallBankWorkload,
    config_factory=SmallBankConfig,
))


def _register_scenarios() -> None:
    # Deferred: the bench layer imports the cluster layer, which loads the
    # plugins — importing scenarios at module level would be a cycle.
    from repro.bench.scenarios import Axis, ScenarioSpec, _base, register

    register(ScenarioSpec(
        name="smallbank_dist_ratio",
        description="SmallBank throughput vs distributed-payment ratio "
                    "(contrib workload)",
        base=_base(workload="smallbank", workload_config=SmallBankConfig()),
        axes=(Axis("system", ("ssp", "geotp")),
              Axis("ratio", (0.2, 0.6, 1.0),
                   path="workload_config.distributed_ratio")),
    ))


register_scenario_hook(_register_scenarios)
