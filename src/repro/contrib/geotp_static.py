"""GeoTP(static): GeoTP with probing and forecasting frozen (contrib plugin).

An ablation-style system variant that keeps GeoTP's decentralized prepare and
latency-aware scheduling but freezes every *adaptive* input:

* the network latency monitor never updates — scheduling postponements are
  computed from the nominal topology RTTs primed at construction time;
* active probing is disabled (``start_probing`` is a no-op, and the plugin
  advertises ``supports_active_probing=False`` so scenario logic never turns
  it on);
* the local-execution-latency forecast and late-transaction admission (O3)
  are switched off.

Comparing ``geotp_static`` against ``geotp`` under fluctuating latencies
isolates the value of GeoTP's online adaptation from the value of its static
latency awareness.  This module is a *plugin*: registering the system and its
scenario requires zero edits to ``repro.cluster.deployment`` or
``repro.bench.runner`` — the variant shows up in ``python -m repro.bench list
--systems`` purely by living in ``repro.contrib``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import GeoTPConfig
from repro.core.geotp import GeoTPCoordinator
from repro.plugins import (
    BuildContext,
    SystemPlugin,
    register_scenario_hook,
    register_system,
)
from repro.sim.rng import SeededRNG


class GeoTPStaticCoordinator(GeoTPCoordinator):
    """GeoTP scheduling on frozen, construction-time latency estimates."""

    system_name = "GeoTP(static)"

    def start_probing(self) -> None:
        """Probing is frozen: the primed topology RTTs are never refreshed."""

    def record_network_rtt(self, participant: str, rtt_ms: float) -> None:
        """Passive RTT observations are dropped — estimates stay static."""


def _build(ctx: BuildContext) -> GeoTPStaticCoordinator:
    base = ctx.geotp_config or GeoTPConfig()
    frozen = replace(base,
                     enable_high_contention_optimization=False,
                     enable_active_probing=False)
    return GeoTPStaticCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                                  ctx.participants, ctx.partitioner,
                                  geotp_config=frozen, rng=SeededRNG(ctx.seed))


register_system(SystemPlugin(
    name="geotp_static",
    description="GeoTP with probing/forecasting frozen: schedules on the "
                "nominal topology RTTs and never adapts",
    aliases=("geotp(static)", "geotpstatic"),
    builder=_build,
    needs_agents=True,
))


def _register_scenarios() -> None:
    # Deferred: the bench layer imports the cluster layer, which loads the
    # plugins — importing scenarios at module level would be a cycle.
    from repro.bench.scenarios import (
        Axis,
        ScenarioSpec,
        _apply_fig11a,
        _base,
        register,
    )

    register(ScenarioSpec(
        name="static_vs_adaptive",
        description="GeoTP vs frozen-estimate GeoTP(static) under random "
                    "latency fluctuations (contrib system variant)",
        base=_base(),
        axes=(Axis("system", ("geotp_static", "geotp")),
              Axis("ratio", (0.2, 0.6)),
              Axis("repeat", (0, 1))),
        fixed={"max_factor": 1.5},
        apply=_apply_fig11a,
    ))


register_scenario_hook(_register_scenarios)
