"""Unit tests for the open-system arrival processes."""

import math
import statistics

import pytest

from repro.workloads.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
)


def drain(arrivals, horizon_ms):
    """Arrival timestamps up to ``horizon_ms`` (replays the runner's loop)."""
    now, stamps = 0.0, []
    while True:
        now += arrivals.next_gap_ms(now)
        if now >= horizon_ms:
            return stamps
        stamps.append(now)


# ------------------------------------------------------------------ validation
@pytest.mark.parametrize("bad", [
    dict(process="weibull"),
    dict(rate_tps=0.0),
    dict(rate_tps=-5.0),
    dict(max_clients=0),
    dict(burst_factor=0.5),
    dict(burst_fraction=0.0),
    dict(burst_fraction=1.0),
    dict(mean_burst_ms=0.0),
    dict(period_ms=0.0),
    dict(amplitude=-0.1),
    dict(amplitude=1.0),
])
def test_validate_rejects_out_of_range_knobs(bad):
    with pytest.raises(ValueError):
        ArrivalConfig(**bad).validate()


def test_make_arrivals_covers_every_registered_process():
    classes = {"poisson": PoissonArrivals, "mmpp": MMPPArrivals,
               "diurnal": DiurnalArrivals}
    assert set(ARRIVAL_PROCESSES) == set(classes)
    for name in ARRIVAL_PROCESSES:
        arrivals = make_arrivals(ArrivalConfig(process=name))
        assert isinstance(arrivals, classes[name])
        assert arrivals.mean_rate_tps() == pytest.approx(200.0)


def test_stamped_copies_instead_of_mutating():
    config = ArrivalConfig(seed=0)
    stamped = config.stamped(99)
    assert stamped.seed == 99
    assert config.seed == 0
    assert stamped is not config


# ----------------------------------------------------------------- determinism
@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_same_seed_reproduces_the_stream(process):
    config = ArrivalConfig(process=process, rate_tps=300.0, seed=17,
                           period_ms=5_000.0)
    first = drain(make_arrivals(config), 10_000.0)
    second = drain(make_arrivals(config), 10_000.0)
    assert first == second
    other = drain(make_arrivals(config.stamped(18)), 10_000.0)
    assert first != other


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_gaps_are_strictly_positive(process):
    arrivals = make_arrivals(ArrivalConfig(process=process, rate_tps=500.0,
                                           seed=3, period_ms=2_000.0))
    now = 0.0
    for _ in range(2_000):
        gap = arrivals.next_gap_ms(now)
        assert gap > 0.0
        now += gap


# ------------------------------------------------------------------- mean rate
@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_long_run_mean_rate_matches_config(process):
    # 10 minutes of simulated time at 200 tps -> ~120k arrivals; the MMPP
    # stream has the widest variance (state dwells correlate arrivals), so the
    # tolerance is loose but still catches a mis-derated quiet rate (ratio
    # error 0.57 for the naive construction at burst_factor=8).
    config = ArrivalConfig(process=process, rate_tps=200.0, seed=11,
                           period_ms=30_000.0)
    horizon_ms = 600_000.0
    stamps = drain(make_arrivals(config), horizon_ms)
    empirical_tps = len(stamps) / (horizon_ms / 1000.0)
    assert empirical_tps == pytest.approx(200.0, rel=0.08)


def test_mmpp_is_burstier_than_poisson():
    # Index of dispersion of per-second counts: ~1 for Poisson, >> 1 for MMPP.
    def dispersion(process):
        config = ArrivalConfig(process=process, rate_tps=200.0, seed=7,
                               burst_factor=8.0, burst_fraction=0.1)
        stamps = drain(make_arrivals(config), 120_000.0)
        counts = [0] * 120
        for t in stamps:
            counts[int(t // 1000.0)] += 1
        return statistics.pvariance(counts) / statistics.fmean(counts)

    assert dispersion("poisson") < 2.0
    assert dispersion("mmpp") > 5.0


# --------------------------------------------------------------------- diurnal
def test_diurnal_rate_at_follows_the_wave():
    config = ArrivalConfig(process="diurnal", rate_tps=100.0,
                           amplitude=0.5, period_ms=1_000.0)
    arrivals = make_arrivals(config)
    assert arrivals.rate_at(0.0) == pytest.approx(100.0)
    assert arrivals.rate_at(250.0) == pytest.approx(150.0)   # peak
    assert arrivals.rate_at(750.0) == pytest.approx(50.0)    # trough
    assert arrivals.rate_at(1_000.0) == pytest.approx(100.0)


def test_diurnal_arrivals_concentrate_at_the_peak():
    config = ArrivalConfig(process="diurnal", rate_tps=200.0, amplitude=0.8,
                           period_ms=10_000.0, seed=5)
    stamps = drain(make_arrivals(config), 200_000.0)
    # Split each period into the rising half (around the peak at T/4) and the
    # falling half (around the trough at 3T/4).
    peak_half = sum(1 for t in stamps if (t % 10_000.0) < 5_000.0)
    trough_half = len(stamps) - peak_half
    # With amplitude 0.8 the halves integrate to 1 ± 2·0.8/π of the mean.
    expected_ratio = (1 + 2 * 0.8 / math.pi) / (1 - 2 * 0.8 / math.pi)
    assert peak_half / trough_half == pytest.approx(expected_ratio, rel=0.1)
