"""Write-ahead log of a simulated data source (and of the middleware).

Only the structure needed by the paper's recovery protocol (§V-A) is modelled:
append-only records for PREPARE / COMMIT / ABORT decisions plus a flush cost in
simulated milliseconds.  The recovery manager replays these records after a
crash to decide the fate of in-doubt transactions.

Like a real log, this one is **checkpointed**: once the log grows past twice
the retention horizon, records of *decided* transactions older than the
newest ``checkpoint_records`` entries are dropped (their outcome is durable in
the database itself).  Records of in-doubt transactions — a PREPARE with no
final decision — are always kept, whatever their age, so recovery never loses
the branches it exists for.  Open-system runs (10⁶+ transactions) rely on
this to keep log memory O(1) with run length; every query a recovery manager
issues (``prepared_xids``, ``last_decision`` on an in-doubt xid) is unaffected
because it only concerns undecided or recently decided transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default retention horizon: how many of the newest records survive a
#: checkpoint verbatim.  Compaction triggers at twice this, so the amortized
#: cost per append is O(1) and the log never exceeds ~2x the horizon (plus
#: records of still-undecided transactions, bounded by the in-flight count).
#: Kept deliberately small: long-lived log records pin allocator arenas, so a
#: generous horizon shows up directly as resident-set growth on long runs.
DEFAULT_CHECKPOINT_RECORDS = 1024


class LogRecordType(enum.Enum):
    """The kinds of decisions persisted to the log."""

    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(slots=True)
class WALRecord:
    """One persisted log entry."""

    record_type: LogRecordType
    xid: str
    timestamp: float
    payload: Dict = field(default_factory=dict)


class WriteAheadLog:
    """Append-only durable log with a fixed flush latency and checkpointing."""

    def __init__(self, flush_cost_ms: float = 1.0,
                 checkpoint_records: Optional[int] = DEFAULT_CHECKPOINT_RECORDS):
        if checkpoint_records is not None and checkpoint_records < 1:
            raise ValueError("checkpoint_records must be >= 1 (or None)")
        self.flush_cost_ms = flush_cost_ms
        self.checkpoint_records = checkpoint_records
        self.checkpoints = 0
        self._records: List[WALRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record_type: LogRecordType, xid: str, timestamp: float,
               payload: Optional[Dict] = None) -> WALRecord:
        """Append a record (the caller is responsible for charging flush time)."""
        record = WALRecord(record_type=record_type, xid=xid,
                           timestamp=timestamp, payload=dict(payload or {}))
        self._records.append(record)
        if (self.checkpoint_records is not None
                and len(self._records) >= 2 * self.checkpoint_records):
            self.checkpoint()
        return record

    def checkpoint(self) -> int:
        """Drop decided-transaction records older than the retention horizon.

        The newest ``checkpoint_records`` entries are kept verbatim; from the
        older prefix only records of transactions *without* a final
        COMMIT/ABORT anywhere in the log survive (in-doubt branches).  Record
        order is preserved.  Returns the number of records dropped.  Purely a
        memory operation — no simulated time is charged and no RNG is drawn,
        so checkpointing can never perturb a run.
        """
        records = self._records
        horizon = (len(records) - self.checkpoint_records
                   if self.checkpoint_records is not None else 0)
        if horizon <= 0:
            return 0
        decided = {r.xid for r in records
                   if r.record_type is not LogRecordType.PREPARE}
        kept = [r for r in records[:horizon] if r.xid not in decided]
        kept.extend(records[horizon:])
        dropped = len(records) - len(kept)
        self._records = kept
        self.checkpoints += 1
        return dropped

    def records(self) -> List[WALRecord]:
        """All records in append order."""
        return list(self._records)

    def records_for(self, xid: str) -> List[WALRecord]:
        """All records belonging to transaction ``xid``."""
        return [r for r in self._records if r.xid == xid]

    def last_decision(self, xid: str) -> Optional[LogRecordType]:
        """The final COMMIT/ABORT decision recorded for ``xid``, if any."""
        for record in reversed(self._records):
            if record.xid == xid and record.record_type in (
                    LogRecordType.COMMIT, LogRecordType.ABORT):
                return record.record_type
        return None

    def prepared_xids(self) -> List[str]:
        """Xids with a PREPARE record but no final decision (in-doubt)."""
        decided = {r.xid for r in self._records
                   if r.record_type in (LogRecordType.COMMIT, LogRecordType.ABORT)}
        seen: List[str] = []
        for record in self._records:
            if (record.record_type is LogRecordType.PREPARE
                    and record.xid not in decided and record.xid not in seen):
                seen.append(record.xid)
        return seen

    def truncate(self) -> None:
        """Discard all records (only used to model log archiving in tests)."""
        self._records.clear()
