"""Per-transaction context objects kept by the middleware.

The :class:`TransactionContext` tracks the state the coordinator needs across
phases: the participants touched so far, the per-participant XA branch ids,
prepare votes, and the time spent in each phase (which feeds the latency
breakdown of Figure 6c).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.common import AbortReason, SubtxnResult, Vote
from repro.middleware.statements import TransactionSpec


class TransactionPhase(enum.Enum):
    """Coordinator-side phases of a distributed transaction."""

    ANALYSIS = "analysis"
    EXECUTION = "execution"
    PREPARE = "prepare"
    COMMIT = "commit"
    DONE = "done"


@dataclass(slots=True)
class QueryContext:
    """Parsed information about the statements of one round."""

    round_index: int
    participant_batches: Dict[str, List] = field(default_factory=dict)
    annotations: Dict[str, bool] = field(default_factory=dict)


@dataclass(slots=True)
class TransactionContext:
    """Everything the coordinator tracks about one in-flight transaction."""

    txn_id: str
    spec: TransactionSpec
    submitted_at: float
    phase: TransactionPhase = TransactionPhase.ANALYSIS
    #: Participants in first-touch order and their XA branch ids.
    participants: List[str] = field(default_factory=list)
    branch_xids: Dict[str, str] = field(default_factory=dict)
    #: Prepare votes received so far, keyed by participant.
    votes: Dict[str, Vote] = field(default_factory=dict)
    #: Execution results per participant (latest round).
    results: Dict[str, SubtxnResult] = field(default_factory=dict)
    #: Accumulated per-record local latencies observed during execution
    #: (feeds the hotspot footprint of GeoTP's O3).
    record_latencies: Dict[Tuple[str, Hashable], float] = field(default_factory=dict)
    abort_reason: Optional[AbortReason] = None
    #: Wall-clock (simulated) milliseconds spent per phase.
    phase_durations: Dict[str, float] = field(default_factory=dict)
    _phase_started_at: float = 0.0

    def __post_init__(self) -> None:
        self._phase_started_at = self.submitted_at

    # ------------------------------------------------------------ participants
    def branch_xid(self, participant: str) -> str:
        """The XA branch id of this transaction on ``participant`` (stable)."""
        if participant not in self.branch_xids:
            index = len(self.branch_xids) + 1
            self.branch_xids[participant] = f"{self.txn_id}.{index}"
        if participant not in self.participants:
            self.participants.append(participant)
        return self.branch_xids[participant]

    @property
    def is_distributed(self) -> bool:
        """True if the transaction touched more than one data source."""
        return len(self.participants) > 1

    # ------------------------------------------------------------------ phases
    def enter_phase(self, phase: TransactionPhase, now: float) -> None:
        """Record the end of the current phase and start a new one."""
        elapsed = now - self._phase_started_at
        key = self.phase.value
        self.phase_durations[key] = self.phase_durations.get(key, 0.0) + elapsed
        self.phase = phase
        self._phase_started_at = now

    # ------------------------------------------------------------------- votes
    def record_vote(self, participant: str, vote: Vote) -> None:
        """Store the prepare vote of ``participant``."""
        self.votes[participant] = vote

    def all_voted(self) -> bool:
        """True once every participant has voted."""
        return all(p in self.votes for p in self.participants)

    def all_yes(self) -> bool:
        """True if every participant voted YES (and all have voted)."""
        return self.all_voted() and all(v is Vote.YES for v in self.votes.values())

    # -------------------------------------------------------------- statistics
    def merge_record_latencies(self, result: SubtxnResult) -> None:
        """Fold a subtransaction's per-record latencies into the context."""
        for record_id, latency in result.per_record_latency.items():
            self.record_latencies[record_id] = (
                self.record_latencies.get(record_id, 0.0) + latency)

    def accessed_records(self) -> Set[Tuple[str, Hashable]]:
        """All records the transaction has touched so far."""
        return set(self.record_latencies) | {
            stmt.record_id for stmt in self.spec.all_statements}
