"""Engine selection: ``REPRO_ENGINE``, the facades, and ``engine_info()``.

The kernel (environment/events/process/resources/locks) is chosen once per
process by :mod:`repro.sim.engine` — ``pure`` (the interpreted source of
truth), ``compiled`` (the mypyc build, hard error when absent) or ``auto``
(compiled when available, silently pure otherwise).  These tests pin the
selector contract from both sides of the process boundary: in-process for the
engine this pytest run resolved to, and via ``REPRO_ENGINE``-pinned
subprocesses for the selection logic itself.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.sim.engine as engine_mod
from repro.sim.engine import (
    ENGINE_ENV_VAR,
    VALID_ENGINES,
    active_engine,
    compiled_available,
    engine_info,
    requested_engine,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"


def _run_python(code: str, engine: str) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env[ENGINE_ENV_VAR] = engine
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, check=False)


INFO_CODE = "import json, repro.sim; print(json.dumps(repro.sim.engine_info()))"


# ----------------------------------------------------------- in-process pins
def test_valid_engines_and_env_var_names():
    assert VALID_ENGINES == ("pure", "compiled", "auto")
    assert ENGINE_ENV_VAR == "REPRO_ENGINE"


def test_active_engine_is_a_concrete_kernel():
    # `auto` must resolve to one of the two real kernels, never leak through.
    assert active_engine() in ("pure", "compiled")
    assert requested_engine() in VALID_ENGINES


def test_engine_info_reports_the_selection():
    info = engine_info()
    assert set(info) >= {"requested", "active", "compiled_available",
                         "compiled_error", "kernel", "env_var"}
    assert info["active"] == active_engine()
    assert info["requested"] == requested_engine()
    assert info["compiled_available"] == compiled_available()
    assert info["env_var"] == ENGINE_ENV_VAR
    suffix = "_ckernel" if info["active"] == "compiled" else "_kernel"
    assert info["kernel"].endswith(suffix)
    if info["compiled_available"]:
        assert info["compiled_error"] is None


def test_facades_reexport_the_selected_kernel():
    import repro.sim.environment as env_facade
    import repro.sim.events as events_facade
    import repro.sim.process as process_facade
    import repro.sim.resources as resources_facade
    import repro.storage.lock_manager as locks_facade

    assert env_facade.Environment is engine_mod.environment.Environment
    assert events_facade.Event is engine_mod.events.Event
    assert events_facade.Timeout is engine_mod.events.Timeout
    assert process_facade.Process is engine_mod.process.Process
    assert resources_facade.Store is engine_mod.resources.Store
    assert locks_facade.LockManager is engine_mod.locks.LockManager


def test_pending_sentinel_is_shared_with_the_kernel():
    # The facade must hand out the SAME sentinel object as the selected
    # kernel, or cross-module `is PENDING` checks would silently never match.
    from repro.sim.events import PENDING as facade_pending

    assert facade_pending is engine_mod.events.PENDING


def test_experiment_summary_carries_the_active_engine():
    from repro.bench.runner import ExperimentConfig, run_experiment
    from repro.workloads.ycsb import YCSBConfig

    config = ExperimentConfig(system="geotp", terminals=2,
                              duration_ms=300.0, warmup_ms=0.0,
                              ycsb=YCSBConfig())
    result = run_experiment(config)
    assert result.engine == active_engine()
    summary = result.summary()
    assert summary.engine == active_engine()
    assert summary.to_dict()["engine"] == active_engine()


# ------------------------------------------------------ subprocess selection
def test_pure_engine_selectable_explicitly():
    proc = _run_python(INFO_CODE, engine="pure")
    assert proc.returncode == 0, proc.stderr
    info = json.loads(proc.stdout)
    assert info["requested"] == "pure"
    assert info["active"] == "pure"
    assert info["kernel"].endswith("_kernel")


def test_auto_engine_resolves_to_a_concrete_kernel():
    proc = _run_python(INFO_CODE, engine="auto")
    assert proc.returncode == 0, proc.stderr
    info = json.loads(proc.stdout)
    assert info["requested"] == "auto"
    assert info["active"] in ("pure", "compiled")
    if not info["compiled_available"]:
        assert info["active"] == "pure"
        assert info["compiled_error"]


def test_invalid_engine_is_rejected_at_import():
    proc = _run_python("import repro.sim", engine="definitely-not-an-engine")
    assert proc.returncode != 0
    assert "REPRO_ENGINE" in proc.stderr
    for valid in VALID_ENGINES:
        assert valid in proc.stderr


@pytest.mark.skipif(compiled_available(),
                    reason="compiled core is built here; the hard-failure "
                           "path below cannot trigger")
def test_requesting_compiled_without_a_build_fails_with_instructions():
    proc = _run_python("import repro.sim", engine="compiled")
    assert proc.returncode != 0
    assert "compiled" in proc.stderr
    assert "tools/build_compiled.py" in proc.stderr


def test_bench_cli_engine_subcommand_prints_the_info_document():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run([sys.executable, "-m", "repro.bench", "engine"],
                          env=env, capture_output=True, text=True, check=False)
    assert proc.returncode == 0, proc.stderr
    info = json.loads(proc.stdout)
    assert info["active"] in ("pure", "compiled")
    assert info["env_var"] == "REPRO_ENGINE"
