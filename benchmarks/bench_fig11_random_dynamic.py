"""Figure 11 — random per-message latency and online adaptivity to latency changes."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig11_dynamic_latency, fig11_random_latency


def test_fig11a_random_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_random_latency(ratios=(0.2, 1.0), repeats=2,
                                     duration_ms=BENCH_DURATION_MS,
                                     terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    geotp = {ratio: mean for ratio, mean, _lo, _hi in result["geotp"]}
    ssp = {ratio: mean for ratio, mean, _lo, _hi in result["ssp"]}
    for ratio in (0.2, 1.0):
        assert geotp[ratio] > ssp[ratio]


def test_fig11b_dynamic_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_dynamic_latency(phase_ms=5_000.0, phases=3,
                                      terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    assert result["geotp"]["throughput_tps"] > result["ssp"]["throughput_tps"]
    assert len(result["geotp"]["timeline"]) > 0
