"""Shared value types used across the storage, middleware and core packages.

Keeping these small dataclasses and enums in one leaf module avoids import
cycles between the data-source layer and the middleware layer, which both need
to talk about operations, votes and transaction outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple


class OpType(enum.Enum):
    """The kind of a single data operation within a (sub)transaction."""

    READ = "read"
    WRITE = "write"          # blind write / insert
    UPDATE = "update"        # read-modify-write (takes an X lock like WRITE)


class Vote(enum.Enum):
    """A participant's answer to the prepare phase."""

    YES = "yes"
    NO = "no"


class TxnOutcome(enum.Enum):
    """Final outcome of a transaction as observed by the client."""

    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why a transaction aborted (used for abort-rate breakdowns)."""

    LOCK_TIMEOUT = "lock_timeout"
    DEADLOCK = "deadlock"
    ADMISSION_BLOCKED = "admission_blocked"
    PEER_ABORT = "peer_abort"
    PREPARE_FAILED = "prepare_failed"
    USER_ABORT = "user_abort"
    FAILURE = "failure"
    #: The coordinator or a data source was crashed / unreachable (fault
    #: injection); clients back off briefly before retrying.
    UNAVAILABLE = "unavailable"


@dataclass(slots=True)
class Operation:
    """One read/write against a single record.

    ``table`` and ``key`` identify the record; ``value`` is the payload for
    writes/updates (ignored for reads).  ``is_hot_hint`` lets workloads mark
    operations that target known hotspots (used only by the QURO baseline's
    reordering and by tests; GeoTP itself learns hotness from statistics).
    """

    op_type: OpType
    table: str
    key: Hashable
    value: Any = None
    is_hot_hint: bool = False

    @property
    def is_write(self) -> bool:
        """True if this operation takes an exclusive lock."""
        return self.op_type is not OpType.READ

    def record_id(self) -> Tuple[str, Hashable]:
        """Globally unique record identifier (table, key)."""
        return (self.table, self.key)


@dataclass(slots=True)
class OperationResult:
    """Result of executing one operation on a data source."""

    operation: Operation
    success: bool
    value: Any = None
    error: Optional[str] = None


@dataclass(slots=True)
class SubtxnResult:
    """Result of executing a batch of operations of one subtransaction."""

    xid: str
    datasource: str
    success: bool
    results: List[OperationResult] = field(default_factory=list)
    error: Optional[str] = None
    abort_reason: Optional[AbortReason] = None
    #: Local execution latency (ms) spent inside the data source, including
    #: lock waits — the quantity GeoTP's forecasting model estimates.
    local_execution_ms: float = 0.0
    #: True if the data source also prepared the branch before replying
    #: (execute-and-prepare merging, used by the Chiller baseline).
    prepared: bool = False
    #: Per-record share of the local execution latency, keyed by (table, key).
    per_record_latency: Dict[Tuple[str, Hashable], float] = field(default_factory=dict)


@dataclass(slots=True)
class TransactionResult:
    """What the client sees once a transaction finishes."""

    txn_id: str
    outcome: TxnOutcome
    start_time: float
    end_time: float
    is_distributed: bool
    abort_reason: Optional[AbortReason] = None
    #: Milliseconds spent in each coordinator phase, e.g. execution/prepare/commit.
    phase_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Number of data sources the transaction touched.
    participant_count: int = 1
    #: True for a *clean refusal*: the middleware was already crashed when the
    #: submission arrived, so nothing was coordinated and no branch exists
    #: anywhere.  Only these results are safe to fail over to another
    #: middleware; an interrupted in-flight coordination (also
    #: ``UNAVAILABLE``) may still be committed by recovery, so resubmitting
    #: it could duplicate the work.
    rejected: bool = False

    @property
    def latency_ms(self) -> float:
        """End-to-end latency observed by the client."""
        return self.end_time - self.start_time

    @property
    def committed(self) -> bool:
        """True if the transaction committed."""
        return self.outcome is TxnOutcome.COMMITTED
