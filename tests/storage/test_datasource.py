"""Integration tests for the DataSource node (XA verbs over the simulated network)."""

import pytest

from repro import protocol
from repro.common import AbortReason, Operation, OpType, Vote
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect, PostgreSQLDialect, TxnState


def make_datasource(rtt_ms=10.0, dialect=None, lock_wait_timeout_ms=5000.0):
    env = Environment()
    net = Network(env)
    config = DataSourceConfig(name="ds1", dialect=dialect or MySQLDialect(),
                              lock_wait_timeout_ms=lock_wait_timeout_ms)
    ds = DataSource(env, net, config)
    net.set_link("client", "ds1", ConstantLatency(rtt_ms))
    client = net.interface("client")
    return env, net, ds, client


def read_op(key, table="usertable"):
    return Operation(op_type=OpType.READ, table=table, key=key)


def write_op(key, value, table="usertable"):
    return Operation(op_type=OpType.UPDATE, table=table, key=key, value=value)


def test_xa_commit_cycle_updates_value():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"alice": 100})
    outcome = {}

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "x1"})
        result = yield client.request("ds1", protocol.MSG_EXECUTE,
                                      {"xid": "x1", "operations": [write_op("alice", 50)]})
        assert result.success
        yield client.request("ds1", protocol.MSG_XA_END, {"xid": "x1"})
        vote = yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "x1"})
        assert vote["vote"] is Vote.YES
        yield client.request("ds1", protocol.MSG_XA_COMMIT, {"xid": "x1"})
        outcome["value"] = ds.engine.read("probe", "usertable", "alice").value
        outcome["state"] = ds.transactions["x1"].state

    env.process(coordinator())
    env.run()
    assert outcome["value"] == 50
    assert outcome["state"] is TxnState.COMMITTED
    assert ds.lock_manager.locks_held("x1") == set()


def test_xa_rollback_discards_buffered_write():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"bob": 10})

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "x2"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "x2", "operations": [write_op("bob", 999)]})
        yield client.request("ds1", protocol.MSG_XA_ROLLBACK, {"xid": "x2"})

    env.process(coordinator())
    env.run()
    assert ds.engine.read("probe", "usertable", "bob").value == 10
    assert ds.transactions["x2"].state is TxnState.ABORTED


def test_read_returns_committed_value_and_result_latency_accounts_cost():
    env, net, ds, client = make_datasource(rtt_ms=20)
    ds.load_table("usertable", {"key": "value"})
    collected = {}

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "x3"})
        result = yield client.request("ds1", protocol.MSG_EXECUTE,
                                      {"xid": "x3", "operations": [read_op("key")]})
        collected["result"] = result

    env.process(coordinator())
    env.run()
    result = collected["result"]
    assert result.success
    assert result.results[0].value == "value"
    assert result.local_execution_ms > 0
    assert ("usertable", "key") in result.per_record_latency


def test_lock_timeout_aborts_subtransaction():
    env, net, ds, client = make_datasource(lock_wait_timeout_ms=50)
    ds.load_table("usertable", {"hot": 0})
    outcomes = {}

    def holder():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "holder"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "holder", "operations": [write_op("hot", 1)]})
        # Keep the lock until well after the waiter times out.
        yield env.timeout(500)
        yield client.request("ds1", protocol.MSG_XA_ROLLBACK, {"xid": "holder"})

    def waiter():
        yield env.timeout(20)
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "waiter"})
        result = yield client.request("ds1", protocol.MSG_EXECUTE,
                                      {"xid": "waiter", "operations": [write_op("hot", 2)]})
        outcomes["waiter"] = result

    env.process(holder())
    env.process(waiter())
    env.run()
    assert not outcomes["waiter"].success
    assert outcomes["waiter"].abort_reason is AbortReason.LOCK_TIMEOUT
    assert ds.transactions["waiter"].state is TxnState.ABORTED


def test_commit_one_phase_for_centralized_transaction():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"k": 1})

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "c1"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "c1", "operations": [write_op("k", 2)]})
        reply = yield client.request("ds1", protocol.MSG_COMMIT_ONE_PHASE, {"xid": "c1"})
        assert reply["status"] == "ok"

    env.process(coordinator())
    env.run()
    assert ds.engine.read("probe", "usertable", "k").value == 2
    assert ds.stats.commits == 1


def test_execute_on_unknown_transaction_fails():
    env, net, ds, client = make_datasource()
    collected = {}

    def coordinator():
        result = yield client.request("ds1", protocol.MSG_EXECUTE,
                                      {"xid": "ghost", "operations": [read_op("k")]})
        collected["result"] = result

    env.process(coordinator())
    env.run()
    assert not collected["result"].success


def test_commit_is_idempotent_for_recovery_retries():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"k": 1})
    replies = []

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "x"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "x", "operations": [write_op("k", 5)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "x"})
        first = yield client.request("ds1", protocol.MSG_XA_COMMIT, {"xid": "x"})
        second = yield client.request("ds1", protocol.MSG_XA_COMMIT, {"xid": "x"})
        replies.extend([first, second])

    env.process(coordinator())
    env.run()
    assert replies[0]["status"] == "ok"
    assert replies[1]["status"] == "ok" and replies[1].get("already")
    assert ds.engine.read("p", "usertable", "k").version == 2  # committed exactly once


def test_rollback_after_commit_is_rejected():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"k": 1})
    replies = {}

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "x"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "x", "operations": [write_op("k", 5)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "x"})
        yield client.request("ds1", protocol.MSG_XA_COMMIT, {"xid": "x"})
        replies["rollback"] = yield client.request("ds1", protocol.MSG_XA_ROLLBACK, {"xid": "x"})

    env.process(coordinator())
    env.run()
    assert replies["rollback"]["status"] == "error"


def test_list_prepared_reports_in_doubt_transactions():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"k": 1})
    collected = {}

    def coordinator():
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "p1"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "p1", "operations": [write_op("k", 5)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "p1"})
        reply = yield client.request("ds1", protocol.MSG_LIST_PREPARED, {})
        collected["prepared"] = reply["prepared"]

    env.process(coordinator())
    env.run()
    assert collected["prepared"] == ["p1"]


def test_crash_aborts_active_but_keeps_prepared_transactions():
    env, net, ds, client = make_datasource()
    ds.load_table("usertable", {"a": 1, "b": 2})

    def coordinator():
        # One prepared, one still active.
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "prep"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "prep", "operations": [write_op("a", 10)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "prep"})
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "active"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "active", "operations": [write_op("b", 20)]})
        yield client.request("ds1", protocol.MSG_CRASH, {})
        yield client.request("ds1", protocol.MSG_RESTART, {})

    env.process(coordinator())
    env.run()
    assert ds.transactions["prep"].state is TxnState.PREPARED
    assert ds.transactions["active"].state is TxnState.ABORTED
    assert ds.engine.read("p", "usertable", "b").value == 2


def test_crashed_node_refuses_requests_until_restart():
    """A crashed *process* refuses connections instead of staying silent.

    (Silence is the semantics of a network outage — ``Network.disrupt_node`` —
    not of a dead server process, whose OS resets incoming connections.)  The
    refusal shape matches what each verb's caller expects so coordinators can
    abort promptly: a failed SubtxnResult for execute, a NO vote for prepare,
    an error status otherwise.
    """
    env, net, ds, client = make_datasource()
    log = {}

    def coordinator():
        yield client.request("ds1", protocol.MSG_CRASH, {})
        log["ping"] = yield client.request("ds1", protocol.MSG_PING, {})
        log["execute"] = yield client.request(
            "ds1", protocol.MSG_EXECUTE,
            {"xid": "x9", "operations": [write_op("a", 1)], "auto_start": True})
        log["prepare"] = yield client.request("ds1", protocol.MSG_XA_PREPARE,
                                              {"xid": "x9"})
        yield client.request("ds1", protocol.MSG_RESTART, {})
        log["after"] = yield client.request("ds1", protocol.MSG_PING, {})

    env.process(coordinator())
    env.run(until=1000)
    assert log["ping"]["status"] == "error"
    assert not log["execute"].success
    assert log["execute"].abort_reason is AbortReason.UNAVAILABLE
    assert "x9" not in ds.transactions  # the refusal never opened a branch
    assert log["prepare"]["vote"] is Vote.NO
    assert log["after"]["status"] == "ok"  # restart restores normal service


def test_kv_interface_get_put_and_conditional_put():
    env, net, ds, client = make_datasource()
    ds.load_table("kv", {"x": "v0"})
    collected = {}

    def coordinator():
        get1 = yield client.request("ds1", protocol.MSG_KV_GET, {"table": "kv", "key": "x"})
        put = yield client.request("ds1", protocol.MSG_KV_PUT,
                                   {"table": "kv", "key": "x", "value": "v1"})
        conflict = yield client.request(
            "ds1", protocol.MSG_KV_PUT_IF_VERSION,
            {"table": "kv", "key": "x", "value": "v2", "expected_version": 1})
        ok = yield client.request(
            "ds1", protocol.MSG_KV_PUT_IF_VERSION,
            {"table": "kv", "key": "x", "value": "v2", "expected_version": put["version"]})
        missing = yield client.request("ds1", protocol.MSG_KV_GET, {"table": "kv", "key": "nope"})
        collected.update(get1=get1, put=put, conflict=conflict, ok=ok, missing=missing)

    env.process(coordinator())
    env.run()
    assert collected["get1"]["value"] == "v0"
    assert collected["put"]["status"] == "ok"
    assert collected["conflict"]["status"] == "conflict"
    assert collected["ok"]["status"] == "ok"
    assert not collected["missing"]["found"]


def test_unknown_verb_returns_error():
    env, net, ds, client = make_datasource()
    collected = {}

    def coordinator():
        reply = yield client.request("ds1", "bogus_verb", {})
        collected["reply"] = reply

    env.process(coordinator())
    env.run()
    assert collected["reply"]["status"] == "error"


def test_postgresql_dialect_statements_and_read_rewrite():
    dialect = PostgreSQLDialect()
    assert dialect.begin_statements("x") == ["BEGIN;"]
    assert dialect.end_prepare_statements("x") == ["PREPARE TRANSACTION 'x';"]
    assert dialect.commit_statements("x") == ["COMMIT PREPARED 'x';"]
    rewritten = dialect.rewrite_read("SELECT * FROM t WHERE k = 1;")
    assert rewritten.endswith("FOR SHARE;")
    # Idempotent rewrite.
    assert dialect.rewrite_read(rewritten).count("FOR SHARE") == 1


def test_mysql_dialect_statements_no_rewrite():
    dialect = MySQLDialect()
    assert dialect.begin_statements("x") == ["XA START 'x';"]
    assert dialect.end_prepare_statements("x") == ["XA END 'x';", "XA PREPARE 'x';"]
    sql = "SELECT * FROM t;"
    assert dialect.rewrite_read(sql) == sql


def test_dialect_by_name_lookup():
    from repro.storage.dialects import dialect_by_name
    assert dialect_by_name("mysql").name == "mysql"
    assert dialect_by_name("PostgreSQL").name == "postgresql"
    with pytest.raises(ValueError):
        dialect_by_name("oracle")


def test_finished_transactions_are_evicted_beyond_retention():
    env, net, ds, client = make_datasource()
    ds.config.finished_txn_retention = 8
    ds.load_table("usertable", {"carol": 1})

    def coordinator():
        for i in range(30):
            xid = f"r{i}"
            yield client.request("ds1", protocol.MSG_XA_START, {"xid": xid})
            yield client.request("ds1", protocol.MSG_EXECUTE,
                                 {"xid": xid,
                                  "operations": [write_op("carol", i)]})
            yield client.request("ds1", protocol.MSG_COMMIT_ONE_PHASE,
                                 {"xid": xid})

    env.process(coordinator())
    env.run()
    # Only the newest `retention` finished transactions remain resident.
    assert len(ds.transactions) == 8
    assert "r29" in ds.transactions and "r0" not in ds.transactions
    # The data outcome of evicted transactions is durable regardless.
    assert ds.engine.read("probe", "usertable", "carol").value == 29


def test_in_doubt_transactions_survive_retention_pressure():
    env, net, ds, client = make_datasource()
    ds.config.finished_txn_retention = 4

    def coordinator():
        # One branch parks in PREPARED (in doubt) ...
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "doubt"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "doubt",
                              "operations": [write_op("k", 1)]})
        yield client.request("ds1", protocol.MSG_XA_END, {"xid": "doubt"})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "doubt"})
        # ... while far more than `retention` transactions finish around it.
        for i in range(20):
            xid = f"f{i}"
            yield client.request("ds1", protocol.MSG_XA_START, {"xid": xid})
            yield client.request("ds1", protocol.MSG_EXECUTE,
                                 {"xid": xid,
                                  "operations": [write_op("other", i)]})
            yield client.request("ds1", protocol.MSG_COMMIT_ONE_PHASE,
                                 {"xid": xid})

    env.process(coordinator())
    env.run()
    # Eviction only ever touches finished branches: the in-doubt one is
    # still resident for recovery, whatever the churn around it.
    assert ds.transactions["doubt"].state is TxnState.PREPARED
    assert len(ds.transactions) <= 4 + 1
