"""Shared scale settings for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures at a reduced
scale (shorter measurement window, fewer terminals, fewer sweep points) so the
whole suite finishes in a few minutes on a laptop.  EXPERIMENTS.md records a
full-scale run produced with the same experiment functions.
"""

#: Simulated milliseconds per experiment point.  High-contention points need a
#: window several times longer than the 5 s lock-wait timeout to accumulate a
#: meaningful number of commits.
BENCH_DURATION_MS = 20_000.0
#: Client terminals per experiment point.
BENCH_TERMINALS = 32
