"""Hotspot footprint: per-record contention statistics (§IV-C).

The geo-scheduler keeps, for each hot record ``r``:

* ``w_lat`` — the weighted average latency of subtransactions completing
  operations on ``r`` (Eq. 4);
* ``t_cnt`` — total number of transactions that accessed ``r``;
* ``c_cnt`` — number of committed transactions that accessed ``r``;
* ``a_cnt`` — number of transactions currently accessing ``r``.

Records are indexed by an AVL tree for O(log n) point/range lookups and an LRU
list bounds memory by evicting cold records, exactly as described in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.avl import AVLTree

RecordId = Tuple[str, Hashable]

#: Approximate per-entry memory footprint (four floats/counters plus key text);
#: used only for the Figure 6b memory-proxy accounting.
ENTRY_BYTES = 96


def _sortable(record_id: RecordId) -> Tuple[str, str]:
    """Canonical, totally-ordered representation of a record id for the AVL index."""
    table, key = record_id
    return (table, f"{type(key).__name__}:{key!r}")


@dataclass(slots=True)
class HotspotEntry:
    """Statistics of one hot record."""

    record_id: RecordId
    w_lat: float = 0.0
    t_cnt: int = 0
    c_cnt: int = 0
    a_cnt: int = 0

    @property
    def success_ratio(self) -> float:
        """Fraction of past accesses that committed (1.0 when unknown)."""
        if self.t_cnt == 0:
            return 1.0
        return self.c_cnt / self.t_cnt


class HotspotFootprint:
    """Bounded, LRU-evicted statistics over hot records."""

    def __init__(self, capacity: int = 4096, alpha: float = 0.7):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.capacity = capacity
        self.alpha = alpha
        self._entries: "OrderedDict[RecordId, HotspotEntry]" = OrderedDict()
        # The AVL index only serves range lookups, which no hot path issues;
        # it is rebuilt lazily so the (frequent) entry churn from LRU misses
        # does not pay tree maintenance on every access.
        self._index = AVLTree()
        self._index_dirty = False
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, record_id: RecordId) -> bool:
        return record_id in self._entries

    # ----------------------------------------------------------------- lookup
    def entry(self, record_id: RecordId) -> Optional[HotspotEntry]:
        """The entry for a record, or None if it is not tracked."""
        return self._entries.get(record_id)

    def get_or_create(self, record_id: RecordId) -> HotspotEntry:
        """The entry for a record, creating (and possibly evicting) as needed."""
        entry = self._entries.get(record_id)
        if entry is not None:
            self._entries.move_to_end(record_id)
            return entry
        entry = HotspotEntry(record_id=record_id)
        self._entries[record_id] = entry
        self._index_dirty = True
        self._evict_if_needed()
        return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.capacity:
            # Prefer the least-recently-used record that is not currently
            # being accessed; fall back to strict LRU if all are in use.
            victim_id = None
            for record_id, entry in self._entries.items():
                if entry.a_cnt == 0:
                    victim_id = record_id
                    break
            if victim_id is None:
                victim_id = next(iter(self._entries))
            self._entries.pop(victim_id)
            self._index_dirty = True
            self.evictions += 1

    def _rebuilt_index(self) -> AVLTree:
        """The AVL index over the current entries, rebuilding if stale."""
        if self._index_dirty:
            index = AVLTree()
            for record_id in self._entries:
                index.insert(_sortable(record_id), record_id)
            self._index = index
            self._index_dirty = False
        return self._index

    def range_lookup(self, table: str) -> List[RecordId]:
        """All tracked records of ``table`` (via the AVL index range query)."""
        low = (table, "")
        high = (table, "￿")
        return [record_id
                for _key, record_id in self._rebuilt_index().range_query(low, high)]

    # -------------------------------------------------------------- accounting
    def on_access_start(self, record_ids: Iterable[RecordId]) -> None:
        """A transaction starts accessing these records (t_cnt, a_cnt)."""
        for record_id in record_ids:
            entry = self.get_or_create(record_id)
            entry.t_cnt += 1
            entry.a_cnt += 1

    def on_access_end(self, record_ids: Iterable[RecordId], committed: bool) -> None:
        """A transaction finished accessing these records (a_cnt, c_cnt)."""
        for record_id in record_ids:
            entry = self._entries.get(record_id)
            if entry is None:
                continue
            entry.a_cnt = max(entry.a_cnt - 1, 0)
            if committed:
                entry.c_cnt += 1

    def update_latency(self, record_ids: Iterable[RecordId],
                       local_execution_ms: float) -> None:
        """Fold a subtransaction's observed local execution latency into w_lat.

        Implements Eq. (4): each record gets a share of ``LEL(Tij)``
        proportional to its current ``w_lat`` relative to the other records the
        subtransaction accessed (uniform shares while all weights are zero).
        """
        ids = list(record_ids)
        if not ids or local_execution_ms < 0:
            return
        entries = [self.get_or_create(record_id) for record_id in ids]
        total_weight = sum(entry.w_lat for entry in entries)
        for entry in entries:
            if total_weight > 0:
                share = entry.w_lat / total_weight
            else:
                share = 1.0 / len(entries)
            observed = local_execution_ms * share
            entry.w_lat = self.alpha * entry.w_lat + (1.0 - self.alpha) * observed

    # -------------------------------------------------------------- estimation
    def forecast_local_latency(self, record_ids: Iterable[RecordId]) -> float:
        """dLEL per Eq. (5): the sum of w_lat over the records to be accessed."""
        total = 0.0
        for record_id in record_ids:
            entry = self._entries.get(record_id)
            if entry is not None:
                total += entry.w_lat
        return total

    def success_probability(self, record_ids: Iterable[RecordId]) -> float:
        """Probability the transaction acquires all its locks, per Eq. (9).

        ``Pr(abort) = 1 - prod (c_cnt/t_cnt)^max(a_cnt - 1, 0)``; this method
        returns the product (the success probability).
        """
        probability = 1.0
        for record_id in record_ids:
            entry = self._entries.get(record_id)
            if entry is None or entry.t_cnt == 0:
                continue
            exponent = max(entry.a_cnt - 1, 0)
            if exponent == 0:
                continue
            probability *= entry.success_ratio ** exponent
        return probability

    def abort_probability(self, record_ids: Iterable[RecordId]) -> float:
        """Pr(Ti) of Eq. (9)."""
        return 1.0 - self.success_probability(record_ids)

    # --------------------------------------------------------------- reporting
    def memory_bytes(self) -> int:
        """Approximate memory used by the footprint (Figure 6b proxy)."""
        return len(self._entries) * ENTRY_BYTES

    def hottest(self, count: int = 10) -> List[HotspotEntry]:
        """The ``count`` records with the highest access counts."""
        return sorted(self._entries.values(), key=lambda e: e.t_cnt, reverse=True)[:count]

    def snapshot(self) -> Dict[RecordId, HotspotEntry]:
        """A shallow copy of the tracked entries (for inspection/tests)."""
        return dict(self._entries)
