"""ScalarDB-style middleware: concurrency control above the data sources.

ScalarDB (Yamada et al., VLDB 2023) provides ACID transactions across
heterogeneous stores without using their transactional capabilities: the
middleware reads records (with version metadata), buffers writes, and commits
with an optimistic two-step protocol — conditionally writing a *prepared*
version of every record (the write succeeds only if the version is unchanged)
and then persisting the coordinator's commit decision, after which record
states are finalised asynchronously.

Consequences the paper highlights and this model reproduces:

* all concurrency control work is concentrated in the middleware node, whose
  bounded executor (``coordinator_slots``) caps scalability;
* conflicts are discovered only at prepare time, so skewed workloads abort a
  lot — and every retry still pays the WAN round trips;
* there is no latency awareness at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.common import AbortReason, Operation, TxnOutcome
from repro import protocol
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.middleware import (
    MiddlewareBase,
    MiddlewareConfig,
    ParticipantHandle,
)
from repro.middleware.router import Partitioner
from repro.sim.environment import Environment
from repro.sim.network import Network
from repro.sim.resources import Resource
from repro.plugins import BuildContext, SystemPlugin, register_system

RecordId = Tuple[str, Hashable]


@dataclass
class ScalarDBConfig:
    """Knobs of the ScalarDB-style coordinator."""

    #: Maximum transactions processed concurrently by the middleware executor.
    #: ScalarDB performs all concurrency-control work on the middleware node,
    #: which is what bounds its scalability in the paper's Figure 5.
    coordinator_slots: int = 24
    #: Cost of persisting the coordinator's commit-state record.
    coordinator_state_write_ms: float = 1.0


class ScalarDBCoordinator(MiddlewareBase):
    """Optimistic middleware-level transaction manager over plain key-value stores."""

    system_name = "ScalarDB"

    def __init__(self, env: Environment, network: Network, config: MiddlewareConfig,
                 participants: Dict[str, ParticipantHandle], partitioner: Partitioner,
                 scalardb_config: Optional[ScalarDBConfig] = None):
        super().__init__(env, network, config, participants, partitioner)
        self.scalardb = scalardb_config or ScalarDBConfig()
        self._executor = Resource(env, capacity=self.scalardb.coordinator_slots)

    # ------------------------------------------------------------------- hooks
    def schedule_execution_delays(self, ctx: TransactionContext,
                                  records_by_participant: Dict[str, List[RecordId]]
                                  ) -> Dict[str, float]:
        """Dispatch postponement per participant; the base ScalarDB uses none."""
        return {name: 0.0 for name in records_by_participant}

    def admit(self, ctx: TransactionContext):
        """Admission hook (ScalarDB+ overrides); base admits everything."""
        return (True, None)
        yield  # pragma: no cover

    def on_transaction_settled(self, ctx: TransactionContext, committed: bool) -> None:
        """Hook after the outcome is known (ScalarDB+ updates its statistics)."""

    # ------------------------------------------------------------- transaction
    def _run_transaction(self, ctx: TransactionContext):
        yield self.env.timeout(self.config.analysis_cost_ms)
        self.stats.work_units += ctx.spec.statement_count

        slot = self._executor.request()
        yield slot
        try:
            admitted, admit_reason = yield from self.admit(ctx)
            if not admitted:
                self.on_transaction_settled(ctx, committed=False)
                return TxnOutcome.ABORTED, admit_reason or AbortReason.ADMISSION_BLOCKED
            outcome, reason = yield from self._run_occ(ctx)
        finally:
            self._executor.release(slot)
        self.on_transaction_settled(ctx, committed=outcome is TxnOutcome.COMMITTED)
        return outcome, reason

    def _run_occ(self, ctx: TransactionContext):
        ctx.enter_phase(TransactionPhase.EXECUTION, self.env.now)
        read_versions: Dict[RecordId, int] = {}
        write_set: Dict[RecordId, Operation] = {}

        for statements in ctx.spec.rounds:
            for stmt in statements:
                target = self.partitioner.locate(stmt.operation.table, stmt.operation.key)
                ctx.branch_xid(target)
            versions = yield from self._execute_round_ops(ctx, statements)
            read_versions.update(versions)
            for stmt in statements:
                if stmt.operation.is_write:
                    write_set[stmt.operation.record_id()] = stmt.operation

        # Prepare: conditional writes; any version conflict aborts the transaction.
        ctx.enter_phase(TransactionPhase.PREPARE, self.env.now)
        ok = yield from self._prepare_writes(ctx, write_set, read_versions)
        if not ok:
            return TxnOutcome.ABORTED, AbortReason.PREPARE_FAILED

        # Commit: persist the coordinator decision; record finalisation is async.
        yield self.env.timeout(self.scalardb.coordinator_state_write_ms)
        yield from self._flush_decision_log(ctx)
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        self._finalize_async(ctx, write_set)
        return TxnOutcome.COMMITTED, None

    # ----------------------------------------------------------------- phases
    def _execute_round_ops(self, ctx: TransactionContext, statements):
        """Execute one round's operations.

        ScalarDB's client library issues storage operations one at a time —
        every read (and the version-establishing read of every write) is its
        own WAN round trip — which is the main reason the paper finds it slow
        and unscalable in geo-distributed deployments.
        """
        versions: Dict[RecordId, int] = {}
        for stmt in statements:
            operation = stmt.operation
            participant = self.partitioner.locate(operation.table, operation.key)
            handle = self.participants[participant]
            reply = yield self.request_participant(handle, protocol.MSG_KV_GET, {
                "table": operation.table, "key": operation.key})
            version = reply.get("version", 0) if isinstance(reply, dict) else 0
            versions[operation.record_id()] = version if reply.get("found") else 0
        return versions

    def _read_batch(self, participant: str, operations: List[Operation],
                    delay_ms: float):
        """Read a batch of records on one participant in a single round trip.

        Not used by plain ScalarDB; ScalarDB+ dispatches per-participant
        batches with latency-aware postponement.
        """
        if delay_ms > 0:
            yield self.env.timeout(delay_ms)
        handle = self.participants[participant]
        requests = []
        for operation in operations:
            requests.append(self.request_participant(handle, protocol.MSG_KV_GET, {
                "table": operation.table, "key": operation.key}))
        condition = yield self.env.all_of(requests)
        versions: Dict[RecordId, int] = {}
        for operation, request in zip(operations, requests):
            reply = condition[request]
            version = reply.get("version", 0) if isinstance(reply, dict) else 0
            versions[operation.record_id()] = version if reply.get("found") else 0
        return versions

    def _prepare_writes(self, ctx: TransactionContext,
                        write_set: Dict[RecordId, Operation],
                        read_versions: Dict[RecordId, int]):
        if not write_set:
            return True
        requests = []
        for record_id, operation in write_set.items():
            participant = self.partitioner.locate(operation.table, operation.key)
            handle = self.participants[participant]
            requests.append(self.request_participant(
                handle, protocol.MSG_KV_PUT_IF_VERSION, {
                    "table": operation.table,
                    "key": operation.key,
                    "value": operation.value,
                    "expected_version": read_versions.get(record_id, 0),
                    "writer": ctx.txn_id,
                }))
        condition = yield self.env.all_of(requests)
        replies = [condition[r] for r in requests]
        return all(isinstance(r, dict) and r.get("status") == "ok" for r in replies)

    def _flush_decision_log(self, ctx: TransactionContext):
        yield self.env.timeout(self.config.log_flush_cost_ms)

    def _finalize_async(self, ctx: TransactionContext,
                        write_set: Dict[RecordId, Operation]) -> None:
        """Record-state finalisation happens off the client's critical path."""
        for operation in write_set.values():
            participant = self.partitioner.locate(operation.table, operation.key)
            handle = self.participants[participant]
            self.send_participant(handle, protocol.MSG_KV_PUT, {
                "table": operation.table, "key": operation.key,
                "value": operation.value, "writer": ctx.txn_id})


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> ScalarDBCoordinator:
    return ScalarDBCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                               ctx.participants, ctx.partitioner,
                               scalardb_config=ctx.scalardb_config)


register_system(SystemPlugin(
    name="scalardb",
    description="ScalarDB-style optimistic middleware transaction manager",
    builder=_build,
))
