"""The simulation environment: virtual clock and event queue.

The :class:`Environment` owns the simulated clock (milliseconds, float) and a
priority queue of scheduled events.  :meth:`Environment.run` pops events in
time order and executes their callbacks, which resume waiting processes.

Hot-path layout
---------------

The event queue holds ``(time, priority, sequence, entry)`` tuples where
``entry`` is either an :class:`~repro.sim.events.Event` or a lightweight
:class:`Timer` created by :meth:`Environment.call_at`.  The ``sequence``
counter is a plain int (bumped in-line by the event classes as well, see
:mod:`repro.sim.events`) so that same-time entries keep FIFO order without the
cost of an :func:`itertools.count` call per schedule.

Cancellation is lazy: :meth:`cancel` (and :meth:`Timer.cancel`) only mark the
entry dead; dead entries are dropped when they reach the top of the heap, and
the whole heap is compacted once dead entries outnumber live ones.  This keeps
the queue from growing with, e.g., lock-wait timers that were granted long
before their timeout (see :class:`repro.storage.lock_manager.LockManager`).
"""

from __future__ import annotations

from functools import partial
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import PENDING, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Scheduling priorities: interrupts preempt normal events at the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Compact the heap when at least this many cancelled entries are buried in it
#: (and they outnumber the live ones); small queues are never worth compacting.
_COMPACT_MIN_CANCELLED = 64


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Timer:
    """A lightweight scheduled callback (no :class:`Event` allocated).

    Produced by :meth:`Environment.call_at` for fire-and-forget work such as
    network message delivery and lock-wait timeouts.  ``cancel()`` defuses the
    timer in O(1); the heap entry is reclaimed lazily.
    """

    __slots__ = ("fn", "env")

    #: Class-level marker: the dispatch loop recognises a Timer (or a
    #: cancelled Event) by ``callbacks is None`` and then consults ``fn``.
    callbacks = None

    def __init__(self, fn: Callable[[], None], env: "Environment"):
        self.fn = fn
        self.env = env

    @property
    def cancelled(self) -> bool:
        """True once the timer has been cancelled (or has fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Defuse the timer: its callback will never run."""
        if self.fn is not None:
            self.fn = None
            self.env._note_cancelled()


class Environment:
    """A discrete-event simulation environment with a millisecond clock."""

    def __init__(self, initial_time: float = 0.0):
        #: Current simulated time in milliseconds (read-only for models).
        self.now: float = float(initial_time)
        #: The process currently being resumed, if any.
        self.active_process: Optional[Process] = None
        #: Number of queue entries dispatched so far (events + timers).
        self.events_processed: int = 0
        self._queue: List[Tuple[float, int, int, Any]] = []
        self._eid = 0
        self._cancelled = 0
        # C-level factory bindings shadow the methods below: ``timeout``/
        # ``event``/``process`` are called tens of thousands of times per
        # simulated second, and partial() skips one Python frame per call.
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Enqueue ``event`` to be processed ``delay`` ms from now."""
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self.now + delay, priority, eid, event))

    def call_at(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` ``delay`` ms from now; returns a cancellable handle.

        This is the cheap alternative to ``timeout(delay).callbacks.append``
        for internal bookkeeping that no process ever waits on.  Scheduling
        order is identical to an equivalently-timed :class:`Timeout`.
        """
        timer = Timer(fn, self)
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self.now + delay, PRIORITY_NORMAL, eid, timer))
        return timer

    def cancel(self, event: Event) -> None:
        """Cancel a triggered-but-unprocessed event: its callbacks never run.

        Only use this on events whose callbacks you own (e.g. an internal
        timer); waiters subscribed to the event would never be resumed.
        """
        if event.callbacks is not None:
            event.callbacks = None
            self._note_cancelled()

    def _note_cancelled(self) -> None:
        self._cancelled = cancelled = self._cancelled + 1
        if (cancelled >= _COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries from the heap and re-heapify the survivors.

        The queue list is mutated IN PLACE: the dispatch loop in :meth:`run`
        (and event-triggering code in :mod:`repro.sim.events`) holds direct
        references to the list object, so rebinding ``self._queue`` here would
        silently split the simulation across two queues.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue
                    if entry[3].callbacks is not None
                    or entry[3].fn is not None]
        heapify(queue)
        self._cancelled = 0

    def peek(self) -> float:
        """Time of the next live scheduled entry, or ``inf`` if none."""
        queue = self._queue
        while queue:
            head = queue[0]
            entry = head[3]
            if entry.callbacks is not None or entry.fn is not None:
                return head[0]
            heappop(queue)
            if self._cancelled:
                self._cancelled -= 1
        return float("inf")

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "",
                daemon: bool = False) -> Process:
        """Start a new process driving ``generator``.

        ``daemon=True`` marks a fire-and-forget process (e.g. a per-message
        server handler): if it finishes successfully with no one subscribed,
        its completion event is not scheduled at all.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -------------------------------------------------------------- execution
    def step(self) -> None:
        """Process the next scheduled entry (skipping cancelled ones)."""
        queue = self._queue
        while True:
            try:
                when, _priority, _eid, event = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            callbacks = event.callbacks
            if callbacks is not None:
                break
            fn = event.fn
            if fn is not None:
                # Lightweight timer: fire and return.
                self.now = when
                self.events_processed += 1
                event.fn = None
                fn()
                return
            if self._cancelled:
                self._cancelled -= 1
        self.now = when
        self.events_processed += 1
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was prepared to handle it: surface
            # the error instead of silently dropping it.
            raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an
        :class:`Event` (run until it triggers; its value is returned), or
        ``None`` (run until no events remain).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None

        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past (now={self.now})")

        # The dispatch loop below is `peek` + `step` inlined: it runs once per
        # simulated event, so the per-iteration call overhead matters.
        queue = self._queue
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                value = stop_event._value
                if value is PENDING:
                    raise RuntimeError(
                        "until event will never fire (it was cancelled)")
                if stop_event._ok:
                    return value
                raise value

            while queue:
                head = queue[0]
                entry = head[3]
                if entry.callbacks is not None or entry.fn is not None:
                    break
                heappop(queue)
                if self._cancelled:
                    self._cancelled -= 1
            else:
                if stop_event is not None and stop_event._value is PENDING:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited event fired")
                if stop_time is not None:
                    self.now = stop_time
                return None

            when = head[0]
            if stop_time is not None and when > stop_time:
                self.now = stop_time
                return None

            heappop(queue)
            event = head[3]
            self.now = when
            self.events_processed += 1
            callbacks = event.callbacks
            if callbacks is not None:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            else:
                fn = event.fn
                event.fn = None
                fn()
