"""Parallel execution of scenario sweeps.

Every :class:`~repro.bench.scenarios.SweepPoint` is an independent simulation
(its config is a private deep copy, the simulator is fully seeded), so a sweep
is embarrassingly parallel.  :class:`SweepRunner` expands a sweep and fans the
points out over a :class:`concurrent.futures.ProcessPoolExecutor`; workers
return the slim :class:`~repro.bench.runner.ExperimentSummary` (never the live
collector or cluster), and results are re-ordered by point index so the output
is byte-identical no matter which worker finished first.

``max_workers=1`` (the default, unless ``REPRO_BENCH_WORKERS`` says otherwise)
runs every point in-process — that is what the unit tests and any caller that
wants strict single-core determinism use; the parallel path produces the same
results because each point is seeded from its own config, not from shared
state.  If the platform cannot spawn worker processes (some sandboxes forbid
it) the runner logs a warning and falls back to the serial path instead of
failing the sweep.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.bench.cache import SweepCache
from repro.bench.runner import ExperimentSummary, run_experiment
from repro.bench.scenarios import SweepPoint, SweepSpec

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_BENCH_WORKERS"


def resolve_worker_count(max_workers: Optional[int] = None) -> int:
    """Resolve the worker count: explicit value, else env var, else serial."""
    if max_workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            max_workers = int(raw)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV_VAR} must be an integer "
                             f"(got {raw!r})") from None
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1 (got {max_workers})")
    return max_workers


@dataclass
class PointResult:
    """One executed sweep point: its axis values and the result summary."""

    index: int
    params: Dict[str, Any]
    summary: ExperimentSummary
    wall_clock_s: float


@dataclass
class SweepResult:
    """All point results of one sweep, ordered by point index."""

    sweep_name: str
    results: List[PointResult]
    wall_clock_s: float
    workers: int = 1
    #: Sweep-cache accounting of this run (all zero without a cache): points
    #: served from cache, points actually simulated, and stale/corrupt
    #: entries that were discarded.  ``hits + misses == len(results)`` when a
    #: resume consulted the cache.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0

    def __post_init__(self) -> None:
        self.results = sorted(self.results, key=lambda r: r.index)

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> PointResult:
        return self.results[index]

    def summaries(self) -> List[ExperimentSummary]:
        """The per-point summaries, in point order."""
        return [result.summary for result in self.results]

    def select(self, **params: Any) -> List[PointResult]:
        """All point results whose params match every given key/value."""
        return [result for result in self.results
                if all(result.params.get(k) == v for k, v in params.items())]

    def get(self, **params: Any) -> ExperimentSummary:
        """The unique summary matching the given params (raises otherwise)."""
        matches = self.select(**params)
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} points match {params!r} "
                           f"in sweep {self.sweep_name!r}")
        return matches[0].summary


def run_sweep_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point and summarise it (the worker entry point).

    Module-level on purpose: worker processes import it by qualified name, and
    both the argument (a :class:`SweepPoint`) and the return value (a
    :class:`PointResult`) must stay picklable.
    """
    started = time.perf_counter()
    summary = run_experiment(point.config).summary()
    return PointResult(index=point.index, params=dict(point.params),
                       summary=summary,
                       wall_clock_s=time.perf_counter() - started)


class SweepRunner:
    """Expands a sweep into points and executes them, serially or in parallel.

    With a :class:`~repro.bench.cache.SweepCache` attached, every executed
    point is persisted as soon as its result arrives (so a killed sweep keeps
    everything it finished), and ``resume=True`` additionally consults the
    cache *before* dispatching — only the missing points are simulated, and
    the assembled :class:`SweepResult` is byte-identical to an uncached run
    because cached summaries are the pickled originals.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[SweepCache] = None, resume: bool = False):
        self.max_workers = resolve_worker_count(max_workers)
        self.cache = cache
        self.resume = resume and cache is not None

    def run(self, sweep: SweepSpec) -> SweepResult:
        """Run every point of ``sweep`` and return the ordered results.

        ``SweepResult.workers`` records the worker count that actually ran the
        points (1 when the pool was unavailable and the serial fallback ran).
        """
        points = sweep.points()
        started = time.perf_counter()
        cached: List[PointResult] = []
        pending = points
        if self.resume:
            assert self.cache is not None
            pending = []
            for point in points:
                hit = self.cache.lookup(sweep.name, point)
                if hit is not None:
                    cached.append(hit)
                else:
                    pending.append(point)
        if self.max_workers <= 1 or len(pending) <= 1:
            # Cache-less runs keep the exact pre-cache call shape: no wrapper
            # frame in the hot path (the perf profiles pin the kernel frames
            # in their top rows, and an extra near-total-cumtime frame would
            # displace one).
            if self.cache is None:
                computed = [run_sweep_point(p) for p in pending]
            else:
                computed = [self._run_and_store(sweep.name, p)
                            for p in pending]
            used_workers = 1
        else:
            computed, used_workers = self._run_parallel(sweep.name, pending)
        cache_stats = self.cache.stats() if self.cache is not None else {}
        return SweepResult(sweep_name=sweep.name, results=cached + computed,
                           wall_clock_s=time.perf_counter() - started,
                           workers=used_workers,
                           cache_hits=cache_stats.get("hits", 0),
                           cache_misses=cache_stats.get("misses", 0),
                           cache_invalidations=cache_stats.get(
                               "invalidations", 0))

    def _run_and_store(self, sweep_name: str, point: SweepPoint) -> PointResult:
        result = run_sweep_point(point)
        if self.cache is not None:
            # Points not routed through lookup() (cache attached without
            # --resume) still count as misses: they were simulated.
            if not self.resume:
                self.cache.misses += 1
            self.cache.store(sweep_name, point, result)
        return result

    def _run_parallel(self, sweep_name: str, points: List[SweepPoint]):
        workers = min(self.max_workers, len(points))
        completed: List[PointResult] = []
        by_index = {point.index: point for point in points}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(run_sweep_point, point) for point in points]
                for future in as_completed(futures):
                    result = future.result()
                    if self.cache is not None:
                        # Persist as results arrive, not at sweep end: a
                        # killed run keeps every finished point.
                        if not self.resume:
                            self.cache.misses += 1
                        self.cache.store(sweep_name, by_index[result.index],
                                         result)
                    completed.append(result)
            return completed, workers
        except (BrokenProcessPool, OSError, PermissionError) as exc:
            if completed:
                # The pool worked and then died mid-sweep (e.g. a worker was
                # OOM-killed): that is a real failure — surface it instead of
                # silently re-running everything serially.
                raise
            warnings.warn(f"process pool unavailable ({exc!r}); "
                          f"falling back to serial execution", RuntimeWarning)
            return [self._run_and_store(sweep_name, point)
                    for point in points], 1


def run_scenario_sweep(sweep: SweepSpec,
                       max_workers: Optional[int] = None) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(max_workers).run(sweep)``."""
    return SweepRunner(max_workers=max_workers).run(sweep)
