"""Percentile and CDF helpers for latency analysis (Figure 8)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def _interpolate(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    low, high = ordered[lower], ordered[upper]
    # Clamp: the interpolation can land one ulp outside [low, high] (e.g.
    # v*(1-w) + v*w < v for tiny w), which would report a quantile outside
    # the sample range.
    return min(max(low * (1.0 - weight) + high * weight, low), high)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    ``fraction`` is in [0, 1]; an empty input raises ``ValueError`` so callers
    never silently report a latency of zero.
    """
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    return _interpolate(sorted(values), fraction)


class LatencyDistribution:
    """A collection of latency samples with percentile / CDF accessors.

    The sorted view is computed once and cached; ``add`` invalidates it, so
    aggregation loops that interleave many percentile reads (``p50``/``p99``/
    ``p999``/``cdf``) pay for a single sort instead of one per call.
    """

    __slots__ = ("_samples", "_sorted", "_view", "_total")

    def __init__(self, samples: Sequence[float] = ()):
        self._samples: List[float] = list(samples)
        self._sorted: List[float] = None
        self._view: Tuple[float, ...] = None
        self._total: float = sum(self._samples)

    def add(self, value: float) -> None:
        """Record one latency sample (milliseconds)."""
        self._samples.append(value)
        self._total += value
        self._sorted = None
        self._view = None

    def __len__(self) -> int:
        return len(self._samples)

    def _ordered(self) -> List[float]:
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        return ordered

    @property
    def samples(self) -> Tuple[float, ...]:
        """All recorded samples, in insertion order (read-only view)."""
        view = self._view
        if view is None:
            view = self._view = tuple(self._samples)
        return view

    @property
    def mean(self) -> float:
        """Average latency; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)

    def p(self, fraction: float) -> float:
        """Latency at the given quantile (e.g. ``p(0.99)``)."""
        if not self._samples:
            raise ValueError("cannot take a percentile of no samples")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        return _interpolate(self._ordered(), fraction)

    @property
    def p50(self) -> float:
        return self.p(0.50)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    @property
    def p999(self) -> float:
        return self.p(0.999)

    def summary_stats(self) -> dict:
        """Count/mean/percentiles in one pass over a single sorted view."""
        if not self._samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p99": 0.0, "p999": 0.0}
        ordered = self._ordered()
        return {
            "count": len(ordered),
            "mean": self._total / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": _interpolate(ordered, 0.50),
            "p99": _interpolate(ordered, 0.99),
            "p999": _interpolate(ordered, 0.999),
        }

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return (latency, cumulative_fraction) pairs for CDF plots.

        ``points`` evenly spaced quantiles are reported, which is what the
        Figure 8 reproduction prints.
        """
        if not self._samples:
            return []
        ordered = self._ordered()
        count = len(ordered)
        out: List[Tuple[float, float]] = []
        for i in range(1, points + 1):
            fraction = i / points
            index = min(int(round(fraction * count)) - 1, count - 1)
            index = max(index, 0)
            out.append((ordered[index], fraction))
        return out
