"""Shared golden-pin configurations and snapshot helpers.

The byte-identical golden pins and the same-seed determinism checks live in
``tests/``, but the *configurations* they pin are defined here so that the
same runs can be reproduced outside an in-process pytest session — in
particular under the **other** engine: the simulation engine (pure vs
mypyc-compiled kernel) is selected once per process at import time, so
checking "the compiled engine reproduces the pure pins byte for byte" requires
a fresh interpreter with ``REPRO_ENGINE`` set.  The module doubles as that
subprocess entry point::

    REPRO_ENGINE=compiled python -m repro.bench.goldens snapshot contended_geotp
    REPRO_ENGINE=compiled python -m repro.bench.goldens determinism
    REPRO_ENGINE=compiled python -m repro.bench.goldens equivalence \
        --reference tests/bench/data/equivalence_reference.json

Every subcommand prints a single JSON document on stdout; the engine that
produced it is always included so a harness can assert it really ran where it
intended to.  All snapshot values are plain JSON scalars (floats survive the
dump/load round trip exactly), so byte-identity of two engines' snapshots can
be asserted across the process boundary.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any, Dict, List, Optional

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.sim.engine import active_engine
from repro.workloads.ycsb import YCSBConfig


def golden_snapshot(config: ExperimentConfig) -> Dict[str, Any]:
    """Run one experiment and reduce it to the golden-pin summary dict.

    ``latency_sha256`` digests every latency sample, so two snapshots are
    equal only if the runs were bit-identical.
    """
    result = run_experiment(config)
    latency = result.latency
    samples = list(latency.samples)
    return {
        "throughput_tps": result.throughput_tps,
        "committed": result.committed,
        "aborted": result.aborted,
        "average_latency_ms": result.average_latency_ms,
        "p50": latency.p50 if len(latency) else None,
        "p99": latency.p99 if len(latency) else None,
        "abort_rate": result.abort_rate,
        "abort_reasons": result.collector.abort_reasons(),
        "n_samples": len(samples),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
    }


# ------------------------------------------------------- pinned configurations
def contended_config(system: str) -> ExperimentConfig:
    """The high-contention pin: lock waits, timeouts and admission aborts."""
    return ExperimentConfig(
        system=system, terminals=24, duration_ms=9_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=1.1, distributed_ratio=0.5,
                        records_per_node=100, preload_rows_per_node=100),
        seed=7)


def scale_config() -> ExperimentConfig:
    """The medium-scale pin: heap compaction and lock-timer churn territory."""
    return ExperimentConfig(
        system="geotp", terminals=32, duration_ms=10_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=0.9, distributed_ratio=0.2))


def determinism_config() -> ExperimentConfig:
    """The same-seed byte-determinism check (tests/sim/test_fast_paths.py)."""
    return ExperimentConfig(
        system="geotp", terminals=8, duration_ms=3_000.0, warmup_ms=500.0,
        ycsb=YCSBConfig(skew=1.0, distributed_ratio=0.5,
                        records_per_node=100, preload_rows_per_node=100),
        seed=13)


def fleet_failover_config() -> ExperimentConfig:
    """The fleet determinism pin: three middlewares, one killed mid-run.

    Derived from the registered ``fleet_failover`` scenario at smoke scale so
    the determinism check exercises the whole failover machinery — routing,
    refusal-driven detection, the health probe, retry jitter and recovery —
    under both engines.
    """
    from repro.bench.scenarios import get_scenario

    sweep = get_scenario("fleet_failover").sweep(
        axes={"system": ["geotp"]},
        duration_ms=4_000.0, warmup_ms=800.0, terminals=6)
    return sweep.points()[0].config


def load_sweep_config() -> ExperimentConfig:
    """The open-system determinism pin: one saturated ``load_sweep`` point.

    Derived from the registered scenario at reduced scale, past the knee
    (the arrival generator, the bounded pool's shed/reuse churn and the
    streaming collector's reservoirs all must replay bit for bit).
    """
    from repro.bench.scenarios import get_scenario

    sweep = get_scenario("load_sweep").sweep(
        axes={"system": ["geotp"], "rate_tps": [320.0]},
        duration_ms=5_000.0, warmup_ms=1_000.0,
        ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200,
        arrival__max_clients=128)
    return sweep.points()[0].config


def chaos_config() -> ExperimentConfig:
    """The chaos determinism pin: one generated composed-fault point.

    Derived from a generated ``chaos_*`` scenario at smoke scale — a dual
    (outage-inside-partition) plan under drifting DynamicLatency schedules
    and Poisson arrivals, so plan execution, parked-delivery re-interception,
    recovery and the invariant evaluation all must replay bit for bit.
    """
    from repro.bench.scenarios import get_scenario

    sweep = get_scenario("chaos_dual_drift_poisson_ycsb").sweep(
        axes={"system": ["geotp"]},
        duration_ms=4_000.0, warmup_ms=800.0, terminals=4,
        ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200)
    return sweep.points()[0].config


#: Named same-seed determinism runs (``determinism [name]``).
DETERMINISM_CONFIGS = {
    "default": determinism_config,
    "fleet_failover": fleet_failover_config,
    "load_sweep": load_sweep_config,
    "chaos": chaos_config,
}


def smoke_snapshots() -> Dict[str, Dict[str, Any]]:
    """Per-system snapshots of the registered ``smoke`` scenario."""
    from repro.bench.scenarios import get_scenario

    return {point.params["system"]: golden_snapshot(point.config)
            for point in get_scenario("smoke").sweep().points()}


#: Named golden runs; each produces one snapshot dict.
GOLDEN_RUNS = {
    "contended_geotp": lambda: golden_snapshot(contended_config("geotp")),
    "contended_ssp": lambda: golden_snapshot(contended_config("ssp")),
    "scale": lambda: golden_snapshot(scale_config()),
}


def run_named(name: str) -> Dict[str, Any]:
    """Evaluate one named golden run (``smoke`` yields a per-system dict)."""
    if name == "smoke":
        return smoke_snapshots()
    try:
        runner = GOLDEN_RUNS[name]
    except KeyError:
        raise KeyError(f"unknown golden run {name!r}; choose one of "
                       f"{['smoke', *GOLDEN_RUNS]}") from None
    return runner()


# ------------------------------------------------- command document builders
def snapshot_document(name: str) -> Dict[str, Any]:
    """The ``snapshot`` subcommand's JSON document, built in-process."""
    return {"engine": active_engine(), "name": name, "snapshot": run_named(name)}


def determinism_snapshot(config: ExperimentConfig) -> Dict[str, Any]:
    """One comparable same-seed run: the equivalence fields plus the fleet report.

    Field-compatible with :func:`repro.bench.equivalence.snapshot`; fleet runs
    additionally carry the full fleet summary (routing counters, health
    transitions, down episodes) so two runs only compare equal when the
    failover machinery behaved bit-identically too.
    """
    result = run_experiment(config)
    samples = list(result.latency.samples)
    document = {
        "committed": result.committed,
        "aborted": result.aborted,
        "throughput_tps": result.throughput_tps,
        "abort_rate": result.abort_rate,
        "abort_reasons": result.collector.abort_reasons(),
        "n_samples": len(samples),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
    }
    if result.fleet is not None:
        document["fleet"] = result.fleet
    return document


def determinism_document(name: str = "default") -> Dict[str, Any]:
    """The ``determinism`` subcommand's JSON document, built in-process."""
    try:
        config_fn = DETERMINISM_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown determinism run {name!r}; choose one of "
                       f"{sorted(DETERMINISM_CONFIGS)}") from None
    first = determinism_snapshot(config_fn())
    second = determinism_snapshot(config_fn())
    return {"engine": active_engine(), "name": name,
            "identical": first == second, "first": first, "second": second}


def resume_sweep():
    """A 2×2 mini ``load_sweep`` (two systems × two rates) at smoke scale.

    Small enough to run twice in a test, but a real open-system sweep: the
    resume check below uses it to prove an interrupted-then-resumed sweep is
    byte-identical to an uninterrupted one.
    """
    from repro.bench.scenarios import get_scenario

    return get_scenario("load_sweep").sweep(
        axes={"system": ["geotp", "ssp"], "rate_tps": [160.0, 320.0]},
        duration_ms=1_500.0, warmup_ms=300.0,
        ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200,
        arrival__max_clients=64)


def _sweep_payload(result) -> List[Dict[str, Any]]:
    """The deterministic comparison payload of a sweep result.

    Per-point params plus the default (environment-free) summary dict — the
    fields that must be byte-identical whether a point was simulated now or
    restored from the cache; wall-clock and RSS legitimately differ.
    """
    return [{"params": point.params, **point.summary.to_dict()}
            for point in result]


def resume_document(cache_dir: Optional[str] = None,
                    interrupt_after: int = 2) -> Dict[str, Any]:
    """The ``resume`` subcommand's JSON document, built in-process.

    Simulates the kill-and-resume workflow end to end: run the mini sweep
    uncached, then execute only its first ``interrupt_after`` points into a
    cache (exactly what a killed ``--cache-dir`` run leaves behind), then run
    the full sweep with ``resume=True`` against that cache.  The document
    reports whether the resumed result is byte-identical to the fresh one and
    how many points were served from cache vs simulated — the resumed run
    must execute exactly ``points - interrupt_after`` simulations.
    """
    import tempfile

    from repro.bench.cache import SweepCache
    from repro.bench.parallel import SweepRunner, run_sweep_point

    fresh = SweepRunner().run(resume_sweep())
    with tempfile.TemporaryDirectory() as scratch:
        directory = cache_dir or scratch
        interrupted = SweepCache(directory)
        sweep = resume_sweep()
        for point in sweep.points()[:interrupt_after]:
            interrupted.store(sweep.name, point, run_sweep_point(point))
        cache = SweepCache(directory)
        resumed = SweepRunner(cache=cache, resume=True).run(resume_sweep())
    fresh_payload = json.dumps(_sweep_payload(fresh), sort_keys=True)
    resumed_payload = json.dumps(_sweep_payload(resumed), sort_keys=True)
    return {
        "engine": active_engine(),
        "name": "load_sweep_mini",
        "points": len(fresh),
        "interrupt_after": interrupt_after,
        "hits": cache.hits,
        "misses": cache.misses,
        "invalidations": cache.invalidations,
        "identical": fresh_payload == resumed_payload,
        "fresh_sha256": hashlib.sha256(fresh_payload.encode()).hexdigest(),
        "resumed_sha256": hashlib.sha256(resumed_payload.encode()).hexdigest(),
    }


def equivalence_document(reference_path: str,
                         case_names: Optional[List[str]] = None
                         ) -> Dict[str, Any]:
    """The ``equivalence`` subcommand's JSON document, built in-process."""
    from repro.bench.equivalence import CASES, load_reference, run_equivalence

    cases = CASES
    if case_names:
        by_name = {case.name: case for case in CASES}
        unknown = [name for name in case_names if name not in by_name]
        if unknown:
            raise KeyError(f"unknown equivalence case(s) {unknown}; "
                           f"registered: {sorted(by_name)}")
        cases = tuple(by_name[name] for name in case_names)
    report = run_equivalence(load_reference(reference_path), cases)
    return {"engine": active_engine(), "ok": report.ok,
            "cases": [case.name for case in cases],
            "violations": report.violations}


# -------------------------------------------------------------- CLI plumbing
def _cmd_snapshot(args: argparse.Namespace) -> Dict[str, Any]:
    return snapshot_document(args.name)


def _cmd_determinism(args: argparse.Namespace) -> Dict[str, Any]:
    return determinism_document(args.name)


def _cmd_equivalence(args: argparse.Namespace) -> Dict[str, Any]:
    return equivalence_document(args.reference, args.cases)


def _cmd_resume(args: argparse.Namespace) -> Dict[str, Any]:
    return resume_document(args.cache_dir, args.interrupt_after)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.goldens",
        description="Reproduce the golden-pin runs in this process's engine "
                    "(select it with REPRO_ENGINE) and print JSON.")
    commands = parser.add_subparsers(dest="command", required=True)

    snap = commands.add_parser("snapshot", help="evaluate one named golden run")
    snap.add_argument("name", choices=["smoke", *GOLDEN_RUNS])
    snap.set_defaults(fn=_cmd_snapshot)

    determinism = commands.add_parser(
        "determinism", help="run a same-seed config twice and compare")
    determinism.add_argument("name", nargs="?", default="default",
                             choices=sorted(DETERMINISM_CONFIGS))
    determinism.set_defaults(fn=_cmd_determinism)

    equivalence = commands.add_parser(
        "equivalence", help="run the statistical-equivalence checks")
    equivalence.add_argument("--reference", required=True,
                             help="reference JSON captured on the "
                                  "ordering-strict engine")
    equivalence.add_argument("--cases", nargs="+", default=None,
                             help="subset of registered case names "
                                  "(default: all)")
    equivalence.set_defaults(fn=_cmd_equivalence)

    resume = commands.add_parser(
        "resume", help="prove interrupted+resumed sweep == fresh sweep "
                       "(byte-identical) under this process's engine")
    resume.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a temp dir)")
    resume.add_argument("--interrupt-after", type=int, default=2,
                        help="points the 'killed' run completed (default 2)")
    resume.set_defaults(fn=_cmd_resume)

    args = parser.parse_args(argv)
    try:
        document = args.fn(args)
    except (KeyError, OSError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(json.dumps(document, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
