"""One function per paper table/figure, routed through the scenario registry.

Every function looks up its registered scenario (``repro.bench.scenarios``),
derives a sweep at the requested scale, executes it through
:class:`~repro.bench.parallel.SweepRunner` and reshapes the point results into
the plain dict of rows/series the paper plots; ``report=True`` additionally
prints them as text tables.  All functions accept ``workers`` to fan the sweep
points out over a process pool (default: serial, or the
``REPRO_BENCH_WORKERS`` environment variable) — results are independent of the
worker count because every point is independently seeded.

Benchmarks call these functions with reduced scale (shorter runs, fewer
terminals) so the whole suite finishes in minutes; EXPERIMENTS.md records a
full-scale run.

The experiment ids match DESIGN.md: fig1b, fig5, fig6, fig7, fig8, fig9,
fig10, fig11a, fig11b, fig12, fig13, fig14, fig15 and table1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.parallel import SweepRunner
from repro.bench.report import print_table
from repro.bench.scenarios import (
    ABLATION_BUILDERS,
    DIST_RATIO_SYSTEMS,
    FLEET_SYSTEMS,
    HETEROGENEOUS_SCENARIOS,
    OVERALL_SYSTEMS,
    QUICK_SCALE,
    get_scenario,
)
from repro.workloads.ycsb import CONTENTION_SKEW  # noqa: F401  (re-export)

#: Default scale used by the experiment functions; EXPERIMENTS.md uses larger
#: values and ``benchmarks/conftest.py`` derives the bench scale from the same
#: registry module.
QUICK_DURATION_MS = QUICK_SCALE.duration_ms
QUICK_WARMUP_MS = QUICK_SCALE.warmup_ms
QUICK_TERMINALS = QUICK_SCALE.terminals

#: The Figure 12 variant names (kept for backwards compatibility).
ABLATION_VARIANTS = tuple(ABLATION_BUILDERS)


def _sweep_results(scenario_name: str, axes: Optional[Dict] = None,
                   fixed: Optional[Dict] = None, workers: Optional[int] = None,
                   **overrides):
    """Expand and execute one registered scenario at the requested scale."""
    sweep = get_scenario(scenario_name).sweep(axes=axes, fixed=fixed, **overrides)
    return SweepRunner(max_workers=workers).run(sweep)


# --------------------------------------------------------------------- Fig. 1b
def fig1_motivation(ds2_latencies_ms: Sequence[float] = (20, 40, 60, 80, 100),
                    duration_ms: float = QUICK_DURATION_MS,
                    terminals: int = 8, report: bool = False,
                    workers: Optional[int] = None) -> Dict:
    """Average latency of *centralized* transactions vs. the DM-DS2 latency.

    Reproduces the motivating experiment: two data sources (DS1 at 10 ms),
    80 % centralized transactions on DS1, 20 % distributed, under low and
    medium contention.
    """
    outcome = _sweep_results(
        "fig1b", axes={"ds2_latency_ms": ds2_latencies_ms},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    labels = {"low": "LC", "medium": "MC"}
    rows = []
    series: Dict[str, List] = {"LC": [], "MC": []}
    for point in outcome:
        label = labels[point.params["contention"]]
        ds2_latency = point.params["ds2_latency_ms"]
        centralized = point.summary.latency_for(distributed=False)
        latency = centralized.mean if len(centralized) else 0.0
        series[label].append((ds2_latency, latency))
        rows.append((label, ds2_latency, round(latency, 1)))
    if report:
        print_table("Fig 1b — centralized txn latency vs DM-DS2 latency (SSP)",
                    ["contention", "ds2 RTT (ms)", "avg centralized latency (ms)"], rows)
    return {"series": series, "rows": rows}


# --------------------------------------------------------------------- Fig. 5
def fig5_overall(workload: str = "ycsb",
                 terminal_counts: Sequence[int] = (16, 48, 96),
                 systems: Sequence[str] = OVERALL_SYSTEMS,
                 duration_ms: float = QUICK_DURATION_MS,
                 report: bool = False,
                 workers: Optional[int] = None) -> Dict:
    """Throughput vs. number of client terminals for the five systems (Fig. 5a/5b)."""
    outcome = _sweep_results(
        "fig5_overall", axes={"system": systems, "terminals": terminal_counts},
        workload=workload, duration_ms=duration_ms, workers=workers)
    series: Dict[str, List] = {system: [] for system in systems}
    for point in outcome:
        series[point.params["system"]].append(
            (point.params["terminals"], round(point.summary.throughput_tps, 1)))
    if report:
        rows = [(system, *[tps for _t, tps in points])
                for system, points in series.items()]
        print_table(f"Fig 5 — throughput vs terminals ({workload})",
                    ["system"] + [f"{t} terms" for t in terminal_counts], rows)
    return {"series": series, "terminal_counts": list(terminal_counts)}


# --------------------------------------------------------------------- Fig. 6
def fig6_resources_breakdown(duration_ms: float = QUICK_DURATION_MS,
                             terminals: int = QUICK_TERMINALS,
                             report: bool = False,
                             workers: Optional[int] = None) -> Dict:
    """Resource proxies and per-phase latency breakdown, SSP vs GeoTP (Fig. 6)."""
    outcome = _sweep_results("fig6_breakdown", duration_ms=duration_ms,
                             terminals=terminals, workers=workers)
    out = {}
    for point in outcome:
        summary = point.summary
        out[point.params["system"]] = {
            "throughput_tps": summary.throughput_tps,
            "avg_latency_ms": summary.average_latency_ms,
            "work_per_commit": summary.resources.work_per_commit,
            "wan_messages_per_commit": summary.resources.wan_messages_per_commit,
            "metadata_bytes": summary.resources.metadata_bytes,
            "breakdown": summary.breakdown,
        }
    if report:
        rows = [(system,
                 round(data["throughput_tps"], 1),
                 round(data["avg_latency_ms"], 1),
                 round(data["work_per_commit"], 2),
                 round(data["wan_messages_per_commit"], 2),
                 data["metadata_bytes"])
                for system, data in out.items()]
        print_table("Fig 6a/6b — resource proxies",
                    ["system", "tput", "avg lat", "work/commit", "wan msgs/commit",
                     "metadata bytes"], rows)
        for system, data in out.items():
            phase_rows = [(phase, round(ms, 2)) for phase, ms in data["breakdown"].items()]
            print_table(f"Fig 6c — phase breakdown ({system})", ["phase", "ms"], phase_rows)
    return out


# --------------------------------------------------------------------- Fig. 7
def fig7_distributed_ratio_ycsb(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                                contentions: Sequence[str] = ("low", "medium", "high"),
                                systems: Sequence[str] = DIST_RATIO_SYSTEMS,
                                duration_ms: float = QUICK_DURATION_MS,
                                terminals: int = QUICK_TERMINALS,
                                report: bool = False,
                                workers: Optional[int] = None) -> Dict:
    """Throughput and average latency vs. distributed-transaction ratio (Fig. 7)."""
    outcome = _sweep_results(
        "fig7_dist_ratio_ycsb",
        axes={"contention": contentions, "system": systems, "ratio": ratios},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, Dict[str, List]] = {c: {s: [] for s in systems} for c in contentions}
    for point in outcome:
        out[point.params["contention"]][point.params["system"]].append(
            (point.params["ratio"], round(point.summary.throughput_tps, 1),
             round(point.summary.average_latency_ms, 1)))
    if report:
        for contention in contentions:
            rows = []
            for system in systems:
                for ratio, tput, latency in out[contention][system]:
                    rows.append((system, ratio, tput, latency))
            print_table(f"Fig 7 — YCSB {contention} contention",
                        ["system", "dist ratio", "tput (tps)", "avg latency (ms)"], rows)
    return out


# --------------------------------------------------------------------- Fig. 8
def fig8_latency_cdf(contentions: Sequence[str] = ("low", "medium", "high"),
                     systems: Sequence[str] = ("ssp", "ssp_local", "geotp"),
                     distributed_ratio: float = 0.6,
                     duration_ms: float = QUICK_DURATION_MS,
                     terminals: int = QUICK_TERMINALS,
                     cdf_points: int = 20, report: bool = False,
                     workers: Optional[int] = None) -> Dict:
    """Latency CDFs with 60 % distributed transactions (Fig. 8)."""
    outcome = _sweep_results(
        "fig8_latency_cdf", axes={"contention": contentions, "system": systems},
        fixed={"ratio": distributed_ratio},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, Dict[str, object]] = {c: {} for c in contentions}
    for point in outcome:
        distribution = point.summary.latency
        out[point.params["contention"]][point.params["system"]] = {
            "cdf": distribution.cdf(points=cdf_points),
            "p99": distribution.p99 if len(distribution) else 0.0,
            "mean": distribution.mean,
        }
    if report:
        for contention in contentions:
            rows = [(system, round(data["mean"], 1), round(data["p99"], 1))
                    for system, data in out[contention].items()]
            print_table(f"Fig 8 — latency ({contention} contention, 60% distributed)",
                        ["system", "mean (ms)", "p99 (ms)"], rows)
    return out


# --------------------------------------------------------------------- Fig. 9
def fig9_distributed_ratio_tpcc(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                                txn_types: Sequence[str] = ("payment", "new_order"),
                                systems: Sequence[str] = DIST_RATIO_SYSTEMS,
                                duration_ms: float = QUICK_DURATION_MS,
                                terminals: int = QUICK_TERMINALS,
                                report: bool = False,
                                workers: Optional[int] = None) -> Dict:
    """TPC-C Payment / NewOrder throughput and latency vs. distributed ratio (Fig. 9)."""
    outcome = _sweep_results(
        "fig9_dist_ratio_tpcc",
        axes={"txn_type": txn_types, "system": systems, "ratio": ratios},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, Dict[str, List]] = {t: {s: [] for s in systems} for t in txn_types}
    for point in outcome:
        out[point.params["txn_type"]][point.params["system"]].append(
            (point.params["ratio"], round(point.summary.throughput_tps, 1),
             round(point.summary.average_latency_ms, 1)))
    if report:
        for txn_type in txn_types:
            rows = []
            for system in systems:
                for ratio, tput, latency in out[txn_type][system]:
                    rows.append((system, ratio, tput, latency))
            print_table(f"Fig 9 — TPC-C {txn_type}",
                        ["system", "dist ratio", "tput (tps)", "avg latency (ms)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 10
def fig10_latency_sweep(means_ms: Sequence[float] = (20, 40, 60, 80),
                        stds_ms: Sequence[float] = (0, 20, 40),
                        duration_ms: float = QUICK_DURATION_MS,
                        terminals: int = QUICK_TERMINALS,
                        report: bool = False,
                        workers: Optional[int] = None) -> Dict:
    """Impact of the mean and standard deviation of network latency (Fig. 10).

    Fixed-std sweep: three data nodes at mean-10/mean/mean+10 ms.
    Fixed-mean sweep: three nodes whose RTTs are jittered with increasing std.
    """
    def improvement_rows(outcome, values):
        # Pair up by position rather than outcome.get() so duplicated axis
        # values (e.g. means_ms=(20, 20)) keep producing one row each.
        rows = []
        ssp_points = outcome.select(system="ssp")
        geotp_points = outcome.select(system="geotp")
        for value, ssp_point, geotp_point in zip(values, ssp_points, geotp_points):
            ssp, geotp = ssp_point.summary, geotp_point.summary
            improvement = (geotp.throughput_tps / ssp.throughput_tps
                           if ssp.throughput_tps else float("inf"))
            rows.append((value, round(ssp.throughput_tps, 1),
                         round(geotp.throughput_tps, 1), round(improvement, 2)))
        return rows

    mean_outcome = _sweep_results(
        "fig10_mean_sweep", axes={"mean_rtt_ms": means_ms},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    mean_series = improvement_rows(mean_outcome, means_ms)

    std_outcome = _sweep_results(
        "fig10_std_sweep", axes={"std_ms": stds_ms},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    std_series = improvement_rows(std_outcome, stds_ms)

    if report:
        print_table("Fig 10a — varying mean RTT (fixed spread)",
                    ["mean RTT (ms)", "SSP tput", "GeoTP tput", "improvement (x)"],
                    mean_series)
        print_table("Fig 10b — varying RTT std (fixed mean 40 ms)",
                    ["std (ms)", "SSP tput", "GeoTP tput", "improvement (x)"],
                    std_series)
    return {"mean_sweep": mean_series, "std_sweep": std_series}


# -------------------------------------------------------------------- Fig. 11
def fig11_random_latency(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                         repeats: int = 3, max_factor: float = 1.5,
                         duration_ms: float = QUICK_DURATION_MS,
                         terminals: int = QUICK_TERMINALS,
                         report: bool = False,
                         workers: Optional[int] = None) -> Dict:
    """Random per-message latency fluctuations (Fig. 11a)."""
    outcome = _sweep_results(
        "fig11a_random_latency",
        axes={"ratio": ratios, "repeat": tuple(range(repeats))},
        fixed={"max_factor": max_factor},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, List] = {"ssp": [], "geotp": []}
    for system in out:
        for ratio in ratios:
            samples = [point.summary.throughput_tps
                       for point in outcome.select(system=system, ratio=ratio)]
            out[system].append((ratio, round(sum(samples) / len(samples), 1),
                                round(min(samples), 1), round(max(samples), 1)))
    if report:
        rows = [(system, ratio, mean, low, high)
                for system, points in out.items()
                for ratio, mean, low, high in points]
        print_table("Fig 11a — random latency",
                    ["system", "dist ratio", "mean tput", "min", "max"], rows)
    return out


def fig11_dynamic_latency(phase_ms: float = 10_000.0, phases: int = 4,
                          terminals: int = QUICK_TERMINALS,
                          report: bool = False,
                          workers: Optional[int] = None) -> Dict:
    """Online adaptivity: link latencies change every ``phase_ms`` (Fig. 11b)."""
    outcome = _sweep_results(
        "fig11b_dynamic_latency", fixed={"phase_ms": phase_ms, "phases": phases},
        terminals=terminals, workers=workers)
    duration = phase_ms * phases
    out = {}
    for point in outcome:
        summary = point.summary
        out[point.params["system"]] = {
            "throughput_tps": summary.throughput_tps,
            "timeline": (summary.timeline.series(until_ms=duration)
                         if summary.timeline else []),
        }
    if report:
        rows = [(system, round(data["throughput_tps"], 1)) for system, data in out.items()]
        print_table("Fig 11b — dynamic latency (overall throughput)",
                    ["system", "tput (tps)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 12
def fig12_ablation(skews: Sequence[float] = (0.3, 0.9, 1.5),
                   distributed_ratio: float = 0.5,
                   duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False,
                   workers: Optional[int] = None) -> Dict:
    """The O1 / O1-O2 / O1-O3 ablation across skew factors (Fig. 12)."""
    outcome = _sweep_results(
        "fig12_ablation", axes={"skew": skews}, fixed={"ratio": distributed_ratio},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, List] = {name: [] for name in ABLATION_VARIANTS}
    for point in outcome:
        out[point.params["variant"]].append(
            (point.params["skew"], round(point.summary.throughput_tps, 1),
             round(point.summary.p99_latency_ms, 1),
             round(point.summary.abort_rate * 100, 1)))
    if report:
        rows = [(name, skew, tput, p99, abort)
                for name, points in out.items()
                for skew, tput, p99, abort in points]
        print_table("Fig 12 — ablation (50% distributed)",
                    ["variant", "skew", "tput (tps)", "p99 (ms)", "abort (%)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 13
def fig13_yugabyte(contentions: Sequence[str] = ("low", "medium", "high"),
                   duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False,
                   workers: Optional[int] = None) -> Dict:
    """Comparison against the YugabyteDB-like distributed database (Fig. 13)."""
    outcome = _sweep_results(
        "fig13_yugabyte", axes={"contention": contentions},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, List] = {"ssp": [], "geotp": [], "yugabyte": []}
    for system in out:
        for point in outcome.select(system=system):
            out[system].append((point.params["contention"],
                                round(point.summary.throughput_tps, 1),
                                round(point.summary.average_latency_ms, 1)))
    if report:
        rows = [(system, contention, tput, latency)
                for system, points in out.items()
                for contention, tput, latency in points]
        print_table("Fig 13 — vs YugabyteDB",
                    ["system", "contention", "tput (tps)", "avg latency (ms)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 14
def fig14_length_and_rounds(lengths: Sequence[int] = (5, 15, 25),
                            rounds: Sequence[int] = (1, 3, 6),
                            duration_ms: float = QUICK_DURATION_MS,
                            terminals: int = QUICK_TERMINALS,
                            report: bool = False,
                            workers: Optional[int] = None) -> Dict:
    """Impact of transaction length and interaction rounds (Fig. 14)."""
    length_outcome = _sweep_results(
        "fig14_length", axes={"length": lengths},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    length_series: Dict[str, List] = {"ssp": [], "geotp": []}
    for point in length_outcome:
        length_series[point.params["system"]].append(
            (point.params["length"], round(point.summary.throughput_tps, 1)))

    rounds_outcome = _sweep_results(
        "fig14_rounds", axes={"rounds": rounds},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    round_series: Dict[str, Dict[str, List]] = {"low": {}, "medium": {}}
    for contention in round_series:
        for system in ("ssp", "geotp"):
            round_series[contention][system] = [
                (point.params["rounds"], round(point.summary.throughput_tps, 1))
                for point in rounds_outcome.select(contention=contention,
                                                   system=system)]
    if report:
        print_table("Fig 14a — transaction length (medium contention)",
                    ["system", *[f"len {n}" for n in lengths]],
                    [(system, *[t for _l, t in points])
                     for system, points in length_series.items()])
        for contention, by_system in round_series.items():
            print_table(f"Fig 14b/c — interaction rounds ({contention} contention)",
                        ["system", *[f"{n} rounds" for n in rounds]],
                        [(system, *[t for _r, t in points])
                         for system, points in by_system.items()])
    return {"length": length_series, "rounds": round_series}


# -------------------------------------------------------------------- Fig. 15
def fig15_multi_region(duration_ms: float = QUICK_DURATION_MS,
                       terminals: int = QUICK_TERMINALS,
                       report: bool = False,
                       workers: Optional[int] = None) -> Dict:
    """Single- versus multi-middleware deployment (Fig. 15)."""
    outcome = _sweep_results("fig15_multi_region", duration_ms=duration_ms,
                             terminals=terminals, workers=workers)
    out = {}
    for system in ("ssp", "geotp"):
        out[system] = {
            "single_middleware_tps": round(
                outcome.get(system=system, deployment="single").throughput_tps, 1),
            "multi_middleware_tps": round(
                outcome.get(system=system, deployment="multi").throughput_tps, 1),
        }
    if report:
        rows = [(system, data["single_middleware_tps"], data["multi_middleware_tps"])
                for system, data in out.items()]
        print_table("Fig 15 — clients in multiple regions",
                    ["system", "single-DM tput", "multi-DM tput"], rows)
    return out


# -------------------------------------------------------------------- Table I
def table1_heterogeneous(ratios: Sequence[float] = (0.25, 0.75),
                         duration_ms: float = QUICK_DURATION_MS,
                         terminals: int = QUICK_TERMINALS,
                         report: bool = False,
                         workers: Optional[int] = None) -> Dict:
    """Heterogeneous MySQL/PostgreSQL deployments (Table I)."""
    outcome = _sweep_results(
        "table1_heterogeneous", axes={"ratio": ratios},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, Dict] = {scenario: {} for scenario in HETEROGENEOUS_SCENARIOS}
    for point in outcome:
        out[point.params["deployment"]][(point.params["system"],
                                         point.params["ratio"])] = {
            "throughput_tps": round(point.summary.throughput_tps, 1),
            "avg_latency_ms": round(point.summary.average_latency_ms, 1),
        }
    if report:
        rows = []
        for scenario, cells in out.items():
            for (system, ratio), data in cells.items():
                rows.append((scenario, system, f"{int(ratio * 100)}%",
                             data["throughput_tps"], data["avg_latency_ms"]))
        print_table("Table I — heterogeneous deployments",
                    ["scenario", "system", "dist ratio", "tput (tps)", "avg latency (ms)"],
                    rows)
    return out


# ----------------------------------------------------- fleet (robustness PR 7)
def fleet_scaleout(middleware_counts: Sequence[int] = (1, 2, 3, 4),
                   systems: Sequence[str] = FLEET_SYSTEMS,
                   duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False,
                   workers: Optional[int] = None) -> Dict:
    """Throughput vs. fleet size, with scale-out efficiency vs. the K=1 baseline.

    Efficiency is ``tps(K) / (K * tps(1))`` — 1.0 means adding coordinators
    scales throughput linearly; below 1.0 quantifies the coordination tax
    (shared data nodes, lock conflicts crossing middlewares).
    """
    outcome = _sweep_results(
        "fleet_scaleout",
        axes={"system": systems, "middleware_count": middleware_counts},
        duration_ms=duration_ms, terminals=terminals, workers=workers)
    out: Dict[str, List] = {system: [] for system in systems}
    for system in systems:
        baseline = outcome.get(
            system=system,
            middleware_count=middleware_counts[0]).throughput_tps
        for count in middleware_counts:
            tps = outcome.get(system=system,
                              middleware_count=count).throughput_tps
            scale = count / middleware_counts[0]
            efficiency = tps / (baseline * scale) if baseline else 0.0
            out[system].append((count, round(tps, 1), round(efficiency, 2)))
    if report:
        rows = [(system, count, tps, efficiency)
                for system, points in out.items()
                for count, tps, efficiency in points]
        print_table("Fleet scale-out — throughput vs middleware count",
                    ["system", "middlewares", "tput (tps)", "efficiency"], rows)
    return out


def fleet_failover(duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False,
                   workers: Optional[int] = None) -> Dict:
    """Kill one of three middlewares mid-run; survivors absorb the traffic.

    The headline robustness experiment: per-middleware attribution shows the
    survivors picking up the dead coordinator's share, the down episodes carry
    time-to-divert (detection → first commit elsewhere), and the availability
    timeline shows whether any bucket went dark.
    """
    outcome = _sweep_results("fleet_failover", duration_ms=duration_ms,
                             terminals=terminals, workers=workers)
    out = {}
    for point in outcome:
        summary = point.summary
        fleet = summary.fleet or {}
        faults = summary.faults or {}
        episodes = fleet.get("down_episodes", [])
        out[point.params["system"]] = {
            "throughput_tps": summary.throughput_tps,
            "availability": faults.get("availability", {}).get("availability"),
            "failovers": fleet.get("failovers", 0),
            "retries": fleet.get("retries", 0),
            "attribution": fleet.get("attribution", {}),
            "time_to_divert_ms": [episode.get("time_to_divert_ms")
                                  for episode in episodes],
            "down_episodes": episodes,
            "time_to_recover_ms": faults.get("time_to_recover_ms"),
        }
    if report:
        rows = [(system,
                 round(data["throughput_tps"], 1),
                 data["availability"],
                 data["failovers"],
                 [round(ms, 1) for ms in data["time_to_divert_ms"]
                  if ms is not None])
                for system, data in out.items()]
        print_table("Fleet failover — kill 1 of 3 middlewares",
                    ["system", "tput (tps)", "availability", "failovers",
                     "divert (ms)"], rows)
    return out


# ------------------------------------------------------- extra ablation benches
def extra_design_ablations(duration_ms: float = QUICK_DURATION_MS,
                           terminals: int = QUICK_TERMINALS,
                           report: bool = False,
                           workers: Optional[int] = None) -> Dict:
    """Sensitivity of GeoTP to its own design knobs (beyond the paper's figures)."""
    sweeps = {
        "ewma_alpha": ("extra_ewma_alpha", "ewma_alpha"),
        "hotspot_capacity": ("extra_hotspot_capacity", "hotspot_capacity"),
        "admission_retries": ("extra_admission_retries", "admission_max_retries"),
    }
    out: Dict[str, List] = {}
    for knob, (scenario_name, axis_name) in sweeps.items():
        outcome = _sweep_results(scenario_name, duration_ms=duration_ms,
                                 terminals=terminals, workers=workers)
        out[knob] = [(point.params[axis_name],
                      round(point.summary.throughput_tps, 1))
                     for point in outcome]
    if report:
        for knob, points in out.items():
            print_table(f"Design ablation — {knob}", [knob, "tput (tps)"], points)
    return out
