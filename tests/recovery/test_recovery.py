"""Recovery and atomicity tests (§V of the paper).

These tests drive transactions part-way, crash the middleware or a data
source, run the recovery manager and then assert the atomic-commitment
properties: every branch of a transaction ends in the same state, decisions
are never reversed, and transactions without a logged decision are aborted.
"""

import pytest

from repro import protocol
from repro.common import Operation, OpType, TxnOutcome
from repro.middleware import (
    MiddlewareConfig,
    ModuloPartitioner,
    ParticipantHandle,
    TransactionSpec,
    TwoPhaseCommitCoordinator,
)
from repro.recovery import FailureInjector, RecoveryManager
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect, TxnState
from repro.storage.wal import LogRecordType


def build_cluster(rtts=(10.0, 100.0)):
    env = Environment()
    net = Network(env)
    names = [f"ds{i}" for i in range(len(rtts))]
    datasources, participants = {}, {}
    for name, rtt in zip(names, rtts):
        ds = DataSource(env, net, DataSourceConfig(name=name, dialect=MySQLDialect()))
        ds.load_table("usertable", {key: {"v": 0} for key in range(50)})
        datasources[name] = ds
        participants[name] = ParticipantHandle(name=name, endpoint=name)
        net.set_link("dm", name, ConstantLatency(rtt))
    dm = TwoPhaseCommitCoordinator(env, net, MiddlewareConfig(name="dm"),
                                   participants, ModuloPartitioner(names))
    injector = FailureInjector(env, net)
    return env, net, dm, datasources, injector


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def prepare_branch_by_hand(env, net, ds_name, xid, key):
    """Drive a branch to PREPARED directly (simulating a DM that died mid-commit)."""
    client = net.interface("manual-client")
    done = {}

    def driver():
        yield client.request(ds_name, protocol.MSG_XA_START, {"xid": xid})
        yield client.request(ds_name, protocol.MSG_EXECUTE,
                             {"xid": xid, "operations": [update(key, 99)]})
        yield client.request(ds_name, protocol.MSG_XA_PREPARE, {"xid": xid})
        done["ok"] = True

    env.process(driver())
    env.run(until=env.peek() + 10_000)
    assert done.get("ok")


def test_middleware_recovery_commits_logged_transactions():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    # Both branches prepared, and the middleware logged a COMMIT decision
    # before crashing: recovery must commit both branches.
    prepare_branch_by_hand(env, net, "ds0", "dm-t77.1", 0)
    prepare_branch_by_hand(env, net, "ds1", "dm-t77.2", 1)
    dm.wal.append(LogRecordType.COMMIT, "dm-t77", env.now)

    injector.crash_middleware(dm)
    injector.restart_middleware(dm)

    manager = RecoveryManager(dm)
    report_holder = {}

    def recover():
        report = yield from manager.recover_after_middleware_crash()
        report_holder["report"] = report

    env.process(recover())
    env.run()

    report = report_holder["report"]
    assert len(report.committed) == 2
    assert datasources["ds0"].transactions["dm-t77.1"].state is TxnState.COMMITTED
    assert datasources["ds1"].transactions["dm-t77.2"].state is TxnState.COMMITTED
    assert datasources["ds0"].engine.read("p", "usertable", 0).value == {"v": 99}


def test_middleware_recovery_aborts_undecided_transactions():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    # Branches prepared but no decision logged: the transaction never entered
    # the commit phase, so recovery must abort it (AC3/AC4).
    prepare_branch_by_hand(env, net, "ds0", "dm-t88.1", 2)
    prepare_branch_by_hand(env, net, "ds1", "dm-t88.2", 3)

    injector.crash_middleware(dm)
    injector.restart_middleware(dm)

    manager = RecoveryManager(dm)
    holder = {}

    def recover():
        holder["report"] = yield from manager.recover_after_middleware_crash()

    env.process(recover())
    env.run()

    assert len(holder["report"].rolled_back) == 2
    assert datasources["ds0"].transactions["dm-t88.1"].state is TxnState.ABORTED
    assert datasources["ds1"].transactions["dm-t88.2"].state is TxnState.ABORTED
    # The prepared-but-aborted write never became visible.
    assert datasources["ds0"].engine.read("p", "usertable", 2).value == {"v": 0}


def test_all_branches_reach_the_same_outcome_after_recovery():
    """AC1: no transaction ends with one branch committed and another aborted."""
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    prepare_branch_by_hand(env, net, "ds0", "dm-t90.1", 4)
    prepare_branch_by_hand(env, net, "ds1", "dm-t90.2", 5)
    dm.wal.append(LogRecordType.ABORT, "dm-t90", env.now)

    manager = RecoveryManager(dm)

    def recover():
        yield from manager.recover_after_middleware_crash()

    env.process(recover())
    env.run()

    states = {datasources["ds0"].transactions["dm-t90.1"].state,
              datasources["ds1"].transactions["dm-t90.2"].state}
    assert len(states) == 1
    assert states.pop() is TxnState.ABORTED


def test_datasource_crash_loses_unprepared_work_and_siblings_roll_back():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))
    client = net.interface("manual-client")

    progress = {}

    def driver():
        # Branch on ds1 prepared; branch on ds0 only executed (not prepared).
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "dm-t91.2"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "dm-t91.2", "operations": [update(7, 50)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "dm-t91.2"})
        yield client.request("ds0", protocol.MSG_XA_START, {"xid": "dm-t91.1"})
        yield client.request("ds0", protocol.MSG_EXECUTE,
                             {"xid": "dm-t91.1", "operations": [update(6, 50)]})
        progress["staged"] = True
        # Crash and restart ds0: its unprepared branch disappears.
        yield from injector.crash_datasource(datasources["ds0"])
        yield from injector.restart_datasource(datasources["ds0"])
        manager = RecoveryManager(dm)
        report = yield from manager.recover_after_datasource_crash(
            "ds0", {"ds0": ["dm-t91.1"], "ds1": ["dm-t91.2"]})
        progress["report"] = report

    env.process(driver())
    env.run()

    assert progress.get("staged")
    report = progress["report"]
    # ds0's branch had not prepared: it is rolled back together with its sibling.
    assert any("ds0" in entry for entry in report.rolled_back)
    assert any("ds1" in entry for entry in report.rolled_back)
    assert datasources["ds1"].transactions["dm-t91.2"].state is TxnState.ABORTED
    assert datasources["ds1"].engine.read("p", "usertable", 7).value == {"v": 0}


def test_datasource_crash_with_sibling_mid_prepare_rolls_back_every_branch():
    """Decision-log-absent path: ALL siblings roll back, whatever their state.

    The transaction spans three data sources: its branch on ds0 had executed
    but not prepared when ds0 crashed (lost), the sibling on ds1 is PREPARED,
    and the sibling on ds2 is still ACTIVE — caught mid-prepare.  With no
    logged decision the transaction can never have entered the commit phase
    (AC3/AC4), so recovery must roll back the prepared *and* the active
    sibling, not just the branch on the crashed node.
    """
    env, net, dm, datasources, injector = build_cluster(rtts=(10.0, 50.0, 100.0))
    for name in ("ds0", "ds1", "ds2"):
        net.set_link("manual-client", name, ConstantLatency(1))
    client = net.interface("manual-client")
    progress = {}

    def driver():
        # ds1: prepared sibling.
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "dm-t95.2"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "dm-t95.2", "operations": [update(10, 7)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "dm-t95.2"})
        # ds2: active sibling (its XA PREPARE never arrived).
        yield client.request("ds2", protocol.MSG_XA_START, {"xid": "dm-t95.3"})
        yield client.request("ds2", protocol.MSG_EXECUTE,
                             {"xid": "dm-t95.3", "operations": [update(11, 7)]})
        # ds0: executed-only branch, then the node crashes and restarts.
        yield client.request("ds0", protocol.MSG_XA_START, {"xid": "dm-t95.1"})
        yield client.request("ds0", protocol.MSG_EXECUTE,
                             {"xid": "dm-t95.1", "operations": [update(9, 7)]})
        yield from injector.crash_datasource(datasources["ds0"])
        yield from injector.restart_datasource(datasources["ds0"])
        manager = RecoveryManager(dm)
        report = yield from manager.recover_after_datasource_crash(
            "ds0", {"ds0": ["dm-t95.1"], "ds1": ["dm-t95.2"],
                    "ds2": ["dm-t95.3"]})
        progress["report"] = report

    env.process(driver())
    env.run()

    report = progress["report"]
    assert sorted(report.rolled_back) == [
        "ds0:dm-t95.1", "ds1:dm-t95.2", "ds2:dm-t95.3"]
    assert report.committed == []
    for name, branch, key in (("ds0", "dm-t95.1", 9), ("ds1", "dm-t95.2", 10),
                              ("ds2", "dm-t95.3", 11)):
        assert datasources[name].transactions[branch].state is TxnState.ABORTED
        # No sibling's write ever became visible (AC1).
        assert datasources[name].engine.read("p", "usertable", key).value == {"v": 0}


def test_resolve_in_doubt_skips_live_and_foreign_transactions():
    """Targeted recovery must not decide what it does not own.

    ``skip_global_ids`` protects transactions whose coordinator is alive and
    mid-prepare; ``owned_prefix`` protects another middleware's branches —
    this decision log knows nothing about either, so rolling them back (the
    no-decision default) would wreck healthy work.
    """
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))

    prepare_branch_by_hand(env, net, "ds0", "dm-t96.1", 12)   # in doubt: ours
    prepare_branch_by_hand(env, net, "ds0", "dm-t97.1", 13)   # live coordinator
    prepare_branch_by_hand(env, net, "ds0", "dm2-t5.1", 14)   # other middleware

    manager = RecoveryManager(dm)
    holder = {}

    def recover():
        holder["report"] = yield from manager.resolve_in_doubt(
            participant_names=["ds0"], skip_global_ids=["dm-t97"],
            owned_prefix="dm-")

    env.process(recover())
    env.run()

    assert holder["report"].rolled_back == ["ds0:dm-t96.1"]
    assert datasources["ds0"].transactions["dm-t96.1"].state is TxnState.ABORTED
    assert datasources["ds0"].transactions["dm-t97.1"].state is TxnState.PREPARED
    assert datasources["ds0"].transactions["dm2-t5.1"].state is TxnState.PREPARED


def test_recovery_is_idempotent():
    """Running recovery twice must not change outcomes (AC2: decisions stick)."""
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    prepare_branch_by_hand(env, net, "ds0", "dm-t92.1", 8)
    dm.wal.append(LogRecordType.COMMIT, "dm-t92", env.now)

    manager = RecoveryManager(dm)
    reports = []

    def recover_twice():
        first = yield from manager.recover_after_middleware_crash()
        second = yield from manager.recover_after_middleware_crash()
        reports.extend([first, second])

    env.process(recover_twice())
    env.run()

    assert datasources["ds0"].transactions["dm-t92.1"].state is TxnState.COMMITTED
    assert datasources["ds0"].engine.read("p", "usertable", 8).value == {"v": 99}
    # The second pass finds nothing prepared and changes nothing.
    assert reports[1].total_handled == 0


def test_client_facing_outcome_matches_data_source_state():
    """End-to-end: a committed transaction's writes survive; an aborted one's do not."""
    env, net, dm, datasources, injector = build_cluster()
    spec = TransactionSpec.from_operations([update(0, 5), update(1, 5)])
    proc = dm.submit(spec)
    env.run(until=proc)
    result = proc.value
    assert result.outcome is TxnOutcome.COMMITTED
    for name, key in (("ds0", 0), ("ds1", 1)):
        branch = [t for t in datasources[name].transactions.values()
                  if t.global_txn_id == result.txn_id]
        assert branch and branch[0].state is TxnState.COMMITTED
