"""Golden-output determinism tests for the simulation engine.

These snapshots pin the exact ``ExperimentSummary`` a fixed seed must produce:
throughput, latency percentiles, abort counts and a SHA-256 digest over the
full latency sample list.  Any engine change that alters simulation results —
however subtly — shifts at least one latency sample and trips the digest.

Re-pin history
--------------

* The smoke, contended and scale snapshots were captured on the *unoptimized*
  engine (pre PR 2); the byte-identical fast-path work of PR 2/3 kept every
  one of them green.
* The two **contended** snapshots were re-pinned ONCE when the
  ordering-relaxed fast paths landed (run-to-first-yield processes, same-time
  microqueue dispatch, hashed timer wheel for lock waits).  Those
  optimizations deliberately change same-timestamp event interleaving and
  round lock-wait expiries up to the next 1 ms wheel tick, which shifted a
  handful of latency samples by <= 1.2 ms in the lock-heavy runs; committed
  and abort counts (and the low-contention smoke/scale snapshots) were
  untouched.  The statistical-equivalence harness
  (``tests/bench/test_equivalence.py`` / :mod:`repro.bench.equivalence`) is
  the primary safety net for that class of change; these pins now guard
  *accidental* drift between deliberate re-pins.

If another deliberate semantic change lands, follow the re-pin procedure in
EXPERIMENTS.md ("Statistical equivalence"): refresh the equivalence reference,
verify the equivalence suite passes, then update the constants below from the
failure output — and say so in the commit message.  Goldens must be re-pinned
at most once per PR.

Engine parameterization
-----------------------

Every test here runs once per runnable engine (``tests/conftest.py``): the
active engine in-process, the other one in a ``REPRO_ENGINE``-pinned
subprocess via ``python -m repro.bench.goldens``.  The pins themselves are
engine-independent constants — which is exactly the contract the compiled
(mypyc) kernel must honour: same bytes out, only faster.  The pinned
configurations live in :mod:`repro.bench.goldens` so the subprocess replays
the very same runs.
"""

from __future__ import annotations


#: Exact summaries of the registered ``smoke`` scenario (seed 0), per system.
GOLDEN_SMOKE = {
    "ssp": {
        "throughput_tps": 17.0,
        "committed": 34,
        "aborted": 0,
        "average_latency_ms": 231.03529411764714,
        "p50": 150.60000000000014,
        "p99": 759.0,
        "abort_rate": 0.0,
        "abort_reasons": {},
        "n_samples": 34,
        "latency_sha256":
            "b366dc8c4bf21fe5e92d7e9769378d8b77f7216ebd84a426ba55ce2f7d52cc43",
    },
    "geotp": {
        "throughput_tps": 18.5,
        "committed": 37,
        "aborted": 0,
        "average_latency_ms": 205.33802056726134,
        "p50": 152.19999999999982,
        "p99": 540.8835520000001,
        "abort_rate": 0.0,
        "abort_reasons": {},
        "n_samples": 37,
        "latency_sha256":
            "be467fee84eae3fdaa08fda32dcbb3159e350c9d244af09a59358438226f9aad",
    },
}

#: Exact summary of a high-contention run (seed 7) that exercises lock waits,
#: lock-wait timeouts, admission aborts and the release/withdraw paths.
#: Re-pinned once for the ordering-relaxed engine (see module docstring):
#: identical committed/abort mix, latency samples shifted <= 1.2 ms by the
#: 1 ms timer-wheel rounding of lock-wait expiries.
GOLDEN_CONTENDED = {
    "throughput_tps": 1.875,
    "committed": 15,
    "aborted": 17,
    "average_latency_ms": 3927.496666666667,
    "p50": 5074.150000000001,
    "p99": 5488.912,
    "abort_rate": 0.53125,
    "abort_reasons": {"lock_timeout": 11, "admission_blocked": 6},
    "n_samples": 15,
    "latency_sha256":
        "033bc5a418360988f5079c4a9949ee1293be35b92a69be1aef968b79ad83d86a",
}


#: Exact summary of the same contended configuration under SSP (seed 7): the
#: registry refactor routes baseline wiring through plugin builders, and this
#: pin keeps a non-GeoTP coordinator byte-identical too (the smoke pins above
#: are too gentle to exercise SSP's lock-timeout and release paths).
#: Re-pinned once for the ordering-relaxed engine alongside GOLDEN_CONTENDED.
GOLDEN_CONTENDED_SSP = {
    "throughput_tps": 1.5,
    "committed": 12,
    "aborted": 22,
    "average_latency_ms": 1210.2999999999995,
    "p50": 387.8999999999992,
    "p99": 5542.853999999999,
    "abort_rate": 0.6470588235294118,
    "abort_reasons": {"lock_timeout": 22},
    "n_samples": 12,
    "latency_sha256":
        "f03705fe7fa193f7c876de87f0645286a3c2a046c0d416fa4dce2b9905ff9194",
}


#: Exact summary of a medium-scale run (32 terminals, 10 s) — large enough to
#: trigger heap compaction and lock-timer churn, which the two snapshots above
#: are too small to reach (a stale-queue compaction bug once stalled exactly
#: this class of run while the small snapshots stayed green).
GOLDEN_SCALE = {
    "throughput_tps": 125.33333333333333,
    "committed": 1128,
    "aborted": 5,
    "average_latency_ms": 239.41741446690526,
    "p50": 151.4000000000001,
    "p99": 1444.40779804659,
    "abort_rate": 0.00441306266548985,
    "abort_reasons": {"admission_blocked": 5},
    "n_samples": 1128,
    "latency_sha256":
        "a60979226c947c592108393806e3432ada2abbdad717f2d242c0bd52a50a3b00",
}


def test_smoke_scenario_summary_is_byte_identical_to_snapshot(
        engine, goldens_runner):
    snapshots = goldens_runner(engine, "snapshot", "smoke")["snapshot"]
    assert set(snapshots) == set(GOLDEN_SMOKE)
    for system, snapshot in snapshots.items():
        assert snapshot == GOLDEN_SMOKE[system], (
            f"smoke[{system}] diverged from the golden snapshot "
            f"on the {engine} engine")


def test_contended_run_summary_is_byte_identical_to_snapshot(
        engine, goldens_runner):
    snapshot = goldens_runner(engine, "snapshot", "contended_geotp")["snapshot"]
    assert snapshot == GOLDEN_CONTENDED, (
        f"contended geotp run diverged on the {engine} engine")


def test_contended_ssp_run_summary_is_byte_identical_to_snapshot(
        engine, goldens_runner):
    snapshot = goldens_runner(engine, "snapshot", "contended_ssp")["snapshot"]
    assert snapshot == GOLDEN_CONTENDED_SSP, (
        f"contended ssp run diverged on the {engine} engine")


def test_medium_scale_run_summary_is_byte_identical_to_snapshot(
        engine, goldens_runner):
    snapshot = goldens_runner(engine, "snapshot", "scale")["snapshot"]
    assert snapshot == GOLDEN_SCALE, (
        f"medium-scale run diverged on the {engine} engine")
