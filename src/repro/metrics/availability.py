"""Availability and recovery metrics for fault-injection runs.

A fault experiment asks three questions the plain aggregates cannot answer:
*when* was the system unable to commit work (the availability timeline), *how
hard* did the fault hit the abort rate (the abort spike), and *how long* after
the repair did throughput come back (time to recover).  This module derives
all three post-hoc from the per-transaction samples the
:class:`~repro.metrics.collector.MetricsCollector` already keeps, so the hot
recording path pays nothing for them.

Samples finishing inside the warm-up window are discarded by the collector and
therefore absent here, so bucketing starts at ``start_ms`` (the caller passes
the collector's ``warmup_ms``) — otherwise the warm-up buckets would be
structurally empty and dilute every derived metric.  Fault plans should
schedule their first event after the warm-up (the registered fault scenarios
do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class AvailabilityReport:
    """Per-bucket commit/abort counts over one run, plus derived fault metrics."""

    #: Width of one time bucket in milliseconds.
    bucket_ms: float
    #: ``(bucket_start_ms, committed, aborted)`` triples covering the run.
    buckets: List[Tuple[float, int, int]]

    # ------------------------------------------------------------- derivations
    def availability(self, min_committed: int = 1) -> float:
        """Fraction of buckets in which at least ``min_committed`` txns committed."""
        if not self.buckets:
            return 0.0
        up = sum(1 for _, committed, _ in self.buckets
                 if committed >= min_committed)
        return up / len(self.buckets)

    def abort_spike(self) -> float:
        """Peak per-bucket abort count relative to the mean (1.0 = flat)."""
        aborts = [aborted for _, _, aborted in self.buckets]
        total = sum(aborts)
        if not total:
            return 0.0
        mean = total / len(aborts)
        return max(aborts) / mean

    def throughput_before(self, at_ms: float) -> float:
        """Mean committed-per-second over the buckets entirely before ``at_ms``.

        This is the pre-fault baseline :meth:`time_to_recover_ms` compares
        against; 0.0 when no full bucket precedes ``at_ms``.
        """
        counts = [committed for start, committed, _ in self.buckets
                  if start + self.bucket_ms <= at_ms]
        if not counts:
            return 0.0
        return sum(counts) / len(counts) / (self.bucket_ms / 1000.0)

    def time_to_recover_ms(self, after_ms: float,
                           baseline_tps: Optional[float] = None,
                           fraction: float = 0.5) -> Optional[float]:
        """Time from ``after_ms`` until throughput is back to ``fraction`` of baseline.

        ``after_ms`` is typically the restart/heal time of a fault event.  The
        baseline defaults to the mean committed-per-second before ``after_ms``
        (:meth:`throughput_before`).  Returns ``None`` when throughput never
        recovers within the observed window (or there is no baseline to
        recover to).
        """
        if baseline_tps is None:
            baseline_tps = self.throughput_before(after_ms)
        if baseline_tps <= 0.0:
            return None
        threshold = baseline_tps * fraction * (self.bucket_ms / 1000.0)
        for start, committed, _ in self.buckets:
            if start + self.bucket_ms <= after_ms:
                continue
            if committed >= threshold:
                return max(start - after_ms, 0.0)
        return None

    def to_dict(self) -> Dict:
        """A JSON-serialisable form (used by the CLI output and summaries)."""
        return {
            "bucket_ms": self.bucket_ms,
            "series": [[start, committed, aborted]
                       for start, committed, aborted in self.buckets],
            "availability": self.availability(),
            "abort_spike": self.abort_spike(),
        }


def _bucket_grid(duration_ms: float, bucket_ms: float,
                 start_ms: float) -> int:
    """Number of buckets spanning ``[start_ms, duration_ms)`` (shared by the
    post-hoc builder and the streaming accumulator so their grids always
    coincide)."""
    if bucket_ms <= 0:
        raise ValueError("bucket_ms must be positive")
    if not 0 <= start_ms < duration_ms:
        raise ValueError("start_ms must lie inside [0, duration_ms)")
    span = duration_ms - start_ms
    return max(int(span // bucket_ms) + (1 if span % bucket_ms else 0), 1)


class StreamingAvailability:
    """Incrementally bucketed commit/abort counts on a fixed time grid.

    The post-hoc :func:`build_availability` walks every retained sample after
    the run — O(n) memory in the collector.  This accumulator is its
    record-time twin: the bucket grid is allocated up front from the known run
    duration (O(duration / bucket_ms), independent of transaction count) and
    each completion costs one index computation.  :meth:`report` emits an
    :class:`AvailabilityReport` identical to what :func:`build_availability`
    would build from the same stream — a pinned test asserts the equality.
    """

    __slots__ = ("bucket_ms", "start_ms", "_committed", "_aborted", "_count")

    def __init__(self, duration_ms: float, bucket_ms: float = 1000.0,
                 start_ms: float = 0.0):
        self._count = _bucket_grid(duration_ms, bucket_ms, start_ms)
        self.bucket_ms = bucket_ms
        self.start_ms = start_ms
        self._committed = [0] * self._count
        self._aborted = [0] * self._count

    def record(self, finished_at_ms: float, committed: bool) -> None:
        """Count one transaction completion (same clamping as the builder)."""
        index = int((finished_at_ms - self.start_ms) // self.bucket_ms)
        if index < 0:
            index = 0
        elif index >= self._count:
            index = self._count - 1
        if committed:
            self._committed[index] += 1
        else:
            self._aborted[index] += 1

    def report(self) -> AvailabilityReport:
        """The accumulated buckets as an :class:`AvailabilityReport`."""
        buckets = [(self.start_ms + index * self.bucket_ms,
                    self._committed[index], self._aborted[index])
                   for index in range(self._count)]
        return AvailabilityReport(bucket_ms=self.bucket_ms, buckets=buckets)


def build_availability(samples: Iterable, duration_ms: float,
                       bucket_ms: float = 1000.0,
                       start_ms: float = 0.0) -> AvailabilityReport:
    """Bucket per-transaction samples into an :class:`AvailabilityReport`.

    ``samples`` is any iterable of objects with ``finished_at`` and
    ``committed`` attributes (the collector's
    :class:`~repro.metrics.collector.TransactionSample`).  Buckets span
    ``[start_ms, duration_ms)`` so quiet tail buckets show up as unavailable
    instead of being silently truncated; pass the collector's warm-up window
    as ``start_ms`` so no bucket covers time that could never hold a sample.
    """
    count = _bucket_grid(duration_ms, bucket_ms, start_ms)
    committed = [0] * count
    aborted = [0] * count
    for sample in samples:
        index = int((sample.finished_at - start_ms) // bucket_ms)
        if index < 0:
            index = 0
        elif index >= count:
            index = count - 1
        if sample.committed:
            committed[index] += 1
        else:
            aborted[index] += 1
    buckets = [(start_ms + index * bucket_ms, committed[index], aborted[index])
               for index in range(count)]
    return AvailabilityReport(bucket_ms=bucket_ms, buckets=buckets)


# ----------------------------------------------------- per-middleware views
def middleware_of(txn_id: str) -> str:
    """The middleware a transaction ran on, recovered from its id.

    Transaction ids are ``f"{middleware.name}-t{counter}"`` (see
    ``MiddlewareBase.submit``), so attribution needs no extra bookkeeping on
    the hot path — it is derived from the samples after the run.
    """
    return txn_id.rsplit("-t", 1)[0]


def per_middleware_attribution(samples: Iterable) -> Dict[str, Dict[str, int]]:
    """Commit/abort counts per middleware, derived from the sample ids.

    The values sum exactly to the collector's totals (same samples, no
    filtering), which is what the fleet scenarios' zero-lost/zero-duplicated
    accounting checks ride on.
    """
    out: Dict[str, Dict[str, int]] = {}
    for sample in samples:
        entry = out.setdefault(middleware_of(sample.txn_id),
                               {"committed": 0, "aborted": 0})
        entry["committed" if sample.committed else "aborted"] += 1
    return out


def per_middleware_availability(samples: Iterable, duration_ms: float,
                                bucket_ms: float = 1000.0,
                                start_ms: float = 0.0
                                ) -> Dict[str, AvailabilityReport]:
    """One :class:`AvailabilityReport` per middleware (same bucket grid).

    All reports share the fleet-wide bucket boundaries, so the per-middleware
    timelines line up column-for-column with the aggregate one — the shape
    the failover experiments plot (survivors picking up the dead
    coordinator's share, bucket by bucket).
    """
    grouped: Dict[str, List] = {}
    for sample in samples:
        grouped.setdefault(middleware_of(sample.txn_id), []).append(sample)
    return {name: build_availability(group, duration_ms, bucket_ms=bucket_ms,
                                     start_ms=start_ms)
            for name, group in sorted(grouped.items())}
