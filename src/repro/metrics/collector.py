"""Collection of per-transaction outcomes during an experiment run.

Two collectors share one recording/query API:

* :class:`MetricsCollector` retains every :class:`TransactionSample` — the
  closed-loop default, O(n) memory, exact filtered queries, byte-identical to
  the pre-streaming behaviour (the golden pins depend on it).
* :class:`StreamingMetricsCollector` retains **nothing per transaction**: it
  folds every completion into fixed-size aggregates at record time (reservoir
  latency distributions, pre-allocated availability buckets, incremental
  phase/attribution/abort accounting).  Open-system runs — 10⁶+ transactions
  per point — select it automatically so RSS stays flat with run length.

Derived consumers (availability timelines, fleet attribution, phase
breakdowns) must go through the accessor methods (:meth:`availability_report`,
:meth:`attribution`, :meth:`per_middleware_availability`,
:meth:`phase_breakdown`) rather than iterating ``.samples`` post-hoc: the
accessors dispatch to the retained or streaming representation, so a consumer
written against them works unchanged in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common import TransactionResult, TxnOutcome
from repro.metrics.availability import (
    AvailabilityReport,
    StreamingAvailability,
    build_availability,
    middleware_of,
    per_middleware_attribution,
    per_middleware_availability,
)
from repro.metrics.breakdown import PhaseBreakdown
from repro.metrics.percentiles import (
    DEFAULT_RESERVOIR_SIZE,
    LatencyDistribution,
    StreamingLatencyDistribution,
)


@dataclass(slots=True)
class TransactionSample:
    """One completed transaction as seen by a client terminal."""

    txn_id: str
    txn_type: str
    committed: bool
    is_distributed: bool
    latency_ms: float
    finished_at: float
    abort_reason: Optional[str] = None
    phase_breakdown: Optional[Dict[str, float]] = None


class MetricsCollector:
    """Aggregates transaction samples, honouring a warm-up window.

    Samples finishing before ``warmup_ms`` are counted separately and excluded
    from throughput/latency statistics, mirroring how benchmark harnesses
    discard ramp-up measurements.

    The unfiltered aggregates (committed/aborted counts, abort-reason
    histogram) are maintained incrementally on :meth:`record`, so the
    per-query cost no longer grows with the number of samples; filtered
    queries (by transaction type or distribution) still scan.
    """

    __slots__ = ("warmup_ms", "samples", "warmup_samples",
                 "_committed", "_aborted", "_abort_reasons")

    #: Whether per-transaction samples are retained (``False`` on the
    #: streaming subclass); consumers that genuinely need the full sample
    #: list must check this instead of assuming ``.samples`` is populated.
    retains_samples = True

    def __init__(self, warmup_ms: float = 0.0):
        self.warmup_ms = warmup_ms
        self.samples: List[TransactionSample] = []
        self.warmup_samples = 0
        self._committed = 0
        self._aborted = 0
        self._abort_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------- recording
    def record(self, result: TransactionResult, txn_type: str = "generic") -> None:
        """Record the outcome of one transaction."""
        if result.end_time < self.warmup_ms:
            self.warmup_samples += 1
            return
        abort_reason = result.abort_reason.value if result.abort_reason else None
        self.samples.append(TransactionSample(
            txn_id=result.txn_id,
            txn_type=txn_type,
            committed=result.committed,
            is_distributed=result.is_distributed,
            latency_ms=result.latency_ms,
            finished_at=result.end_time,
            abort_reason=abort_reason,
            phase_breakdown=dict(result.phase_breakdown) if result.phase_breakdown else None,
        ))
        if result.committed:
            self._committed += 1
        else:
            self._aborted += 1
            if abort_reason is not None:
                self._abort_reasons[abort_reason] = (
                    self._abort_reasons.get(abort_reason, 0) + 1)

    # ------------------------------------------------------------ aggregation
    def _filtered(self, committed_only: bool = False, txn_type: Optional[str] = None,
                  distributed: Optional[bool] = None) -> List[TransactionSample]:
        out = self.samples
        if committed_only:
            out = [s for s in out if s.committed]
        if txn_type is not None:
            out = [s for s in out if s.txn_type == txn_type]
        if distributed is not None:
            out = [s for s in out if s.is_distributed == distributed]
        return out

    def committed_count(self, txn_type: Optional[str] = None) -> int:
        """Number of committed transactions after warm-up."""
        if txn_type is None:
            return self._committed
        return len(self._filtered(committed_only=True, txn_type=txn_type))

    def aborted_count(self, txn_type: Optional[str] = None) -> int:
        """Number of aborted transactions after warm-up."""
        if txn_type is None:
            return self._aborted
        return len([s for s in self._filtered(txn_type=txn_type) if not s.committed])

    def abort_rate(self, txn_type: Optional[str] = None) -> float:
        """Fraction of measured transactions that aborted (0 when nothing measured)."""
        if txn_type is None:
            total = len(self.samples)
        else:
            total = len(self._filtered(txn_type=txn_type))
        if total == 0:
            return 0.0
        return self.aborted_count(txn_type) / total

    def throughput_tps(self, measured_duration_ms: float,
                       txn_type: Optional[str] = None) -> float:
        """Committed transactions per second over the measured window."""
        if measured_duration_ms <= 0:
            return 0.0
        return self.committed_count(txn_type) / (measured_duration_ms / 1000.0)

    def latency_distribution(self, committed_only: bool = True,
                             txn_type: Optional[str] = None,
                             distributed: Optional[bool] = None) -> LatencyDistribution:
        """Latency distribution of (by default committed) transactions."""
        samples = self._filtered(committed_only=committed_only, txn_type=txn_type,
                                 distributed=distributed)
        return LatencyDistribution([s.latency_ms for s in samples])

    def average_latency_ms(self, committed_only: bool = True,
                           txn_type: Optional[str] = None,
                           distributed: Optional[bool] = None) -> float:
        """Mean latency of the selected transactions."""
        return self.latency_distribution(committed_only, txn_type, distributed).mean

    def abort_reasons(self) -> Dict[str, int]:
        """Histogram of abort reasons after warm-up (first-seen order)."""
        return dict(self._abort_reasons)

    # ----------------------------------------------- derived-consumer accessors
    # The one sanctioned way to get timelines/attribution/breakdowns out of a
    # collector: retained collectors derive them post-hoc from the samples,
    # the streaming subclass returns its incrementally built aggregates.
    def availability_report(self, duration_ms: float,
                            bucket_ms: float = 1000.0) -> AvailabilityReport:
        """Per-bucket commit/abort timeline over ``[warmup_ms, duration_ms)``."""
        return build_availability(self.samples, duration_ms,
                                  bucket_ms=bucket_ms, start_ms=self.warmup_ms)

    def attribution(self) -> Dict[str, Dict[str, int]]:
        """Commit/abort counts per middleware (sums to the collector totals)."""
        return per_middleware_attribution(self.samples)

    def per_middleware_availability(self, duration_ms: float,
                                    bucket_ms: float = 1000.0
                                    ) -> Dict[str, AvailabilityReport]:
        """One availability timeline per middleware, on a shared bucket grid."""
        return per_middleware_availability(self.samples, duration_ms,
                                           bucket_ms=bucket_ms,
                                           start_ms=self.warmup_ms)

    def phase_breakdown(self) -> PhaseBreakdown:
        """Per-phase latency breakdown of committed transactions."""
        breakdown = PhaseBreakdown()
        breakdown.record_many(s.phase_breakdown for s in self.samples
                              if s.committed)
        return breakdown


def _derive_seed(seed: int, salt: int) -> int:
    """Stable per-reservoir seed derivation (same scheme as ``SeededRNG.spawn``)."""
    return (seed * 1_000_003 + salt) & 0x7FFFFFFF


class StreamingMetricsCollector(MetricsCollector):
    """O(1)-memory collector for open-system (unbounded-length) runs.

    Nothing is retained per transaction: latencies go into fixed-size
    reservoirs (exact count/mean/min/max, estimated percentiles), the
    availability timeline is bucketed at record time on a grid pre-allocated
    from the known run duration, and abort reasons, per-type counts, phase
    breakdowns and per-middleware attribution are all folded incrementally.

    Queries that fundamentally require the full sample list — per-type latency
    distributions, arbitrary filters — raise instead of silently returning
    empty results; everything the runner and the derived-metric consumers use
    is supported.  ``middleware`` tracking (attribution + per-middleware
    timelines, for fleet runs) is opt-in because it costs a txn-id parse per
    record.
    """

    __slots__ = ("duration_ms", "bucket_ms", "track_middlewares",
                 "reservoir_size", "_latency_all", "_latency_central",
                 "_latency_dist", "_availability", "_mw_availability",
                 "_mw_attribution", "_breakdown", "_per_type", "_seed")

    retains_samples = False

    def __init__(self, warmup_ms: float = 0.0,
                 duration_ms: Optional[float] = None,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 bucket_ms: float = 1000.0, seed: int = 0,
                 track_middlewares: bool = False):
        super().__init__(warmup_ms)
        self.duration_ms = duration_ms
        self.bucket_ms = bucket_ms
        self.track_middlewares = track_middlewares
        self.reservoir_size = reservoir_size
        self._seed = seed
        self._latency_all = StreamingLatencyDistribution(
            reservoir_size, seed=_derive_seed(seed, 1))
        self._latency_central = StreamingLatencyDistribution(
            reservoir_size, seed=_derive_seed(seed, 2))
        self._latency_dist = StreamingLatencyDistribution(
            reservoir_size, seed=_derive_seed(seed, 3))
        self._availability = (
            StreamingAvailability(duration_ms, bucket_ms=bucket_ms,
                                  start_ms=warmup_ms)
            if duration_ms is not None else None)
        self._mw_availability: Dict[str, StreamingAvailability] = {}
        self._mw_attribution: Dict[str, Dict[str, int]] = {}
        self._breakdown = PhaseBreakdown()
        self._per_type: Dict[str, List[int]] = {}

    # ------------------------------------------------------------- recording
    def record(self, result: TransactionResult, txn_type: str = "generic") -> None:
        """Fold one transaction outcome into the bounded aggregates."""
        if result.end_time < self.warmup_ms:
            self.warmup_samples += 1
            return
        committed = result.committed
        if committed:
            self._committed += 1
            latency = result.latency_ms
            self._latency_all.add(latency)
            if result.is_distributed:
                self._latency_dist.add(latency)
            else:
                self._latency_central.add(latency)
            if result.phase_breakdown:
                self._breakdown.record(result.phase_breakdown)
        else:
            self._aborted += 1
            if result.abort_reason is not None:
                key = result.abort_reason.value
                self._abort_reasons[key] = self._abort_reasons.get(key, 0) + 1
        entry = self._per_type.get(txn_type)
        if entry is None:
            entry = self._per_type[txn_type] = [0, 0]
        entry[0 if committed else 1] += 1
        if self._availability is not None:
            self._availability.record(result.end_time, committed)
        if self.track_middlewares:
            name = middleware_of(result.txn_id)
            counts = self._mw_attribution.get(name)
            if counts is None:
                counts = self._mw_attribution[name] = {"committed": 0,
                                                       "aborted": 0}
            counts["committed" if committed else "aborted"] += 1
            if self._availability is not None:
                timeline = self._mw_availability.get(name)
                if timeline is None:
                    timeline = self._mw_availability[name] = (
                        StreamingAvailability(self.duration_ms,
                                              bucket_ms=self.bucket_ms,
                                              start_ms=self.warmup_ms))
                timeline.record(result.end_time, committed)

    # ------------------------------------------------------------ aggregation
    def _filtered(self, committed_only: bool = False, txn_type: Optional[str] = None,
                  distributed: Optional[bool] = None) -> List[TransactionSample]:
        raise RuntimeError(
            "StreamingMetricsCollector retains no per-transaction samples; "
            "use the streaming accessors (latency_distribution, "
            "availability_report, attribution, phase_breakdown) or run with "
            "retained metrics (ExperimentConfig.streaming_metrics=False)")

    def committed_count(self, txn_type: Optional[str] = None) -> int:
        if txn_type is None:
            return self._committed
        entry = self._per_type.get(txn_type)
        return entry[0] if entry else 0

    def aborted_count(self, txn_type: Optional[str] = None) -> int:
        if txn_type is None:
            return self._aborted
        entry = self._per_type.get(txn_type)
        return entry[1] if entry else 0

    def abort_rate(self, txn_type: Optional[str] = None) -> float:
        if txn_type is None:
            total = self._committed + self._aborted
        else:
            entry = self._per_type.get(txn_type)
            total = (entry[0] + entry[1]) if entry else 0
        if total == 0:
            return 0.0
        return self.aborted_count(txn_type) / total

    def latency_distribution(self, committed_only: bool = True,
                             txn_type: Optional[str] = None,
                             distributed: Optional[bool] = None
                             ) -> StreamingLatencyDistribution:
        """The streaming latency distribution for the supported filters.

        Committed-only, optionally split by centralized/distributed — the
        exact set of distributions the runner ships in summaries.  Any other
        filter needs retained samples and raises.
        """
        if not committed_only or txn_type is not None:
            self._filtered(committed_only, txn_type, distributed)  # raises
        if distributed is None:
            return self._latency_all
        return self._latency_dist if distributed else self._latency_central

    # ----------------------------------------------- derived-consumer accessors
    def availability_report(self, duration_ms: float,
                            bucket_ms: float = 1000.0) -> AvailabilityReport:
        if self._availability is None:
            raise RuntimeError("this StreamingMetricsCollector was built "
                               "without duration_ms; no availability timeline "
                               "was accumulated")
        if duration_ms != self.duration_ms or bucket_ms != self.bucket_ms:
            raise ValueError(
                f"streaming availability was accumulated on a "
                f"(duration_ms={self.duration_ms}, bucket_ms={self.bucket_ms}) "
                f"grid; cannot rebucket to (duration_ms={duration_ms}, "
                f"bucket_ms={bucket_ms}) without retained samples")
        return self._availability.report()

    def attribution(self) -> Dict[str, Dict[str, int]]:
        if not self.track_middlewares:
            raise RuntimeError("middleware attribution was not tracked; "
                               "construct with track_middlewares=True")
        return {name: dict(counts)
                for name, counts in self._mw_attribution.items()}

    def per_middleware_availability(self, duration_ms: float,
                                    bucket_ms: float = 1000.0
                                    ) -> Dict[str, AvailabilityReport]:
        if not self.track_middlewares:
            raise RuntimeError("per-middleware timelines were not tracked; "
                               "construct with track_middlewares=True")
        if duration_ms != self.duration_ms or bucket_ms != self.bucket_ms:
            raise ValueError("per-middleware streaming timelines use the "
                             "collector's own (duration_ms, bucket_ms) grid")
        return {name: timeline.report()
                for name, timeline in sorted(self._mw_availability.items())}

    def phase_breakdown(self) -> PhaseBreakdown:
        return self._breakdown
