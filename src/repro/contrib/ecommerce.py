"""Session-based e-commerce checkout workload (contrib plugin).

Grown from ``examples/ecommerce_checkout.py``: the paper's motivating global
store, but as a first-class workload instead of a TPC-C remix.  Each terminal
walks a shopper *session* — a few catalog browses, some cart adds, then a
checkout that reserves stock and a payment that settles it — so the
transaction stream has the bursty read-then-write phase structure real
storefronts show, not an i.i.d. mix.

The chaos-matrix knob this plugin contributes is the **flash crowd**:
``hotspot_shift_every`` moves the hot-product window to a fresh region of the
catalog every N generated transactions (transaction-count based, so it is
deterministic under any scheduler).  A shifted hot set invalidates whatever
locality the middleware has learned — the e-commerce equivalent of a product
going viral mid-run.

Like every contrib module this is a *plugin*: registering the workload and
its scenarios requires zero edits to the cluster or bench layers, and the
chaos matrix picks the workload up purely by its registry name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common import Operation, OpType
from repro.middleware.router import ModuloPartitioner
from repro.middleware.statements import TransactionSpec
from repro.plugins import WorkloadPlugin, register_scenario_hook, register_workload
from repro.workloads.base import Workload, WorkloadConfig

PRODUCTS = "products"
CARTS = "carts"
ORDERS = "orders"
CUSTOMERS = "customers"

#: Session stages, in order; ``next_transaction`` advances one stage per call.
BROWSE, ADD_TO_CART, CHECKOUT, PAYMENT = "browse", "add_to_cart", "checkout", "payment"


@dataclass
class EcommerceConfig(WorkloadConfig):
    """Knobs of the e-commerce session generator (sizes scaled for simulation)."""

    #: Catalog rows per data node.
    products_per_node: int = 10_000
    #: Products materialised per node at load time (cold rows are created
    #: lazily on first write, like the YCSB loader's memory bound).
    preload_products_per_node: int = 1_000
    #: Customers (and their carts) per data node, all preloaded.
    customers_per_node: int = 500
    #: Probability that a product draw comes from the current hot window.
    hotspot_probability: float = 0.7
    #: Size of the hot-product window.
    hotspot_products: int = 50
    #: Flash-crowd knob: move the hot window to a fresh catalog region every
    #: N generated transactions; 0 keeps it static for the whole run.
    hotspot_shift_every: int = 0
    #: Browse transactions per session, drawn uniformly from [1, max].
    max_browses: int = 3
    #: Cart-add transactions per session, drawn uniformly from [1, max].
    max_cart_adds: int = 2
    #: Line items reserved by a checkout.
    items_per_checkout: int = 2


class EcommerceWorkload(Workload):
    """Generator of shopper-session transaction specs."""

    name = "ecommerce"

    def __init__(self, datasource_names, config: EcommerceConfig):
        super().__init__(datasource_names, config)
        self.config: EcommerceConfig = config
        if config.products_per_node < 2:
            raise ValueError("products_per_node must be >= 2")
        if config.customers_per_node < 1:
            raise ValueError("customers_per_node must be >= 1")
        if not 0 <= config.distributed_ratio <= 1:
            raise ValueError("distributed_ratio must be in [0, 1]")
        if config.hotspot_shift_every < 0:
            raise ValueError("hotspot_shift_every must be >= 0")
        self._partitioner = ModuloPartitioner(self.datasource_names)
        #: Per-terminal session state: remaining stage list + home node +
        #: customer.  Sessions are independent, so state is keyed by terminal.
        self._sessions: Dict[int, Dict] = {}
        #: Transactions generated so far — drives the flash-crowd shift.
        self._generated = 0
        self._builders = {
            BROWSE: self._browse,
            ADD_TO_CART: self._add_to_cart,
            CHECKOUT: self._checkout,
            PAYMENT: self._payment,
        }

    # --------------------------------------------------------------- interface
    def make_partitioner(self) -> ModuloPartitioner:
        return self._partitioner

    def initial_data(self) -> Dict[str, Dict[str, Dict]]:
        config = self.config
        preload = min(config.products_per_node, config.preload_products_per_node)
        data: Dict[str, Dict[str, Dict]] = {}
        for node_index, name in enumerate(self.datasource_names):
            products, customers, carts = {}, {}, {}
            for sequence in range(preload):
                key = self._partitioner.key_for_node(node_index, sequence)
                products[key] = {"stock": 1_000, "price": 10.0}
            for sequence in range(config.customers_per_node):
                key = self._partitioner.key_for_node(node_index, sequence)
                customers[key] = {"balance": 10_000.0}
                carts[key] = {"items": 0}
            data[name] = {PRODUCTS: products, CUSTOMERS: customers,
                          CARTS: carts}
        return data

    def next_transaction(self, terminal_id: int = 0) -> TransactionSpec:
        session = self._sessions.get(terminal_id)
        if not session or not session["stages"]:
            session = self._new_session()
            self._sessions[terminal_id] = session
        stage = session["stages"].pop(0)
        self._generated += 1
        operations, is_distributed = self._builders[stage](session)
        return TransactionSpec.from_operations(
            operations, txn_type=stage, rounds=self.config.rounds,
            metadata={"distributed": is_distributed,
                      "home_node": session["home"]})

    # ----------------------------------------------------------------- session
    def _new_session(self) -> Dict:
        config = self.config
        node_count = len(self.datasource_names)
        home = self.rng.randint(0, node_count - 1)
        stages = ([BROWSE] * self.rng.randint(1, max(1, config.max_browses))
                  + [ADD_TO_CART] * self.rng.randint(1, max(1, config.max_cart_adds))
                  + [CHECKOUT, PAYMENT])
        customer = self._partitioner.key_for_node(
            home, self.rng.randint(0, config.customers_per_node - 1))
        # The checkout's distribution draw is fixed at session start so the
        # cart adds and the checkout tell one coherent story.
        distributed = (node_count > 1
                       and self.rng.bernoulli(config.distributed_ratio))
        remote = home
        if distributed:
            others = [i for i in range(node_count) if i != home]
            remote = self.rng.choice(others)
        return {"stages": stages, "home": home, "remote": remote,
                "distributed": distributed, "customer": customer,
                "cart_products": []}

    # ------------------------------------------------------------ txn builders
    def _browse(self, session: Dict):
        ops = [self._read(PRODUCTS, self._draw_product(session["home"]))
               for _ in range(2)]
        return ops, False

    def _add_to_cart(self, session: Dict):
        node = (session["remote"]
                if session["distributed"] and self.rng.bernoulli(0.5)
                else session["home"])
        product = self._draw_product(node)
        session["cart_products"].append(product)
        ops = [self._read(PRODUCTS, product),
               self._update(CARTS, session["customer"], {"items": "added"})]
        return ops, False

    def _checkout(self, session: Dict):
        config = self.config
        products = list(session["cart_products"])
        while len(products) < config.items_per_checkout:
            node = (session["remote"] if session["distributed"]
                    else session["home"])
            products.append(self._draw_product(node))
        ops = [self._read(CARTS, session["customer"])]
        for product in products[:config.items_per_checkout]:
            ops += [self._read(PRODUCTS, product),
                    self._update(PRODUCTS, product, {"stock": "reserved"})]
        ops.append(self._write(ORDERS, session["customer"],
                               {"status": "placed"}))
        # Distributed iff any reserved product lives off the home node
        # (keys stripe by modulo, matching ModuloPartitioner.locate).
        home = session["home"]
        node_count = len(self.datasource_names)
        distributed = any(p % node_count != home
                          for p in products[:config.items_per_checkout])
        return ops, distributed

    def _payment(self, session: Dict):
        customer = session["customer"]
        ops = [self._read(CUSTOMERS, customer),
               self._update(CUSTOMERS, customer, {"balance": "charged"}),
               self._update(ORDERS, customer, {"status": "paid"})]
        session["cart_products"] = []
        return ops, False

    # ----------------------------------------------------------------- helpers
    def _hot_window_base(self) -> int:
        """First catalog sequence of the current hot window.

        Advances every ``hotspot_shift_every`` generated transactions; the
        large odd stride scatters successive windows across the catalog so a
        shift is a genuine locality break, not a neighbouring slide.
        """
        config = self.config
        if config.hotspot_shift_every <= 0:
            return 0
        shift = self._generated // config.hotspot_shift_every
        span = max(config.products_per_node - config.hotspot_products, 1)
        return (shift * 7_919) % span

    def _draw_product(self, node_index: int) -> int:
        config = self.config
        if self.rng.bernoulli(config.hotspot_probability):
            window = min(config.hotspot_products, config.products_per_node)
            sequence = self._hot_window_base() + self.rng.randint(0, window - 1)
            sequence %= config.products_per_node
        else:
            sequence = self.rng.randint(0, config.products_per_node - 1)
        return self._partitioner.key_for_node(node_index, sequence)

    @staticmethod
    def _read(table: str, key: int) -> Operation:
        return Operation(op_type=OpType.READ, table=table, key=key)

    @staticmethod
    def _update(table: str, key: int, value: Dict) -> Operation:
        return Operation(op_type=OpType.UPDATE, table=table, key=key,
                         value=value)

    @staticmethod
    def _write(table: str, key: int, value: Dict) -> Operation:
        return Operation(op_type=OpType.WRITE, table=table, key=key,
                         value=value)


# ------------------------------------------------------------------- plugin
register_workload(WorkloadPlugin(
    name="ecommerce",
    description="Session-based e-commerce checkout (browse/cart/checkout/"
                "payment) with a flash-crowd hotspot-shift knob",
    aliases=("ecom", "checkout"),
    factory=EcommerceWorkload,
    config_factory=EcommerceConfig,
))


def _register_scenarios() -> None:
    # Deferred: the bench layer imports the cluster layer, which loads the
    # plugins — importing scenarios at module level would be a cycle.
    from repro.bench.scenarios import Axis, ScenarioSpec, _base, register

    register(ScenarioSpec(
        name="ecommerce_flash_crowd",
        description="E-commerce sessions under a moving hot-product window: "
                    "shift period 0 (static) vs flash crowds every 2000/500 "
                    "transactions (contrib workload)",
        base=_base(workload="ecommerce", workload_config=EcommerceConfig()),
        axes=(Axis("system", ("ssp", "geotp")),
              Axis("shift_every", (0, 2_000, 500),
                   path="workload_config.hotspot_shift_every")),
    ))


register_scenario_hook(_register_scenarios)
