"""Statistical-equivalence harness for ordering-relaxed engine changes.

The byte-identical golden pins (``tests/bench/test_golden_summary.py``) freeze
one event interleaving forever, which forbids the reordering class of engine
optimizations (run-to-first-yield processes, same-time microqueue dispatch,
coarse timer wheels).  This module is the safety net that *replaces* exact
ordering as the primary guarantee: instead of "same bytes", it checks that the
engine still simulates the same *system*.

Three properties are checked, on small contended WAN configurations across
several seeds:

1. **Per-seed bit-determinism** — the same config and seed must produce the
   exact same summary (including a SHA-256 digest over every latency sample)
   twice in a row.  Relaxing *which* interleaving the engine picks must never
   make the chosen interleaving nondeterministic.
2. **Paper-trend invariants** — GeoTP must outperform SSP on contended
   distributed workloads *in aggregate across seeds*, and on a majority of
   individual seeds.  (Per-seed strict ordering does not hold even on the
   ordering-strict engine: at this scale single seeds are noisy — e.g. seed 11
   favours SSP on both engines — so the invariant is statistical by nature.)
3. **Tolerance bands** — aggregate committed counts and the committed/abort
   mix must stay within a relative band of a *reference capture* taken on the
   ordering-strict engine (``tests/bench/data/equivalence_reference.json``).
   A reordering optimization may legally shift individual runs, but if the
   aggregate drifts outside the band it changed system behaviour, not just
   event interleaving.

Capturing a new reference (only when engine semantics deliberately change)::

    PYTHONPATH=src python -c "from repro.bench.equivalence import capture_reference; \
        capture_reference('tests/bench/data/equivalence_reference.json', 'note')"

See EXPERIMENTS.md ("Statistical equivalence") for the full re-pin procedure.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.workloads.ycsb import YCSBConfig

#: Systems whose ordering the paper trend asserts, *strongest first*:
#: GeoTP >= SSP under contention (Fig. 5/7 directionality).  A case's
#: ``systems`` tuple inherits this convention — ``check_trend`` compares its
#: first entry against its second.
TREND_SYSTEMS = ("geotp", "ssp")

#: Seeds every case runs; >= 3 per the harness contract, 5 for stability.
DEFAULT_SEEDS = (3, 7, 11, 19, 27)

#: Allowed relative drift of aggregate committed counts vs the reference.
COMMITTED_REL_TOL = 0.25
#: Allowed absolute drift of the aggregate abort rate vs the reference.
ABORT_RATE_ABS_TOL = 0.10


@dataclass(frozen=True)
class EquivalenceCase:
    """One contended configuration family checked across systems and seeds."""

    name: str
    description: str
    config: Callable[[str, int], ExperimentConfig]
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    systems: Tuple[str, ...] = TREND_SYSTEMS


def _contended_wan(system: str, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        system=system, terminals=16, duration_ms=6_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=1.1, distributed_ratio=0.5,
                        records_per_node=100, preload_rows_per_node=100),
        seed=seed)


def _contended_wan_wide(system: str, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        system=system, terminals=24, duration_ms=6_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=0.9, distributed_ratio=0.8,
                        records_per_node=200, preload_rows_per_node=200),
        seed=seed)


#: The registered equivalence cases: high-skew narrow table and moderate-skew
#: high-distribution, both heavily exercising lock waits, timeouts and aborts.
CASES: Tuple[EquivalenceCase, ...] = (
    EquivalenceCase(
        name="contended_wan",
        description="skew 1.1, 50% distributed, 100-row tables, 16 terminals",
        config=_contended_wan),
    EquivalenceCase(
        name="contended_wan_wide",
        description="skew 0.9, 80% distributed, 200-row tables, 24 terminals",
        config=_contended_wan_wide),
)


def snapshot(config: ExperimentConfig) -> Dict[str, Any]:
    """Run one experiment and reduce it to a comparable summary dict.

    ``latency_sha256`` digests every latency sample, so two snapshots are
    equal only if the runs were bit-identical.
    """
    result = run_experiment(config)
    samples = list(result.latency.samples)
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "throughput_tps": result.throughput_tps,
        "abort_rate": result.abort_rate,
        "abort_reasons": result.collector.abort_reasons(),
        "n_samples": len(samples),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
    }


def run_case(case: EquivalenceCase) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Snapshot every (system, seed) combination of ``case``."""
    return {system: {str(seed): snapshot(case.config(system, seed))
                     for seed in case.seeds}
            for system in case.systems}


def run_all(cases: Sequence[EquivalenceCase] = CASES) -> Dict[str, Any]:
    """Snapshot every registered case."""
    return {case.name: run_case(case) for case in cases}


# ----------------------------------------------------------------- reference
def capture_reference(path: str, note: str = "") -> Dict[str, Any]:
    """Run every case on the *current* engine and write the reference file.

    Only do this when a deliberate engine-semantics change lands (and say so
    in ``note`` and the commit message): the reference is the yardstick the
    tolerance bands measure against, so refreshing it casually would let
    behaviour drift one re-pin at a time.
    """
    document = {
        "kind": "repro-equivalence-reference",
        "note": note,
        "cases": run_all(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_reference(path: str) -> Dict[str, Any]:
    """Load a reference document written by :func:`capture_reference`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# -------------------------------------------------------------------- checks
@dataclass
class EquivalenceReport:
    """Outcome of the three checks; ``violations`` empty means equivalent."""

    results: Dict[str, Any]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _aggregate(per_seed: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    committed = sum(s["committed"] for s in per_seed.values())
    aborted = sum(s["aborted"] for s in per_seed.values())
    total = committed + aborted
    return {
        "committed": committed,
        "aborted": aborted,
        "abort_rate": aborted / total if total else 0.0,
    }


def check_determinism(case: EquivalenceCase, results: Dict[str, Any],
                      violations: List[str]) -> None:
    """Same config + seed twice must be bit-identical (first seed per system).

    The first run is taken from ``results`` (already captured by
    :func:`run_case`), so only one extra run per system is paid.
    """
    for system in case.systems:
        seed = case.seeds[0]
        first = results[system][str(seed)]
        second = snapshot(case.config(system, seed))
        if first != second:
            violations.append(
                f"{case.name}/{system}/seed={seed}: two runs of the same seed "
                f"diverged ({first} != {second})")


def check_trend(case: EquivalenceCase, results: Dict[str, Any],
                violations: List[str]) -> None:
    """The case's first system must beat its second (GeoTP >= SSP by
    default) in aggregate, and on a majority of seeds."""
    stronger_name, weaker_name = case.systems[0], case.systems[1]
    stronger = results[stronger_name]
    weaker = results[weaker_name]
    agg_stronger = _aggregate(stronger)["committed"]
    agg_weaker = _aggregate(weaker)["committed"]
    if agg_stronger < agg_weaker:
        violations.append(
            f"{case.name}: aggregate {stronger_name} committed "
            f"({agg_stronger}) fell below {weaker_name} ({agg_weaker}) — the "
            f"paper's headline ordering inverted")
    wins = sum(1 for seed in stronger
               if stronger[seed]["committed"] >= weaker[seed]["committed"])
    if wins * 2 < len(stronger):
        violations.append(
            f"{case.name}: {stronger_name} beat {weaker_name} on only "
            f"{wins}/{len(stronger)} seeds")


def check_tolerance(case: EquivalenceCase, results: Dict[str, Any],
                    reference: Dict[str, Any],
                    violations: List[str],
                    committed_rel_tol: float = COMMITTED_REL_TOL,
                    abort_rate_abs_tol: float = ABORT_RATE_ABS_TOL) -> None:
    """Aggregate committed/abort mix must stay near the reference capture."""
    ref_case = reference["cases"].get(case.name)
    if ref_case is None:
        violations.append(f"{case.name}: missing from the reference capture")
        return
    for system in case.systems:
        got = _aggregate(results[system])
        want = _aggregate(ref_case[system])
        if want["committed"]:
            rel = abs(got["committed"] - want["committed"]) / want["committed"]
            if rel > committed_rel_tol:
                violations.append(
                    f"{case.name}/{system}: aggregate committed drifted "
                    f"{rel:.1%} from the reference "
                    f"({got['committed']} vs {want['committed']}, "
                    f"tol {committed_rel_tol:.0%})")
        drift = abs(got["abort_rate"] - want["abort_rate"])
        if drift > abort_rate_abs_tol:
            violations.append(
                f"{case.name}/{system}: abort rate drifted {drift:.3f} from "
                f"the reference ({got['abort_rate']:.3f} vs "
                f"{want['abort_rate']:.3f}, tol {abort_rate_abs_tol})")


def run_equivalence(reference: Dict[str, Any],
                    cases: Sequence[EquivalenceCase] = CASES) -> EquivalenceReport:
    """Run every check against ``reference``; empty violations == equivalent."""
    report = EquivalenceReport(results={})
    for case in cases:
        results = run_case(case)
        report.results[case.name] = results
        check_determinism(case, results, report.violations)
        check_trend(case, results, report.violations)
        check_tolerance(case, results, reference, report.violations)
    return report
