"""Re-export of the Zipfian generator under the workloads namespace.

The generator itself lives with the other random utilities in
:mod:`repro.sim.rng`; workload code imports it from here so that the workload
package is self-describing.
"""

from repro.sim.rng import ZipfianGenerator

__all__ = ["ZipfianGenerator"]
