"""Figure 8 — latency CDFs with 60 % distributed transactions."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig8_latency_cdf


def test_fig8_latency_cdf(benchmark):
    # Low and medium contention carry the signal in a short window; the
    # highest-skew CDF needs longer runs (see EXPERIMENTS.md).
    result = benchmark.pedantic(
        lambda: fig8_latency_cdf(contentions=("low", "medium"),
                                 duration_ms=BENCH_DURATION_MS,
                                 terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    for contention in ("low", "medium"):
        geotp = result[contention]["geotp"]
        ssp = result[contention]["ssp"]
        assert geotp["mean"] < ssp["mean"]
        # p99 is dominated by lock-wait-timeout-bound stragglers (~5 s) for
        # both systems in short windows; allow a modest tolerance while still
        # requiring GeoTP's tail to be in the same ballpark or better.
        assert geotp["p99"] <= ssp["p99"] * 1.3
        assert len(geotp["cdf"]) > 0
