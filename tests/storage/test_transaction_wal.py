"""Unit tests for the XA state machine and the write-ahead log."""

import pytest

from repro.storage import LocalTransaction, LogRecordType, TxnState, WriteAheadLog
from repro.storage.transaction import IllegalTransitionError


def make_txn():
    return LocalTransaction(xid="x1", global_txn_id="g1", started_at=0.0)


def test_normal_commit_path():
    txn = make_txn()
    txn.mark_end()
    assert txn.state is TxnState.IDLE
    txn.mark_prepared()
    assert txn.state is TxnState.PREPARED
    txn.mark_committed(now=10.0)
    assert txn.state is TxnState.COMMITTED
    assert txn.is_finished


def test_prepare_directly_from_active_allowed():
    """The decentralized prepare may fold END+PREPARE together."""
    txn = make_txn()
    txn.mark_prepared()
    assert txn.state is TxnState.PREPARED


def test_commit_without_prepare_rejected():
    txn = make_txn()
    with pytest.raises(IllegalTransitionError):
        txn.mark_committed(now=1.0)


def test_one_phase_commit_from_active():
    txn = make_txn()
    txn.mark_committed_one_phase(now=5.0)
    assert txn.state is TxnState.COMMITTED


def test_rollback_allowed_from_prepared_but_not_committed():
    txn = make_txn()
    txn.mark_prepared()
    txn.mark_aborted(now=3.0)
    assert txn.state is TxnState.ABORTED

    committed = make_txn()
    committed.mark_committed_one_phase(now=1.0)
    with pytest.raises(IllegalTransitionError):
        committed.mark_aborted(now=2.0)


def test_decision_cannot_reverse_after_commit():
    """AC2: a process cannot reverse its decision."""
    txn = make_txn()
    txn.mark_prepared()
    txn.mark_committed(now=1.0)
    with pytest.raises(IllegalTransitionError):
        txn.mark_aborted(now=2.0)
    with pytest.raises(IllegalTransitionError):
        txn.mark_prepared()


def test_lock_contention_span_computed_from_first_lock_to_finish():
    txn = make_txn()
    assert txn.lock_contention_span_ms is None
    txn.first_lock_at = 10.0
    txn.mark_prepared()
    txn.mark_committed(now=210.0)
    assert txn.lock_contention_span_ms == pytest.approx(200.0)


def test_wal_append_and_query():
    wal = WriteAheadLog()
    wal.append(LogRecordType.PREPARE, "x1", 1.0)
    wal.append(LogRecordType.COMMIT, "x1", 2.0)
    wal.append(LogRecordType.PREPARE, "x2", 3.0)
    assert len(wal) == 3
    assert wal.last_decision("x1") is LogRecordType.COMMIT
    assert wal.last_decision("x2") is None
    assert wal.prepared_xids() == ["x2"]
    assert [r.record_type for r in wal.records_for("x1")] == [
        LogRecordType.PREPARE, LogRecordType.COMMIT]


def test_wal_abort_decision_recorded():
    wal = WriteAheadLog()
    wal.append(LogRecordType.PREPARE, "x", 1.0)
    wal.append(LogRecordType.ABORT, "x", 2.0)
    assert wal.last_decision("x") is LogRecordType.ABORT
    assert wal.prepared_xids() == []


def test_wal_truncate():
    wal = WriteAheadLog()
    wal.append(LogRecordType.COMMIT, "x", 1.0)
    wal.truncate()
    assert len(wal) == 0


# ---------------------------------------------------------------- checkpointing
def test_wal_checkpoint_drops_old_decided_records():
    wal = WriteAheadLog(checkpoint_records=4)
    for i in range(6):
        wal.append(LogRecordType.PREPARE, f"t{i}", float(i))
        wal.append(LogRecordType.COMMIT, f"t{i}", float(i) + 0.5)
    # Auto-checkpointing kept the log under twice the horizon throughout.
    assert len(wal) < 2 * 4
    assert wal.checkpoints > 0
    # The newest records survive verbatim, in order.
    xids = [r.xid for r in wal.records()]
    assert xids == sorted(xids, key=xids.index)  # order preserved
    assert wal.last_decision("t5") is LogRecordType.COMMIT


def test_wal_checkpoint_keeps_in_doubt_branches_forever():
    wal = WriteAheadLog(checkpoint_records=4)
    wal.append(LogRecordType.PREPARE, "in-doubt", 0.0)  # never decided
    for i in range(50):
        wal.append(LogRecordType.PREPARE, f"t{i}", float(i + 1))
        wal.append(LogRecordType.COMMIT, f"t{i}", float(i + 1) + 0.5)
    assert len(wal) < 2 * 4 + 1
    # Recovery's two queries still see the undecided branch.
    assert "in-doubt" in wal.prepared_xids()
    assert wal.last_decision("in-doubt") is None
    assert wal.records_for("in-doubt")


def test_wal_checkpoint_is_explicit_and_counts_drops():
    wal = WriteAheadLog(checkpoint_records=None)  # retain everything
    for i in range(100):
        wal.append(LogRecordType.PREPARE, f"t{i}", float(i))
        wal.append(LogRecordType.ABORT, f"t{i}", float(i) + 0.5)
    assert len(wal) == 200
    assert wal.checkpoint() == 0  # None horizon: no-op
    wal.checkpoint_records = 10
    dropped = wal.checkpoint()
    assert dropped == 190
    assert len(wal) == 10


def test_wal_checkpoint_rejects_non_positive_horizon():
    with pytest.raises(ValueError):
        WriteAheadLog(checkpoint_records=0)
