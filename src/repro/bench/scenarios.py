"""Declarative scenario registry for the experiment layer.

Every paper table/figure is expressed here as a :class:`ScenarioSpec`: a base
:class:`~repro.bench.runner.ExperimentConfig` plus named parameter *axes*
(e.g. ``system x terminals`` or ``contention x system x ratio``).  A scenario
expands into a :class:`SweepSpec`, whose cartesian product of axis values
yields independent, picklable :class:`SweepPoint`\\ s that
:class:`~repro.bench.parallel.SweepRunner` can execute serially or across a
process pool.

Three layers use the registry:

* ``repro.bench.experiments`` — each ``fig*``/``table1`` function looks up its
  scenario, overrides scale knobs, runs the sweep and reshapes the rows into
  the dict the paper plots;
* ``python -m repro.bench`` — the CLI lists scenarios and runs any of them
  with ``--workers/--duration-ms/--terminals/--seed`` overrides;
* the pytest benchmarks — reduced-scale runs share :data:`BENCH_SCALE` instead
  of re-declaring scale constants per file.

Adding a new scenario is declarative: register a ``ScenarioSpec`` with a base
config, axes and (when an axis does not map 1:1 onto a config field) a
module-level *apply* function — no new runner loop is ever written.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.runner import ExperimentConfig
from repro.cluster.fleet import FleetConfig, RetryPolicy, routing_policy_names
from repro.cluster.topology import TopologyConfig
from repro.core.config import GeoTPConfig
from repro.plugins import (
    drain_scenario_hooks,
    get_system_plugin,
    load_plugins,
    normalize_system,
    normalize_workload,
    system_plugins,
)
from repro.recovery.failures import FaultEvent, FaultKind, FaultPlan
from repro.sim.latency import DynamicLatency, RandomLatency
from repro.sim.rng import SeededRNG
from repro.workloads.arrivals import ARRIVAL_PROCESSES, ArrivalConfig
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.ycsb import CONTENTION_SKEW, YCSBConfig

# Plugins must be registered before the scenario definitions below: the
# ablation variants and capability lookups are derived from the registry.
load_plugins()


# --------------------------------------------------------------------- scales
@dataclass(frozen=True)
class Scale:
    """A reduced-scale preset: how long and how wide each experiment point runs."""

    duration_ms: float
    warmup_ms: float
    terminals: int


#: Default scale of the experiment functions (EXPERIMENTS.md uses larger values).
QUICK_SCALE = Scale(duration_ms=10_000.0, warmup_ms=2_000.0, terminals=48)
#: Scale shared by the pytest benchmark suite (see ``benchmarks/conftest.py``).
BENCH_SCALE = Scale(duration_ms=20_000.0, warmup_ms=2_000.0, terminals=32)


# ----------------------------------------------------------------- sweep model
@dataclass(frozen=True)
class Axis:
    """One named sweep dimension.

    ``path`` optionally names the dotted ``ExperimentConfig`` attribute the
    values are written to (e.g. ``"ycsb.skew"``).  Without a path, a value is
    applied automatically when ``name`` is an ``ExperimentConfig`` field;
    otherwise the scenario's *apply* function is responsible for it.
    """

    name: str
    values: Tuple[Any, ...]
    path: Optional[str] = None

    def __post_init__(self) -> None:
        values = tuple(self.values)
        if not values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        # The system axis is canonicalized at declaration time so aliases
        # (``ScalarDB+``) resolve identically at every entry point and sweep
        # params always carry registry names.
        if self.name == "system" and self.path is None:
            values = tuple(normalize_system(value) for value in values)
        object.__setattr__(self, "values", values)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded experiment point: its axis values and the full config."""

    index: int
    params: Dict[str, Any]
    config: ExperimentConfig


_CONFIG_FIELDS = {f.name for f in fields(ExperimentConfig)}


def set_config_param(config: ExperimentConfig, path: str, value: Any) -> None:
    """Set a dotted attribute path (e.g. ``"ycsb.skew"``) on ``config``."""
    target: Any = config
    parts = path.split(".")
    for part in parts[:-1]:
        target = getattr(target, part)
    if not hasattr(target, parts[-1]):
        raise AttributeError(f"config has no parameter {path!r}")
    setattr(target, parts[-1], value)


@dataclass(frozen=True)
class SweepSpec:
    """A concrete sweep: base config x axes, ready for expansion."""

    name: str
    base: ExperimentConfig
    axes: Tuple[Axis, ...]
    #: Parameters shared by every point, passed to ``apply`` alongside the
    #: axis values (e.g. the fixed distributed ratio of Figure 8).
    fixed: Dict[str, Any] = field(default_factory=dict)
    #: Module-level callable ``(config, params) -> config`` handling axis
    #: names that do not map directly onto config attributes.
    apply: Optional[Callable[[ExperimentConfig, Dict[str, Any]], ExperimentConfig]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in sweep {self.name!r}")

    def size(self) -> int:
        """Number of experiment points the sweep expands into."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def points(self) -> List[SweepPoint]:
        """Expand the cartesian product of all axes, in declaration order.

        Each point gets its own deep copy of the base config, so points are
        independently mutable and safely picklable across worker processes.
        """
        out: List[SweepPoint] = []
        combos = itertools.product(*(axis.values for axis in self.axes))
        for index, combo in enumerate(combos):
            params = dict(self.fixed)
            params.update(zip((axis.name for axis in self.axes), combo))
            config = copy.deepcopy(self.base)
            for axis, value in zip(self.axes, combo):
                path = axis.path
                if path is None and axis.name in _CONFIG_FIELDS:
                    path = axis.name
                if path is not None:
                    set_config_param(config, path, value)
            if self.apply is not None:
                config = self.apply(config, params) or config
            out.append(SweepPoint(index=index, params=params, config=config))
        return out


# ------------------------------------------------------------------- registry
@dataclass(frozen=True)
class ScenarioSpec:
    """A registered, named experiment family (one paper figure or table part)."""

    name: str
    description: str
    base: ExperimentConfig
    axes: Tuple[Axis, ...]
    fixed: Dict[str, Any] = field(default_factory=dict)
    apply: Optional[Callable[[ExperimentConfig, Dict[str, Any]], ExperimentConfig]] = None
    #: Optional family name for generated scenario namespaces (e.g. the
    #: chaos matrix): family members collapse into one summary row in the
    #: registry tables instead of hundreds of individual lines.  Register
    #: the family's description with :func:`register_family`.
    family: Optional[str] = None

    def sweep(self, axes: Optional[Mapping[str, Sequence[Any]]] = None,
              fixed: Optional[Mapping[str, Any]] = None,
              **overrides: Any) -> SweepSpec:
        """Derive a concrete :class:`SweepSpec` from this scenario.

        ``axes`` replaces the values of named axes (axis order is preserved);
        ``fixed`` merges into the scenario's fixed parameters; keyword
        ``overrides`` are written onto a copy of the base config — plain field
        names or dotted paths spelled with ``__`` (``ycsb__skew=1.5``).
        ``None`` overrides are ignored so callers can pass optional knobs
        straight through.
        """
        base = copy.deepcopy(self.base)
        for key, value in overrides.items():
            if value is None:
                continue
            if key == "system":
                value = normalize_system(value)
            elif key == "workload":
                value = normalize_workload(value)
                if value != normalize_workload(base.workload):
                    # The scenario's workload_config belongs to its declared
                    # workload; switching workloads falls back to the new
                    # plugin's dedicated field / default config.
                    base.workload_config = None
            set_config_param(base, key.replace("__", "."), value)
        new_axes = []
        axes = dict(axes or {})
        for axis in self.axes:
            if axis.name in axes:
                new_axes.append(replace(axis, values=tuple(axes.pop(axis.name))))
            else:
                new_axes.append(axis)
        if axes:
            raise KeyError(f"scenario {self.name!r} has no axes {sorted(axes)}")
        merged_fixed = dict(self.fixed)
        merged_fixed.update(fixed or {})
        return SweepSpec(name=self.name, base=base, axes=tuple(new_axes),
                         fixed=merged_fixed, apply=self.apply)


SCENARIOS: Dict[str, ScenarioSpec] = {}

#: Family name -> one-line description, for generated scenario namespaces
#: (the registry tables show one row per family instead of one per member).
SCENARIO_FAMILIES: Dict[str, str] = {}


def register(scenario: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the global registry (last registration wins)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def register_family(name: str, description: str) -> None:
    """Describe a scenario family (see :attr:`ScenarioSpec.family`)."""
    SCENARIO_FAMILIES[name] = description


def family_members(family: str) -> List[ScenarioSpec]:
    """Registered scenarios belonging to ``family``, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)
            if SCENARIOS[name].family == family]


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


# ------------------------------------------------------------ config factories
def default_ycsb(skew: float = CONTENTION_SKEW["medium"],
                 distributed_ratio: float = 0.2, **kwargs: Any) -> YCSBConfig:
    """The YCSB configuration the experiment functions default to."""
    return YCSBConfig(skew=skew, distributed_ratio=distributed_ratio, **kwargs)


def _base(system: str = "geotp", scale: Scale = QUICK_SCALE,
          **kwargs: Any) -> ExperimentConfig:
    kwargs.setdefault("ycsb", default_ycsb())
    kwargs.setdefault("terminals", scale.terminals)
    kwargs.setdefault("duration_ms", scale.duration_ms)
    kwargs.setdefault("warmup_ms", scale.warmup_ms)
    return ExperimentConfig(system=system, **kwargs)


# ------------------------------------------------------------- apply functions
# These must stay module-level functions: sweeps reference them by identity
# and the expanded points they produce must remain picklable.

def apply_ycsb_params(config: ExperimentConfig,
                      params: Dict[str, Any]) -> ExperimentConfig:
    """Apply the common YCSB axis names onto ``config.ycsb``."""
    ycsb = config.ycsb
    if "contention" in params:
        ycsb.skew = CONTENTION_SKEW[params["contention"]]
    if "skew" in params:
        ycsb.skew = params["skew"]
    if "ratio" in params:
        ycsb.distributed_ratio = params["ratio"]
    if "length" in params:
        ycsb.operations_per_transaction = params["length"]
    return config


def _apply_fig1(config: ExperimentConfig, params: Dict[str, Any]) -> ExperimentConfig:
    config.topology = TopologyConfig.from_rtts([10.0, float(params["ds2_latency_ms"])])
    return apply_ycsb_params(config, params)


def _apply_fig9(config: ExperimentConfig, params: Dict[str, Any]) -> ExperimentConfig:
    config.tpcc = TPCCConfig(mix={params["txn_type"]: 1.0},
                             distributed_ratio=params["ratio"],
                             warehouses_per_node=4)
    return config


def _apply_fig10_mean(config: ExperimentConfig,
                      params: Dict[str, Any]) -> ExperimentConfig:
    mean = float(params["mean_rtt_ms"])
    config.topology = TopologyConfig.from_rtts([max(mean - 10.0, 1.0), mean,
                                                mean + 10.0])
    return config


def _apply_fig10_std(config: ExperimentConfig,
                     params: Dict[str, Any]) -> ExperimentConfig:
    std = float(params["std_ms"])
    mean = float(params.get("mean_rtt_ms", 40.0))
    config.topology = TopologyConfig.from_rtts([max(mean - std, 1.0), mean,
                                                mean + std])
    return config


#: Base per-link RTTs of the random-latency experiment (Fig. 11a).
FIG11A_BASE_RTTS = (10.0, 27.0, 73.0, 151.0)


def _apply_fig11a(config: ExperimentConfig,
                  params: Dict[str, Any]) -> ExperimentConfig:
    repeat = params["repeat"]
    max_factor = params.get("max_factor", 1.5)
    models = [RandomLatency(base, max_factor=max_factor,
                            rng=SeededRNG(100 + repeat * 10 + i))
              for i, base in enumerate(FIG11A_BASE_RTTS)]
    config.topology = TopologyConfig.from_latency_models(models)
    config.seed = repeat
    return apply_ycsb_params(config, params)


def _apply_fig11b(config: ExperimentConfig,
                  params: Dict[str, Any]) -> ExperimentConfig:
    phase_ms = params["phase_ms"]
    phases = params["phases"]
    rng = SeededRNG(42)
    schedules = []
    for _node in range(4):
        schedule = [(phase * phase_ms, rng.uniform(10.0, 200.0))
                    for phase in range(phases)]
        schedules.append(DynamicLatency(schedule))
    config.topology = TopologyConfig.from_latency_models(schedules)
    config.duration_ms = phase_ms * phases
    config.warmup_ms = phase_ms / 4
    config.timeline_bucket_ms = phase_ms / 4
    # Capability, not name comparison: any system whose plugin advertises
    # active probing gets it when link latencies change outside the workload.
    config.active_probing = get_system_plugin(config.system).supports_active_probing
    return config


def _derive_ablation_builders() -> Dict[str, Tuple[str, Optional[Callable[[], GeoTPConfig]]]]:
    """Variant name -> (system, config factory), derived from the registry.

    Reference systems (``ablation_reference``) run unmodified under their own
    name; every ``SystemPlugin.ablations`` entry contributes a
    ``<system>_<suffix>`` variant, in registration order.
    """
    builders: Dict[str, Tuple[str, Optional[Callable[[], GeoTPConfig]]]] = {}
    for plugin in system_plugins():
        if plugin.ablation_reference:
            builders[plugin.name] = (plugin.name, None)
    for plugin in system_plugins():
        for suffix, factory in plugin.ablations.items():
            builders[f"{plugin.name}_{suffix}"] = (plugin.name, factory)
    return builders


#: The Figure 12 ablation variants: variant name -> (system, GeoTP config factory).
ABLATION_BUILDERS = _derive_ablation_builders()


def _apply_fig12(config: ExperimentConfig,
                 params: Dict[str, Any]) -> ExperimentConfig:
    system, geotp_factory = ABLATION_BUILDERS[params["variant"]]
    config.system = system
    config.geotp = geotp_factory() if geotp_factory else None
    return apply_ycsb_params(config, params)


def _apply_fig14_rounds(config: ExperimentConfig,
                        params: Dict[str, Any]) -> ExperimentConfig:
    rounds = params["rounds"]
    config.ycsb.operations_per_transaction = max(6, rounds)
    config.ycsb.rounds = rounds
    return apply_ycsb_params(config, params)


def _apply_fig15(config: ExperimentConfig,
                 params: Dict[str, Any]) -> ExperimentConfig:
    if params["deployment"] == "multi":
        config.topology = TopologyConfig.multi_middleware()
    else:
        config.topology = TopologyConfig.paper_default()
    return config


#: Table I deployment scenarios: per-node SQL dialects.
HETEROGENEOUS_SCENARIOS = {
    "S1": ["mysql", "mysql", "mysql", "mysql"],
    "S2": ["postgresql", "mysql", "postgresql", "mysql"],
    "S3": ["postgresql", "postgresql", "postgresql", "postgresql"],
}


def _apply_table1(config: ExperimentConfig,
                  params: Dict[str, Any]) -> ExperimentConfig:
    dialects = HETEROGENEOUS_SCENARIOS[params["deployment"]]
    config.topology = TopologyConfig.paper_default(dialects=dialects)
    return apply_ycsb_params(config, params)


def _apply_extra_geotp(config: ExperimentConfig,
                       params: Dict[str, Any]) -> ExperimentConfig:
    knobs = {k: v for k, v in params.items()
             if k in ("ewma_alpha", "hotspot_capacity", "admission_max_retries")}
    config.geotp = GeoTPConfig(**knobs)
    return config


# --------------------------------------------------------------- fault family
#: The fault scenarios compare GeoTP against two 2PC baselines; the paper's
#: §V-A recovery protocol runs identically under all three coordinators.
FAULT_SYSTEMS = ("ssp", "ssp_local", "geotp")

#: When the fault strikes / how long it lasts, as fractions of the run
#: duration — so CLI ``--duration-ms`` overrides keep the fault inside the
#: measured window (injection at 40 % sits past the default warm-up at every
#: scale the suite uses).
FAULT_AT_FRACTION = 0.4
FAULT_DURATION_FRACTION = 0.15


def fault_window(duration_ms: float) -> Tuple[float, float]:
    """``(at_ms, duration_ms)`` of the fault for a run of ``duration_ms``."""
    return duration_ms * FAULT_AT_FRACTION, duration_ms * FAULT_DURATION_FRACTION


def _fault_plan(config: ExperimentConfig, kind: FaultKind,
                **kwargs: Any) -> ExperimentConfig:
    at_ms, duration_ms = fault_window(config.duration_ms)
    config.fault_plan = FaultPlan(events=(
        FaultEvent(kind=kind, at_ms=at_ms, duration_ms=duration_ms, **kwargs),))
    return config


def _apply_fault_middleware_crash(config: ExperimentConfig,
                                  params: Dict[str, Any]) -> ExperimentConfig:
    return _fault_plan(config, FaultKind.MIDDLEWARE_CRASH)


def _apply_fault_ds_crash(config: ExperimentConfig,
                          params: Dict[str, Any]) -> ExperimentConfig:
    return _fault_plan(config, FaultKind.DATASOURCE_CRASH, target="ds1")


def _apply_fault_region_outage(config: ExperimentConfig,
                               params: Dict[str, Any]) -> ExperimentConfig:
    return _fault_plan(config, FaultKind.REGION_OUTAGE, target="ds2")


def _apply_fault_latency_spike(config: ExperimentConfig,
                               params: Dict[str, Any]) -> ExperimentConfig:
    return _fault_plan(config, FaultKind.LATENCY_SPIKE, target=None,
                       factor=params.get("factor", 4.0))


# --------------------------------------------------------------- fleet family
#: Systems the fleet scenarios compare (the fleet layer is system-agnostic;
#: two coordinators suffice to show the routing/failover machinery composes
#: with both the 2PC baseline and GeoTP).
FLEET_SYSTEMS = ("ssp", "geotp")

#: Middleware killed by ``fleet_failover`` (the middle one of three).
FLEET_FAILOVER_TARGET = "dm2"


def _apply_fleet_scaleout(config: ExperimentConfig,
                          params: Dict[str, Any]) -> ExperimentConfig:
    """Pin a co-located fleet layout for every K.

    ``TopologyConfig.multi_middleware`` keeps the legacy geo-split layout at
    K=2 (one coordinator remote, the Fig. 15 deployment); the scale-out sweep
    wants the K axis to vary *only* the coordinator count, so every fleet
    size uses coordinators in the client region.
    """
    if config.middleware_count > 1:
        config.topology = TopologyConfig.multi_middleware(
            num_middlewares=config.middleware_count,
            middleware_regions=["beijing"] * config.middleware_count)
    return config


def _apply_fleet_failover(config: ExperimentConfig,
                          params: Dict[str, Any]) -> ExperimentConfig:
    """Kill one of the three fleet middlewares inside the fault window."""
    at_ms, duration_ms = fault_window(config.duration_ms)
    config.fault_plan = FaultPlan(events=(
        FaultEvent(kind=FaultKind.MIDDLEWARE_CRASH, at_ms=at_ms,
                   duration_ms=duration_ms, target=FLEET_FAILOVER_TARGET),))
    return config


# --------------------------------------------------------- registered scenarios
#: The five systems compared in the overall evaluation (Fig. 5).
OVERALL_SYSTEMS = ("ssp", "ssp_local", "scalardb", "scalardb_plus", "geotp")
#: The systems swept against the distributed-transaction ratio (Figs. 7 and 9).
DIST_RATIO_SYSTEMS = ("ssp", "quro", "chiller", "geotp")

register(ScenarioSpec(
    name="fig1b",
    description="Centralized-txn latency vs the DM-DS2 RTT (motivation, Fig. 1b)",
    base=_base("ssp", terminals=8,
               ycsb=default_ycsb(distributed_ratio=0.2, home_node=0,
                                 records_per_node=5_000)),
    axes=(Axis("contention", ("low", "medium")),
          Axis("ds2_latency_ms", (20, 40, 60, 80, 100))),
    apply=_apply_fig1,
))

register(ScenarioSpec(
    name="fig5_overall",
    description="Throughput vs client terminals for the five systems (Fig. 5)",
    base=_base(),
    axes=(Axis("system", OVERALL_SYSTEMS), Axis("terminals", (16, 48, 96))),
))

register(ScenarioSpec(
    name="fig6_breakdown",
    description="Resource proxies and per-phase latency breakdown (Fig. 6)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")),),
))

register(ScenarioSpec(
    name="fig7_dist_ratio_ycsb",
    description="YCSB throughput/latency vs distributed-transaction ratio (Fig. 7)",
    base=_base(),
    axes=(Axis("contention", ("low", "medium", "high")),
          Axis("system", DIST_RATIO_SYSTEMS),
          Axis("ratio", (0.2, 0.6, 1.0))),
    apply=apply_ycsb_params,
))

register(ScenarioSpec(
    name="fig8_latency_cdf",
    description="Latency CDFs with a fixed distributed ratio (Fig. 8)",
    base=_base(),
    axes=(Axis("contention", ("low", "medium", "high")),
          Axis("system", ("ssp", "ssp_local", "geotp"))),
    fixed={"ratio": 0.6},
    apply=apply_ycsb_params,
))

register(ScenarioSpec(
    name="fig9_dist_ratio_tpcc",
    description="TPC-C Payment/NewOrder vs distributed-transaction ratio (Fig. 9)",
    base=_base(workload="tpcc"),
    axes=(Axis("txn_type", ("payment", "new_order")),
          Axis("system", DIST_RATIO_SYSTEMS),
          Axis("ratio", (0.2, 0.6, 1.0))),
    apply=_apply_fig9,
))

register(ScenarioSpec(
    name="fig10_mean_sweep",
    description="Sensitivity to the mean network RTT (Fig. 10a)",
    base=_base(),
    axes=(Axis("mean_rtt_ms", (20, 40, 60, 80)), Axis("system", ("ssp", "geotp"))),
    apply=_apply_fig10_mean,
))

register(ScenarioSpec(
    name="fig10_std_sweep",
    description="Sensitivity to the RTT spread at a fixed mean (Fig. 10b)",
    base=_base(),
    axes=(Axis("std_ms", (0, 20, 40)), Axis("system", ("ssp", "geotp"))),
    apply=_apply_fig10_std,
))

register(ScenarioSpec(
    name="fig11a_random_latency",
    description="Random per-message latency fluctuations (Fig. 11a)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")),
          Axis("ratio", (0.2, 0.6, 1.0)),
          Axis("repeat", (0, 1, 2))),
    fixed={"max_factor": 1.5},
    apply=_apply_fig11a,
))

register(ScenarioSpec(
    name="fig11b_dynamic_latency",
    description="Online adaptivity to scheduled latency changes (Fig. 11b)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")),),
    fixed={"phase_ms": 10_000.0, "phases": 4},
    apply=_apply_fig11b,
))

register(ScenarioSpec(
    name="fig11b_fine",
    description="Dynamic latency with fine-grained 1 s phases over 320 s "
                "(stresses DynamicLatency schedule lookups)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")),),
    fixed={"phase_ms": 1_000.0, "phases": 320},
    apply=_apply_fig11b,
))

register(ScenarioSpec(
    name="fig12_ablation",
    description="O1 / O1-O2 / O1-O3 ablation across skew factors (Fig. 12)",
    base=_base(),
    axes=(Axis("skew", (0.3, 0.9, 1.5)),
          Axis("variant", tuple(ABLATION_BUILDERS))),
    fixed={"ratio": 0.5},
    apply=_apply_fig12,
))

register(ScenarioSpec(
    name="fig13_yugabyte",
    description="Comparison against a YugabyteDB-like database (Fig. 13)",
    base=_base(),
    axes=(Axis("contention", ("low", "medium", "high")),
          Axis("system", ("ssp", "geotp", "yugabyte"))),
    apply=apply_ycsb_params,
))

register(ScenarioSpec(
    name="fig14_length",
    description="Impact of transaction length (Fig. 14a)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")), Axis("length", (5, 15, 25))),
    apply=apply_ycsb_params,
))

register(ScenarioSpec(
    name="fig14_rounds",
    description="Impact of client interaction rounds (Fig. 14b/c)",
    base=_base(),
    axes=(Axis("contention", ("low", "medium")),
          Axis("system", ("ssp", "geotp")),
          Axis("rounds", (1, 3, 6))),
    apply=_apply_fig14_rounds,
))

register(ScenarioSpec(
    name="fig15_multi_region",
    description="Single- vs multi-middleware deployment (Fig. 15)",
    base=_base(),
    axes=(Axis("system", ("ssp", "geotp")),
          Axis("deployment", ("single", "multi"))),
    apply=_apply_fig15,
))

register(ScenarioSpec(
    name="table1_heterogeneous",
    description="Heterogeneous MySQL/PostgreSQL deployments (Table I)",
    base=_base(),
    axes=(Axis("deployment", tuple(HETEROGENEOUS_SCENARIOS)),
          Axis("ratio", (0.25, 0.75)),
          Axis("system", ("ssp", "geotp"))),
    apply=_apply_table1,
))

register(ScenarioSpec(
    name="extra_ewma_alpha",
    description="GeoTP sensitivity to the latency-monitor EWMA alpha",
    base=_base(),
    axes=(Axis("ewma_alpha", (0.2, 0.8)),),
    apply=_apply_extra_geotp,
))

register(ScenarioSpec(
    name="extra_hotspot_capacity",
    description="GeoTP sensitivity to the hotspot-statistics capacity",
    base=_base(ycsb=default_ycsb(skew=CONTENTION_SKEW["high"])),
    axes=(Axis("hotspot_capacity", (64, 4096)),),
    apply=_apply_extra_geotp,
))

register(ScenarioSpec(
    name="extra_admission_retries",
    description="GeoTP sensitivity to the admission-control retry budget",
    base=_base(ycsb=default_ycsb(skew=CONTENTION_SKEW["high"])),
    axes=(Axis("admission_max_retries", (0, 10)),),
    apply=_apply_extra_geotp,
))

register(ScenarioSpec(
    name="fault_middleware_crash",
    description="Crash-and-restart the middleware mid-run; §V-A recovery "
                "resolves the in-doubt branches (fault at 40% of the run, "
                "down for 15%)",
    base=_base(),
    axes=(Axis("system", FAULT_SYSTEMS),),
    apply=_apply_fault_middleware_crash,
))

register(ScenarioSpec(
    name="fault_ds_crash",
    description="Crash-and-restart data source ds1; unprepared branches are "
                "lost, siblings roll back, prepared ones recover",
    base=_base(),
    axes=(Axis("system", FAULT_SYSTEMS),),
    apply=_apply_fault_ds_crash,
))

register(ScenarioSpec(
    name="fault_region_outage",
    description="Cut every link to the ds2 region (messages parked until the "
                "heal); throughput dips and self-recovers without restarts",
    base=_base(),
    axes=(Axis("system", FAULT_SYSTEMS),),
    apply=_apply_fault_region_outage,
))

register(ScenarioSpec(
    name="fault_latency_spike",
    description="Transient 4x latency degradation on every WAN link "
                "(a routing flap, not an outage)",
    base=_base(),
    axes=(Axis("system", FAULT_SYSTEMS),),
    apply=_apply_fault_latency_spike,
))

register(ScenarioSpec(
    name="fleet_scaleout",
    description="Scale-out efficiency of a co-located K-middleware fleet "
                "(K=1..4) vs the single-coordinator baseline",
    base=_base(fleet=FleetConfig(), retry=RetryPolicy()),
    axes=(Axis("system", FLEET_SYSTEMS),
          Axis("middleware_count", (1, 2, 3, 4))),
    apply=_apply_fleet_scaleout,
))

register(ScenarioSpec(
    name="fleet_failover",
    description="Kill one of three fleet middlewares mid-run; terminals "
                "fail over, §V-A recovery resolves the dead coordinator's "
                "in-doubt branches while the survivors serve",
    base=_base(middleware_count=3, fleet=FleetConfig(), retry=RetryPolicy()),
    axes=(Axis("system", FLEET_SYSTEMS),),
    apply=_apply_fleet_failover,
))

register(ScenarioSpec(
    name="fleet_policies",
    description="Routing-policy comparison (round_robin / region_affinity / "
                "least_outstanding) on a three-middleware fleet",
    base=_base(middleware_count=3, fleet=FleetConfig(), retry=RetryPolicy()),
    axes=(Axis("system", ("geotp",)),
          Axis("routing_policy", tuple(routing_policy_names()),
               path="fleet.routing_policy")),
))

# ---------------------------------------------------------- open-system family
#: Systems the open-system load sweeps compare: the plain 2PC baseline, the
#: admission-controlled baseline and GeoTP (which combines admission control
#: with its latency optimisations).
LOAD_SWEEP_SYSTEMS = ("ssp", "scalardb_plus", "geotp")

#: Offered-load axis of ``load_sweep``, in arrivals per simulated second.
#: Calibrated against the default topology/YCSB mix so the sweep brackets
#: every system's knee: all three saturate between 100 and 200 tps (SSP
#: ~100, ScalarDB+ ~120, GeoTP ~170), so the tail points are 2-8x past
#: saturation — goodput plateaus or declines while p99 grows >5x and the
#: client pool sheds most arrivals.
LOAD_SWEEP_RATES = (50.0, 100.0, 200.0, 400.0, 800.0)

#: YCSB table for the open-system families: moderate keyspace, **fully
#: materialised at load time**.  Lazily-created cold rows would otherwise grow
#: the modelled database for the entire run (the zipfian tail keeps finding
#: fresh keys), which a long saturated point cannot distinguish from a
#: middleware leak.  With the table preloaded, database state is identical at
#: every run length and the flat-RSS property being measured is the
#: middleware's and the metrics pipeline's alone.  Contention is governed by
#: the skew, not the table size, so the knee story is unchanged.
def _open_system_ycsb() -> YCSBConfig:
    return default_ycsb(records_per_node=10_000, preload_rows_per_node=10_000)


register(ScenarioSpec(
    name="load_sweep",
    description="Open-system goodput/latency knee: Poisson offered load swept "
                "past every system's saturation point (streaming O(1)-memory "
                "metrics; reports drop/admission counters per point)",
    base=_base(arrival=ArrivalConfig(process="poisson", rate_tps=100.0,
                                     max_clients=256),
               ycsb=_open_system_ycsb()),
    axes=(Axis("system", LOAD_SWEEP_SYSTEMS),
          Axis("rate_tps", LOAD_SWEEP_RATES, path="arrival.rate_tps")),
))

register(ScenarioSpec(
    name="load_shapes",
    description="Arrival-shape comparison at a near-knee mean rate: the same "
                "150 tps offered as steady Poisson, bursty MMPP flash crowds "
                "and a diurnal wave (burstiness, not the mean, drives the "
                "tail)",
    base=_base(arrival=ArrivalConfig(rate_tps=150.0, max_clients=256,
                                     period_ms=8_000.0),
               ycsb=_open_system_ycsb()),
    axes=(Axis("system", ("ssp", "geotp")),
          Axis("process", ARRIVAL_PROCESSES, path="arrival.process")),
))

register(ScenarioSpec(
    name="perf_scale",
    description="Medium-scale two-system sweep timed by the perf harness "
                "(lock-manager and event-heap costs only show at this scale)",
    base=_base(terminals=48, duration_ms=10_000.0, warmup_ms=2_000.0),
    axes=(Axis("system", ("ssp", "geotp")),),
))

register(ScenarioSpec(
    name="smoke",
    description="Tiny two-system sweep for CI smoke tests and quick sanity runs",
    base=_base(terminals=4, duration_ms=2_500.0, warmup_ms=500.0,
               ycsb=default_ycsb(skew=0.5, records_per_node=1_000,
                                 preload_rows_per_node=200)),
    axes=(Axis("system", ("ssp", "geotp")),),
))


# --------------------------------------------------------------- chaos matrix
# The generated chaos_* namespace (hundreds of fault x latency x arrival x
# workload combinations) plus the graceful-degradation families live in
# repro.recovery.chaos; it imports this module's registry machinery lazily,
# so calling it here — after everything it needs is defined — is safe.
from repro.recovery.chaos import register_chaos_scenarios  # noqa: E402

register_chaos_scenarios()


# ------------------------------------------------------------- plugin scenarios
#: Set once the registry above is fully initialised; plugin modules loaded
#: after this point register their scenarios immediately instead of queueing.
SCENARIOS_READY = True
# Scenarios contributed by plugin modules (repro.contrib, entry points) were
# queued while this module was still importing; register them now.
drain_scenario_hooks()
