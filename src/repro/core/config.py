"""Configuration of the GeoTP optimizations.

The three switches mirror the paper's ablation (Figure 12):

* ``O1`` — decentralized prepare + early abort (§IV-A);
* ``O2`` — latency-aware scheduling of subtransaction start times (§IV-B);
* ``O3`` — high-contention optimizations: hotspot statistics, local execution
  latency forecasting and late transaction scheduling (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GeoTPConfig:
    """Tunable knobs of the GeoTP coordinator."""

    #: O1: initiate the prepare phase from the geo-agent after the last statement.
    enable_decentralized_prepare: bool = True
    #: O1 companion: geo-agents proactively notify peers on abort.
    enable_early_abort: bool = True
    #: O2: postpone subtransaction dispatch according to per-link latency.
    enable_latency_aware_scheduling: bool = True
    #: O3: hotspot statistics + forecasting + late transaction scheduling.
    enable_high_contention_optimization: bool = True

    #: EWMA coefficient for the network latency monitor (larger = smoother).
    ewma_alpha: float = 0.8
    #: Interval of the active latency probe (the paper pings every 10 ms; the
    #: simulation defaults to a coarser probe and also learns passively from
    #: every observed round trip).
    probe_interval_ms: float = 1000.0
    #: Enable the active probing process in addition to passive measurements.
    enable_active_probing: bool = False

    #: Weighted-average coefficient alpha of Eq. (4).
    hotspot_alpha: float = 0.7
    #: Maximum number of hot records tracked before LRU eviction.
    hotspot_capacity: int = 4096
    #: Scale factor applied to forecasted local execution latency before it is
    #: used for scheduling (the paper scales predictions down when they are
    #: unreliable so a delayed subtransaction never becomes the new bottleneck).
    forecast_scale: float = 0.8
    #: Upper bound on the forecasted local execution latency used for
    #: scheduling.  Observed latencies include lock waits, which can reach the
    #: lock-wait timeout under heavy contention; postponing other
    #: subtransactions by that much would make the forecast itself the
    #: bottleneck, so predictions are clamped (the paper's "scale down the
    #: predicted latency" mitigation).
    forecast_cap_ms: float = 50.0

    #: Maximum admission retries before a transaction is aborted (Alg. 2 line 16).
    admission_max_retries: int = 10
    #: Wait between admission retries.
    admission_backoff_ms: float = 5.0
    #: Only apply admission control to transactions whose predicted success
    #: probability is below this threshold... kept at 1.0 to follow Alg. 2.
    admission_threshold: float = 1.0

    #: Round-trip time between a geo-agent and its co-located data source.
    lan_rtt_ms: float = 0.5

    def ablation_o1(self) -> "GeoTPConfig":
        """GeoTP(O1): decentralized prepare only."""
        return GeoTPConfig(
            enable_decentralized_prepare=True,
            enable_early_abort=True,
            enable_latency_aware_scheduling=False,
            enable_high_contention_optimization=False,
            ewma_alpha=self.ewma_alpha,
            hotspot_alpha=self.hotspot_alpha,
            hotspot_capacity=self.hotspot_capacity,
            forecast_scale=self.forecast_scale,
            admission_max_retries=self.admission_max_retries,
            admission_backoff_ms=self.admission_backoff_ms,
            lan_rtt_ms=self.lan_rtt_ms,
        )

    def ablation_o1_o2(self) -> "GeoTPConfig":
        """GeoTP(O1~O2): decentralized prepare + latency-aware scheduling."""
        config = self.ablation_o1()
        config.enable_latency_aware_scheduling = True
        return config

    def ablation_o1_o3(self) -> "GeoTPConfig":
        """GeoTP(O1~O3): all optimizations (the full system)."""
        config = self.ablation_o1_o2()
        config.enable_high_contention_optimization = True
        return config
