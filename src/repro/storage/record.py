"""Record objects stored by the simulated data sources."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass(slots=True)
class Record:
    """A single versioned record.

    ``version`` increments on every committed write; the ScalarDB baseline and
    the recovery tests use it to detect lost or duplicated updates.
    """

    key: Hashable
    value: Any = None
    version: int = 0
    last_writer: str = ""

    def apply_write(self, value: Any, writer: str) -> None:
        """Install a new committed value written by transaction ``writer``."""
        self.value = value
        self.version += 1
        self.last_writer = writer

    def copy(self) -> "Record":
        """Shallow copy (used when handing records across the network model)."""
        return Record(key=self.key, value=self.value, version=self.version,
                      last_writer=self.last_writer)


@dataclass(slots=True)
class RecordSnapshot:
    """Immutable view of a record returned by reads."""

    key: Hashable
    value: Any
    version: int

    @classmethod
    def of(cls, record: Record) -> "RecordSnapshot":
        """Snapshot the current committed state of ``record``."""
        return cls(key=record.key, value=record.value, version=record.version)
