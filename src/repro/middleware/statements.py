"""Statements and transaction specifications submitted to the middleware.

A client transaction is a :class:`TransactionSpec`: an ordered list of
*rounds*, each round being the batch of statements the client sends together
before waiting for results (the paper's "interaction rounds", Fig. 14).  The
last statement of a transaction may carry the annotation the paper relies on
(``/*+ LAST */``) so that GeoTP's decentralized prepare can fire as soon as it
has executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.common import Operation, OpType

_spec_ids = count(1)


@dataclass(slots=True)
class Statement:
    """One SQL statement: the parsed operation plus annotations."""

    operation: Operation
    sql: Optional[str] = None
    #: Client-provided annotation marking the transaction's last statement.
    is_last: bool = False

    @property
    def record_id(self) -> Tuple[str, Hashable]:
        """The (table, key) the statement touches."""
        return self.operation.record_id()

    def rendered_sql(self) -> str:
        """The SQL text, synthesising one from the operation if none was given."""
        if self.sql is not None:
            return self.sql
        op = self.operation
        if op.op_type is OpType.READ:
            return f"SELECT value FROM {op.table} WHERE key = '{op.key}';"
        return f"UPDATE {op.table} SET value = '{op.value}' WHERE key = '{op.key}';"


@dataclass(slots=True)
class TransactionSpec:
    """A client transaction: rounds of statements plus bookkeeping metadata."""

    rounds: List[List[Statement]]
    txn_type: str = "generic"
    metadata: Dict = field(default_factory=dict)
    spec_id: int = field(default_factory=_spec_ids.__next__)

    def __post_init__(self) -> None:
        if not self.rounds or not any(self.rounds):
            raise ValueError("a transaction must contain at least one statement")

    # ------------------------------------------------------------- inspection
    @property
    def all_statements(self) -> List[Statement]:
        """Every statement across all rounds, in submission order."""
        return [stmt for round_ in self.rounds for stmt in round_]

    @property
    def round_count(self) -> int:
        """Number of client interaction rounds."""
        return len(self.rounds)

    @property
    def statement_count(self) -> int:
        """Total number of statements (the paper's "transaction length")."""
        return len(self.all_statements)

    def record_ids(self) -> List[Tuple[str, Hashable]]:
        """All (table, key) pairs the transaction accesses, in order."""
        return [stmt.record_id for stmt in self.all_statements]

    def tables(self) -> Set[str]:
        """The set of tables touched."""
        return {stmt.operation.table for stmt in self.all_statements}

    # ------------------------------------------------------------ annotations
    def mark_last_statements(self) -> None:
        """Annotate every statement of the final round as a last statement.

        The paper assumes the client (or a preprocessing step) marks the last
        statement; when several statements are batched in the final round they
        may each be the last one their target data source sees, so all of them
        carry the hint.
        """
        for stmt in self.rounds[-1]:
            stmt.is_last = True

    # -------------------------------------------------------------- factories
    @classmethod
    def from_operations(cls, operations: Iterable[Operation], txn_type: str = "generic",
                        rounds: int = 1, metadata: Optional[Dict] = None) -> "TransactionSpec":
        """Build a spec from a flat list of operations split into ``rounds`` batches."""
        ops = list(operations)
        if not ops:
            raise ValueError("a transaction must contain at least one operation")
        rounds = max(1, min(rounds, len(ops)))
        per_round = (len(ops) + rounds - 1) // rounds
        batches: List[List[Statement]] = []
        for start in range(0, len(ops), per_round):
            batch = [Statement(operation=op) for op in ops[start:start + per_round]]
            batches.append(batch)
        spec = cls(rounds=batches, txn_type=txn_type, metadata=dict(metadata or {}))
        spec.mark_last_statements()
        return spec
