"""Percentile and CDF helpers for latency analysis (Figure 8).

Two distribution classes share one accessor API:

* :class:`LatencyDistribution` retains every sample — exact percentiles, O(n)
  memory.  The closed-loop experiments (bounded transaction counts) use it,
  and the byte-identical golden pins are built on its exact values.
* :class:`StreamingLatencyDistribution` keeps a fixed-size uniform reservoir
  (Vitter's Algorithm R) plus *exact* streaming count/mean/min/max — O(1)
  memory regardless of run length.  Open-system runs (10⁶+ transactions per
  point) select it automatically; while the stream still fits in the
  reservoir its percentiles are bit-identical to the exact ones, and beyond
  that the rank error is bounded by the reservoir size (~0.8 % standard
  error on the median at the default 4096; property-tested).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def _interpolate(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    low, high = ordered[lower], ordered[upper]
    # Clamp: the interpolation can land one ulp outside [low, high] (e.g.
    # v*(1-w) + v*w < v for tiny w), which would report a quantile outside
    # the sample range.
    return min(max(low * (1.0 - weight) + high * weight, low), high)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    ``fraction`` is in [0, 1]; an empty input raises ``ValueError`` so callers
    never silently report a latency of zero.
    """
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    return _interpolate(sorted(values), fraction)


class LatencyDistribution:
    """A collection of latency samples with percentile / CDF accessors.

    The sorted view is computed once and cached; ``add`` invalidates it, so
    aggregation loops that interleave many percentile reads (``p50``/``p99``/
    ``p999``/``cdf``) pay for a single sort instead of one per call.
    """

    __slots__ = ("_samples", "_sorted", "_view", "_total")

    def __init__(self, samples: Sequence[float] = ()):
        self._samples: List[float] = list(samples)
        self._sorted: List[float] = None
        self._view: Tuple[float, ...] = None
        self._total: float = sum(self._samples)

    def add(self, value: float) -> None:
        """Record one latency sample (milliseconds)."""
        self._samples.append(value)
        self._total += value
        self._sorted = None
        self._view = None

    def __len__(self) -> int:
        return len(self._samples)

    def _ordered(self) -> List[float]:
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        return ordered

    @property
    def samples(self) -> Tuple[float, ...]:
        """All recorded samples, in insertion order (read-only view)."""
        view = self._view
        if view is None:
            view = self._view = tuple(self._samples)
        return view

    @property
    def mean(self) -> float:
        """Average latency; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)

    def p(self, fraction: float) -> float:
        """Latency at the given quantile (e.g. ``p(0.99)``)."""
        if not self._samples:
            raise ValueError("cannot take a percentile of no samples")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        return _interpolate(self._ordered(), fraction)

    @property
    def p50(self) -> float:
        return self.p(0.50)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    @property
    def p999(self) -> float:
        return self.p(0.999)

    def summary_stats(self) -> dict:
        """Count/mean/percentiles in one pass over a single sorted view."""
        if not self._samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p99": 0.0, "p999": 0.0}
        ordered = self._ordered()
        return {
            "count": len(ordered),
            "mean": self._total / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": _interpolate(ordered, 0.50),
            "p99": _interpolate(ordered, 0.99),
            "p999": _interpolate(ordered, 0.999),
        }

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return (latency, cumulative_fraction) pairs for CDF plots.

        ``points`` evenly spaced quantiles are reported, which is what the
        Figure 8 reproduction prints.
        """
        if not self._samples:
            return []
        ordered = self._ordered()
        count = len(ordered)
        out: List[Tuple[float, float]] = []
        for i in range(1, points + 1):
            fraction = i / points
            index = min(int(round(fraction * count)) - 1, count - 1)
            index = max(index, 0)
            out.append((ordered[index], fraction))
        return out


#: Default reservoir capacity: ~0.8 % standard rank error on the median,
#: 32 KiB of floats per distribution — three distributions per run.
DEFAULT_RESERVOIR_SIZE = 4096


class StreamingLatencyDistribution:
    """Bounded-memory drop-in for :class:`LatencyDistribution`.

    ``count``/``mean``/``min``/``max`` are exact streaming aggregates;
    percentiles and the CDF are estimated over a fixed-size uniform sample of
    the stream maintained with Vitter's **Algorithm R**: the first
    ``capacity`` values fill the reservoir, after which the *n*-th value
    replaces a uniformly chosen slot with probability ``capacity / n``.  Every
    prefix of the stream is therefore represented uniformly, with no bias
    toward early or late samples.

    While ``len(self) <= capacity`` the reservoir *is* the full sample set, so
    every percentile matches the exact distribution bit for bit — the
    equivalence the opt-in migration of closed-loop consumers relies on.

    Replacement draws come from a dedicated ``random.Random(seed)``, never the
    workload's RNG, so enabling streaming metrics cannot perturb a simulation.
    """

    __slots__ = ("capacity", "_reservoir", "_count", "_total", "_min", "_max",
                 "_random", "_sorted")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_SIZE, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self._reservoir: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0
        self._random = random.Random(seed)
        self._sorted: List[float] = None

    def add(self, value: float) -> None:
        """Record one latency sample (milliseconds)."""
        count = self._count = self._count + 1
        self._total += value
        if count == 1:
            self._min = self._max = value
        elif value < self._min:
            self._min = value
        elif value > self._max:
            self._max = value
        reservoir = self._reservoir
        if count <= self.capacity:
            reservoir.append(value)
            self._sorted = None
        else:
            slot = self._random.randrange(count)
            if slot < self.capacity:
                reservoir[slot] = value
                self._sorted = None

    def __len__(self) -> int:
        """Exact number of samples seen (not the reservoir occupancy)."""
        return self._count

    @property
    def reservoir_len(self) -> int:
        """How many samples the reservoir currently holds."""
        return len(self._reservoir)

    @property
    def samples(self) -> Tuple[float, ...]:
        """The *reservoir* contents (a uniform sample of the stream).

        Unlike :attr:`LatencyDistribution.samples` this is neither complete
        nor in insertion order once the stream exceeds the capacity; it is
        what summaries ship across process boundaries instead of O(n) lists.
        """
        return tuple(self._reservoir)

    @property
    def mean(self) -> float:
        """Exact streaming mean; 0.0 when empty."""
        if not self._count:
            return 0.0
        return self._total / self._count

    @property
    def min(self) -> float:
        """Exact minimum; 0.0 when empty."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum; 0.0 when empty."""
        return self._max

    def _ordered(self) -> List[float]:
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._reservoir)
        return ordered

    def p(self, fraction: float) -> float:
        """Estimated latency at the given quantile (exact while ≤ capacity)."""
        if not self._count:
            raise ValueError("cannot take a percentile of no samples")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        return _interpolate(self._ordered(), fraction)

    @property
    def p50(self) -> float:
        return self.p(0.50)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    @property
    def p999(self) -> float:
        return self.p(0.999)

    def summary_stats(self) -> dict:
        """Same shape as :meth:`LatencyDistribution.summary_stats`.

        ``count``/``mean``/``min``/``max`` are exact; the percentiles are
        reservoir estimates.
        """
        if not self._count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p99": 0.0, "p999": 0.0}
        ordered = self._ordered()
        return {
            "count": self._count,
            "mean": self._total / self._count,
            "min": self._min,
            "max": self._max,
            "p50": _interpolate(ordered, 0.50),
            "p99": _interpolate(ordered, 0.99),
            "p999": _interpolate(ordered, 0.999),
        }

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Estimated (latency, cumulative_fraction) pairs for CDF plots."""
        if not self._reservoir:
            return []
        ordered = self._ordered()
        count = len(ordered)
        out: List[Tuple[float, float]] = []
        for i in range(1, points + 1):
            fraction = i / points
            index = min(int(round(fraction * count)) - 1, count - 1)
            index = max(index, 0)
            out.append((ordered[index], fraction))
        return out
