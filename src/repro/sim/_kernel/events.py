"""Event primitives for the discrete-event simulation engine (kernel module).

An :class:`Event` is a one-shot occurrence in simulated time.  Processes wait
on events by yielding them; when the event *succeeds* (or *fails*) the waiting
process is resumed with the event's value (or the failure exception is thrown
into it).

The composite events :class:`AllOf` and :class:`AnyOf` allow a process to wait
for several events at once, which the middleware coordinators use to wait for
prepare votes from many data sources.

Everything here is on the simulation's hot path: the classes are slotted, and
triggering appends straight onto the environment's same-time microqueue
(``env._soon``) — an event always triggers *at the current simulated time*, so
the heap (whose job is ordering *future* work) is never involved.  Only
:class:`Timeout` still pushes onto the heap, because its firing time lies in
the future; its entry layout ``(time, priority, sequence, event)`` is shared
with the environment module.

This module is part of the mypyc-compilable kernel (see
:mod:`repro.sim._kernel`): fully annotated, relative imports only, no dynamic
attribute tricks.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Iterable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .environment import Environment


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _PendingValue:
    """Sentinel for "this event has not been given a value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pending>"


PENDING: Any = _PendingValue()


class Event:
    """A one-shot event that processes can wait on.

    The lifecycle is: *pending* -> *triggered* (scheduled on the event queue)
    -> *processed* (callbacks executed).  An event can be triggered at most
    once, either successfully via :meth:`succeed` or with an exception via
    :meth:`fail`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    #: Class-level marker so the dispatch loop can tell an Event apart from a
    #: lightweight scheduled callback (see ``Environment.call_at``).
    fn: ClassVar[None] = None

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set to True by a waiter that handles failures itself; prevents the
        #: environment from treating an unhandled failed event as fatal.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is PENDING:
            raise RuntimeError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._soon.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._soon.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if self._value is not PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.env._soon.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.callbacks is None else (
            "triggered" if self._value is not PENDING else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + schedule: a Timeout is born triggered, and
        # this constructor runs once per simulated wait.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        if delay == 0.0:
            # Fires at the current time: same-time FIFO via the microqueue.
            env._soon.append(self)
        else:
            env._eid = eid = env._eid + 1
            heappush(env._queue, (env.now + delay, 1, eid, self))


class ConditionValue:
    """Dict-like access to the values of the events a condition waited on."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def todict(self) -> dict:
        """Return ``{event: value}`` for each completed event."""
        return {event: event.value for event in self.events}


class Condition(Event):
    """Base class for composite events over a list of child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events: List[Event] = list(events)
        self._count: int = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._satisfied(self._count, len(self._events)):
            done = [e for e in self._events
                    if e._value is not PENDING and e._ok]
            self.succeed(ConditionValue(done))


class AllOf(Condition):
    """Succeeds once *all* child events have succeeded (fails on first failure)."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Succeeds as soon as *any* child event succeeds."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
