"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable on environments whose setuptools/pip lack
PEP 660 support (``pip install -e . --no-build-isolation``) and to host the
*optional* mypyc build of the engine core.

The compiled core is opt-in twice over: it builds only when
``REPRO_BUILD_MYPYC=1`` is set, and even then a missing mypy/mypyc degrades to
a pure-Python install with a notice rather than an error (the pure kernel in
``repro/sim/_kernel`` is the source of truth; ``REPRO_ENGINE=auto`` picks the
compiled core only when it exists).  ``python tools/build_compiled.py`` is the
richer front door — it also verifies the build against the pure engine.
"""

import os
import sys
from pathlib import Path

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_BUILD_MYPYC") == "1":
    sys.path.insert(0, str(Path(__file__).resolve().parent / "tools"))
    from build_compiled import load_mypyc_config, mypyc_importable, stage_sources

    if not mypyc_importable():
        print("notice: REPRO_BUILD_MYPYC=1 but mypyc is not installed; "
              "installing with the pure-Python engine only", file=sys.stderr)
    else:
        from mypyc.build import mypycify

        config = load_mypyc_config()
        staged = stage_sources(list(config["modules"]))
        ext_modules = mypycify(
            [str(path) for path in staged],
            opt_level=str(config.get("opt_level", "3")),
            debug_level=str(config.get("debug_level", "1")),
        )

setup(ext_modules=ext_modules)
