"""Discrete-event simulation engine.

This package provides the simulated substrate on which every other component of
the GeoTP reproduction runs: an event loop with a virtual millisecond clock
(:mod:`repro.sim.environment`), generator-based processes
(:mod:`repro.sim.process`), synchronisation primitives and resources
(:mod:`repro.sim.events`, :mod:`repro.sim.resources`), a point-to-point network
model with pluggable latency distributions (:mod:`repro.sim.network`,
:mod:`repro.sim.latency`) and seeded random number utilities
(:mod:`repro.sim.rng`).

The engine follows the classic SimPy design: a process is a Python generator
that yields events; the environment resumes the generator when the yielded
event fires.  All timestamps are floats in simulated milliseconds.
"""

from repro.sim.engine import active_engine, compiled_available, engine_info
from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.latency import (
    ConstantLatency,
    DynamicLatency,
    JitterLatency,
    LatencyModel,
    RandomLatency,
)
from repro.sim.network import Message, Network, NetworkInterface
from repro.sim.rng import SeededRNG, ZipfianGenerator

__all__ = [
    "AllOf",
    "AnyOf",
    "ConstantLatency",
    "DynamicLatency",
    "Environment",
    "Event",
    "Interrupt",
    "JitterLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkInterface",
    "Process",
    "RandomLatency",
    "Resource",
    "SeededRNG",
    "Store",
    "Timeout",
    "ZipfianGenerator",
    "active_engine",
    "compiled_available",
    "engine_info",
]
