"""Integration tests: the SSP coordinator driving simulated data sources."""

import pytest

from repro.common import Operation, OpType, TxnOutcome
from repro.middleware import (
    MiddlewareConfig,
    ModuloPartitioner,
    ParticipantHandle,
    TransactionSpec,
    TwoPhaseCommitCoordinator,
)
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect


def build_ssp_cluster(rtts=(10.0, 100.0), lock_wait_timeout_ms=5000.0):
    """Two data sources behind one SSP middleware with the given RTTs."""
    env = Environment()
    net = Network(env)
    names = [f"ds{i}" for i in range(len(rtts))]
    datasources = {}
    participants = {}
    for name, rtt in zip(names, rtts):
        ds = DataSource(env, net, DataSourceConfig(
            name=name, dialect=MySQLDialect(),
            lock_wait_timeout_ms=lock_wait_timeout_ms))
        ds.load_table("usertable", {key: {"v": 0} for key in range(200)})
        datasources[name] = ds
        participants[name] = ParticipantHandle(name=name, endpoint=name,
                                               dialect=MySQLDialect())
        net.set_link("dm", name, ConstantLatency(rtt))
    partitioner = ModuloPartitioner(names)
    dm = TwoPhaseCommitCoordinator(env, net, MiddlewareConfig(name="dm"),
                                   participants, partitioner)
    return env, net, dm, datasources, partitioner


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def read(key):
    return Operation(op_type=OpType.READ, table="usertable", key=key)


def run_txn(env, dm, spec):
    proc = dm.submit(spec)
    env.run(until=proc)
    return proc.value


def test_centralized_transaction_commits_with_single_round_trip():
    env, net, dm, datasources, partitioner = build_ssp_cluster(rtts=(10.0, 100.0))
    # Keys 0 and 2 both live on ds0 (modulo partitioning over 2 nodes).
    spec = TransactionSpec.from_operations([update(0), update(2)], txn_type="ycsb")
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert not result.is_distributed
    assert result.participant_count == 1
    # Execution RT (10) + one-phase commit RT (10) plus small local costs.
    assert 20 <= result.latency_ms <= 40
    assert datasources["ds0"].engine.read("p", "usertable", 0).value == {"v": 1}


def test_distributed_transaction_takes_three_wan_round_trips():
    env, net, dm, datasources, partitioner = build_ssp_cluster(rtts=(10.0, 100.0))
    spec = TransactionSpec.from_operations([update(0), update(1)], txn_type="ycsb")
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert result.is_distributed
    # Slowest link RTT is 100 ms and SSP pays execution + prepare + commit.
    assert result.latency_ms >= 300
    assert result.latency_ms <= 330
    assert datasources["ds1"].engine.read("p", "usertable", 1).value == {"v": 1}


def test_distributed_transaction_phase_breakdown_recorded():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    breakdown = result.phase_breakdown
    assert breakdown["execution"] >= 100
    assert breakdown["prepare"] >= 100
    assert breakdown["commit"] >= 100


def test_multi_round_transaction_commits():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    spec = TransactionSpec.from_operations(
        [update(0), update(1), update(2), update(3)], rounds=2)
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    # Two execution rounds + prepare + commit, each bounded by the 100 ms link.
    assert result.latency_ms >= 400


def test_read_only_transaction_returns_values():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    datasources["ds0"].load_table("usertable", {0: {"v": 77}})
    spec = TransactionSpec.from_operations([read(0)])
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED


def test_lock_conflict_timeout_aborts_and_rolls_back_all_participants():
    env, net, dm, datasources, partitioner = build_ssp_cluster(
        rtts=(10.0, 100.0), lock_wait_timeout_ms=100.0)

    blocker = TransactionSpec.from_operations([update(0, value=1), update(1, value=1)])
    victim = TransactionSpec.from_operations([update(0, value=2), update(3, value=2)])

    results = {}

    def client_blocker():
        proc = dm.submit(blocker)
        result = yield proc
        results["blocker"] = result

    def client_victim():
        # Arrive while the blocker still holds the lock on key 0 at ds0.
        yield env.timeout(30)
        proc = dm.submit(victim)
        result = yield proc
        results["victim"] = result

    env.process(client_blocker())
    env.process(client_victim())
    env.run()

    assert results["blocker"].outcome is TxnOutcome.COMMITTED
    assert results["victim"].outcome is TxnOutcome.ABORTED
    # The victim's write on ds1 (key 3) must have been rolled back.
    assert datasources["ds1"].engine.read("p", "usertable", 3).value == {"v": 0}
    assert dm.stats.aborted == 1
    assert dm.stats.committed == 1


def test_middleware_stats_track_commits_and_work():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    for i in range(3):
        spec = TransactionSpec.from_operations([update(i * 2), update(i * 2 + 1)])
        run_txn(env, dm, spec)
    assert dm.stats.submitted == 3
    assert dm.stats.committed == 3
    assert dm.stats.work_units > 0
    assert dm.stats.wan_messages >= 3 * 6  # exec x2 + prepare x2 + commit x2


def test_concurrent_non_conflicting_transactions_all_commit():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    outcomes = []

    def client(key_base):
        spec = TransactionSpec.from_operations(
            [update(key_base), update(key_base + 1)])
        result = yield dm.submit(spec)
        outcomes.append(result.outcome)

    for i in range(5):
        env.process(client(10 + i * 2))
    env.run()
    assert outcomes.count(TxnOutcome.COMMITTED) == 5


def test_decision_log_flushed_before_commit_dispatch():
    env, net, dm, datasources, partitioner = build_ssp_cluster()
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.committed
    decisions = [r for r in dm.wal.records() if r.xid == result.txn_id]
    assert len(decisions) == 1
