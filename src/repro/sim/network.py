"""Point-to-point network model.

The model mirrors the paper's deployment: a database middleware host and a set
of geo-distributed data source hosts connected by WAN links of very different
round-trip times, plus LAN links between a geo-agent and its co-located data
source.  Nodes are named endpoints with an inbox; the :class:`Network` routes
messages between them applying the per-link :class:`~repro.sim.latency.LatencyModel`.

Two communication styles are supported:

* one-way ``send`` — deliver a :class:`Message` to the destination inbox after
  the one-way link delay (used for asynchronous notifications such as the
  decentralized prepare votes and early-abort messages);
* ``request`` — RPC-style: the caller gets an event that fires with the reply
  value after the full round trip plus the receiver's processing time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.environment import Environment
from repro.sim.events import PENDING, Event
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.resources import Store

_message_ids = count(1)


@dataclass(slots=True)
class Message:
    """A network message between two named nodes."""

    sender: str
    recipient: str
    msg_type: str
    payload: Any = None
    message_id: int = field(default_factory=_message_ids.__next__)
    sent_at: float = 0.0
    delivered_at: float = 0.0
    #: Event to trigger on the sender's side when the recipient replies.
    reply_event: Optional[Event] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.message_id} {self.msg_type} "
                f"{self.sender}->{self.recipient}>")


class NetworkStats:
    """Aggregate counters of network activity (messages and bytes proxied)."""

    __slots__ = ("messages_sent", "messages_by_type", "total_delay_ms",
                 "messages_parked", "messages_dropped")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_by_type: Dict[str, int] = {}
        self.total_delay_ms = 0.0
        #: Deliveries held back by an active outage/partition (released on heal).
        self.messages_parked = 0
        #: Deliveries discarded by a drop-mode disruption (never released).
        self.messages_dropped = 0

    def record(self, message: Message, delay_ms: float) -> None:
        self.messages_sent += 1
        self.messages_by_type[message.msg_type] = (
            self.messages_by_type.get(message.msg_type, 0) + 1)
        self.total_delay_ms += delay_ms


#: Disruption modes: ``park`` holds deliveries back and releases them on heal
#: (a transient outage — TCP retransmits eventually get through); ``drop``
#: discards them outright (callers waiting on a dropped RPC reply block until
#: some higher-level timeout fires — use only when the model has one).
PARK = "park"
DROP = "drop"


class _FaultState:
    """Active network disruptions: blocked/degraded nodes and links.

    Kept out of :class:`Network` so the fault-free hot path pays exactly one
    ``is None`` check per message; the state object only exists while the
    fault-injection subsystem (:mod:`repro.recovery.failures`) has at least one
    disruption installed.  Parked deliveries are queued per disruption key and
    re-scheduled, in park order and with a fresh link delay, when that
    disruption is lifted.
    """

    __slots__ = ("blocked_nodes", "blocked_links", "degraded_nodes",
                 "degraded_links", "parked")

    def __init__(self) -> None:
        #: Node name -> mode (:data:`PARK`/:data:`DROP`); blocks every link
        #: touching the node in either direction (a region outage).
        self.blocked_nodes: Dict[str, str] = {}
        #: Directed (src, dst) link -> mode (a network partition).
        self.blocked_links: Dict[Tuple[str, str], str] = {}
        #: Node name -> delay multiplier applied to every touching link.
        self.degraded_nodes: Dict[str, float] = {}
        #: Directed (src, dst) link -> delay multiplier.
        self.degraded_links: Dict[Tuple[str, str], float] = {}
        #: Disruption key -> parked ``(src, dst, delay, fn, args)`` deliveries
        #: in park order.  Keys are ``("node", name)`` or
        #: ``("link", (src, dst))``.
        self.parked: Dict[Tuple, list] = {}

    def empty(self) -> bool:
        """True once no disruption of any kind remains installed."""
        return not (self.blocked_nodes or self.blocked_links
                    or self.degraded_nodes or self.degraded_links
                    or self.parked)

    def block_key(self, src: str, dst: str):
        """The (mode, park key) of the disruption blocking ``src -> dst``, if any."""
        mode = self.blocked_nodes.get(src)
        if mode is not None:
            return mode, ("node", src)
        mode = self.blocked_nodes.get(dst)
        if mode is not None:
            return mode, ("node", dst)
        mode = self.blocked_links.get((src, dst))
        if mode is not None:
            return mode, ("link", (src, dst))
        return None

    def delay_factor(self, src: str, dst: str) -> float:
        """Combined latency-degradation multiplier for ``src -> dst``."""
        factor = self.degraded_links.get((src, dst), 1.0)
        node_factor = self.degraded_nodes.get(src)
        if node_factor is not None:
            factor *= node_factor
        node_factor = self.degraded_nodes.get(dst)
        if node_factor is not None:
            factor *= node_factor
        return factor


class Network:
    """Routes messages between registered nodes with per-link latencies."""

    def __init__(self, env: Environment, default_rtt_ms: float = 0.0):
        self.env = env
        self.default_model: LatencyModel = ConstantLatency(default_rtt_ms)
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._inboxes: Dict[str, Store] = {}
        self.stats = NetworkStats()
        #: Active disruptions, or None while the network is healthy (the
        #: common case — the hot send path checks only this attribute).
        self._faults: Optional[_FaultState] = None

    # ---------------------------------------------------------------- wiring
    def register_node(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.env)
        return self._inboxes[name]

    def has_node(self, name: str) -> bool:
        """True if ``name`` has been registered."""
        return name in self._inboxes

    def set_link(self, src: str, dst: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        """Set the latency model for the ``src -> dst`` link."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def link_model(self, src: str, dst: str) -> LatencyModel:
        """The latency model in effect for ``src -> dst``."""
        return self._links.get((src, dst), self.default_model)

    def rtt(self, src: str, dst: str) -> float:
        """Nominal RTT in ms between two nodes at the current time."""
        if src == dst:
            return 0.0
        return self.link_model(src, dst).rtt_at(self.env.now)

    def interface(self, name: str) -> "NetworkInterface":
        """Return a bound interface for node ``name`` (registering it)."""
        self.register_node(name)
        return NetworkInterface(self, name)

    # ------------------------------------------------------------ disruptions
    def _fault_state(self) -> _FaultState:
        if self._faults is None:
            self._faults = _FaultState()
        return self._faults

    def _maybe_clear_faults(self) -> None:
        if self._faults is not None and self._faults.empty():
            self._faults = None

    def disrupt_node(self, name: str, mode: str = PARK) -> None:
        """Cut every link touching ``name`` (region outage semantics).

        ``mode=PARK`` holds affected deliveries until :meth:`restore_node`;
        ``mode=DROP`` discards them.
        """
        if mode not in (PARK, DROP):
            raise ValueError(f"unknown disruption mode {mode!r}")
        self._fault_state().blocked_nodes[name] = mode

    def restore_node(self, name: str) -> None:
        """Lift a node outage and release its parked deliveries in order."""
        faults = self._faults
        if faults is None or faults.blocked_nodes.pop(name, None) is None:
            return
        self._release_parked(("node", name))

    def disrupt_link(self, src: str, dst: str, mode: str = PARK,
                     symmetric: bool = True) -> None:
        """Cut the ``src -> dst`` link (and its reverse when ``symmetric``)."""
        if mode not in (PARK, DROP):
            raise ValueError(f"unknown disruption mode {mode!r}")
        links = self._fault_state().blocked_links
        links[(src, dst)] = mode
        if symmetric:
            links[(dst, src)] = mode

    def restore_link(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Heal a link partition and release its parked deliveries in order."""
        faults = self._faults
        if faults is None:
            return
        if faults.blocked_links.pop((src, dst), None) is not None:
            self._release_parked(("link", (src, dst)))
        if symmetric and faults.blocked_links.pop((dst, src), None) is not None:
            self._release_parked(("link", (dst, src)))
        self._maybe_clear_faults()

    def degrade_node(self, name: str, factor: float) -> None:
        """Multiply the delay of every link touching ``name`` by ``factor``.

        ``factor == 1.0`` removes the degradation (a heal).
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        if factor == 1.0:
            faults = self._faults
            if faults is not None:
                faults.degraded_nodes.pop(name, None)
                self._maybe_clear_faults()
            return
        self._fault_state().degraded_nodes[name] = factor

    def degrade_link(self, src: str, dst: str, factor: float,
                     symmetric: bool = True) -> None:
        """Multiply the ``src -> dst`` delay by ``factor`` (1.0 heals)."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        keys = [(src, dst)] + ([(dst, src)] if symmetric else [])
        faults = self._faults
        if factor == 1.0:
            if faults is not None:
                for key in keys:
                    faults.degraded_links.pop(key, None)
                self._maybe_clear_faults()
            return
        links = self._fault_state().degraded_links
        for key in keys:
            links[key] = factor

    def _intercept(self, src: str, dst: str, delay: float, fn, args):
        """Apply active disruptions to one delivery.

        Returns the (possibly degraded) delay, or ``None`` when the delivery
        was parked or dropped and must not be scheduled by the caller.
        """
        faults = self._faults
        blocked = faults.block_key(src, dst)
        if blocked is not None:
            mode, key = blocked
            stats = self.stats
            if mode == DROP:
                stats.messages_dropped += 1
            else:
                stats.messages_parked += 1
                faults.parked.setdefault(key, []).append((src, dst, delay, fn, args))
            return None
        return delay * faults.delay_factor(src, dst)

    def _release_parked(self, key: Tuple) -> None:
        faults = self._faults
        entries = faults.parked.pop(key, None)
        self._maybe_clear_faults()
        if not entries:
            return
        env = self.env
        for src, dst, delay, fn, args in entries:
            # Re-deliver after one fresh link delay from the heal time: the
            # sender's retransmission finally gets through.  Released entries
            # go back through interception, so a delivery freed by one heal
            # still honours any *other* disruption that remains active on its
            # path (overlapping outages on different targets are legal).
            if self._faults is not None:
                delay = self._intercept(src, dst, delay, fn, args)
                if delay is None:
                    continue  # re-parked under (or dropped by) another fault
            if delay == 0.0:
                env._soon.append((fn, args))
            else:
                env.call_at(delay, fn, *args)

    # ------------------------------------------------------------- messaging
    def send(self, message: Message) -> float:
        """Deliver ``message`` after the one-way link delay; return the delay."""
        if message.recipient not in self._inboxes:
            raise KeyError(f"unknown network node {message.recipient!r}")
        env = self.env
        message.sent_at = now = env.now
        if message.sender == message.recipient:
            delay = 0.0
        else:
            model = self._links.get((message.sender, message.recipient),
                                    self.default_model)
            delay = model.sample_one_way(now)
        # NetworkStats.record, inlined: one call per simulated message adds up.
        stats = self.stats
        stats.messages_sent += 1
        by_type = stats.messages_by_type
        by_type[message.msg_type] = by_type.get(message.msg_type, 0) + 1
        stats.total_delay_ms += delay

        inbox = self._inboxes[message.recipient]
        # Allocation-free delivery: a bound method plus args instead of a
        # per-message closure.  Zero-delay links (self-sends and colocated
        # nodes) skip the heap entirely via the same-time microqueue.
        if self._faults is not None:
            adjusted = self._intercept(message.sender, message.recipient,
                                       delay, self._deliver, (message, inbox))
            if adjusted is None:
                return delay  # parked or dropped; nominal delay for the stats
            delay = adjusted
        if delay == 0.0:
            env._soon.append((self._deliver, (message, inbox)))
        else:
            env.call_at(delay, self._deliver, message, inbox)
        return delay

    def _deliver(self, message: Message, inbox: Store) -> None:
        message.delivered_at = self.env.now
        inbox.put(message)

    def deliver_reply(self, original: Message, value: Any) -> None:
        """Send the reply for an RPC ``original`` back to its sender."""
        if original.reply_event is None:
            raise ValueError("message was not sent as a request; it has no reply event")
        if original.sender == original.recipient:
            delay = 0.0
        else:
            model = self.link_model(original.recipient, original.sender)
            delay = model.sample_one_way(self.env.now)

        if self._faults is not None:
            # Replies travel recipient -> sender and honour disruptions too:
            # an RPC caught by an outage mid-flight stalls (or dies) on the
            # reply leg exactly like a fresh message would.
            delay = self._intercept(original.recipient, original.sender, delay,
                                    self._fire_reply,
                                    (original.reply_event, value))
            if delay is None:
                return
        if delay == 0.0:
            self.env._soon.append((self._fire_reply, (original.reply_event, value)))
        else:
            self.env.call_at(delay, self._fire_reply, original.reply_event, value)

    def _fire_reply(self, reply_event: Event, value: Any) -> None:
        # Trigger *and* dispatch in one step: this callback already runs at
        # the reply's delivery time, so parking the event on the microqueue
        # for a second dispatch would only delay it within the same
        # timestamp.  (Same-timestamp reordering; equivalence-harness
        # territory.)
        if reply_event._value is not PENDING:
            return
        reply_event._ok = True
        reply_event._value = value
        callbacks = reply_event.callbacks
        if callbacks is not None:
            # Count the merged event dispatch so events_processed keeps
            # meaning "entries dispatched", replies included.
            self.env.events_processed += 1
            reply_event.callbacks = None
            for callback in callbacks:
                callback(reply_event)


class NetworkInterface:
    """A node's handle on the network: typed helpers bound to its name."""

    def __init__(self, network: Network, name: str):
        self.network = network
        self.name = name
        self.inbox: Store = network.register_node(name)

    @property
    def env(self) -> Environment:
        return self.network.env

    def send(self, recipient: str, msg_type: str, payload: Any = None) -> Message:
        """Fire-and-forget message to ``recipient``."""
        message = Message(sender=self.name, recipient=recipient,
                          msg_type=msg_type, payload=payload)
        self.network.send(message)
        return message

    def request(self, recipient: str, msg_type: str, payload: Any = None) -> Event:
        """RPC to ``recipient``; the returned event fires with the reply value."""
        reply_event = Event(self.env)
        message = Message(sender=self.name, recipient=recipient,
                          msg_type=msg_type, payload=payload,
                          reply_event=reply_event)
        self.network.send(message)
        return reply_event

    def reply(self, message: Message, value: Any) -> None:
        """Answer an RPC message previously received in our inbox."""
        self.network.deliver_reply(message, value)

    def receive(self) -> Event:
        """Event firing with the next message in our inbox."""
        return self.inbox.get()

    def rtt_to(self, other: str) -> float:
        """Nominal RTT to another node at the current simulated time."""
        return self.network.rtt(self.name, other)
