"""Tests for the declarative scenario registry and sweep expansion."""

import pickle

import pytest

from repro import ExperimentConfig
from repro.bench.scenarios import (
    SCENARIOS,
    Axis,
    ScenarioSpec,
    SweepSpec,
    get_scenario,
    scenario_names,
    set_config_param,
)
from repro.workloads.ycsb import CONTENTION_SKEW

#: Every paper figure/table the registry must declaratively cover.
EXPECTED_SCENARIOS = {
    "fig1b", "fig5_overall", "fig6_breakdown", "fig7_dist_ratio_ycsb",
    "fig8_latency_cdf", "fig9_dist_ratio_tpcc", "fig10_mean_sweep",
    "fig10_std_sweep", "fig11a_random_latency", "fig11b_dynamic_latency",
    "fig11b_fine", "fig12_ablation", "fig13_yugabyte", "fig14_length",
    "fig14_rounds", "fig15_multi_region", "table1_heterogeneous", "smoke",
}


def test_fig11b_fine_expands_to_320_one_second_phases():
    sweep = get_scenario("fig11b_fine").sweep()
    points = sweep.points()
    assert len(points) == 2
    for point in points:
        assert point.config.duration_ms == 320_000.0
        models = [node.latency_model
                  for node in point.config.topology.data_nodes]
        assert all(len(model.schedule) == 320 for model in models)
        assert all(model.schedule[1][0] == 1_000.0 for model in models)


def test_registry_covers_every_paper_experiment():
    assert EXPECTED_SCENARIOS <= set(scenario_names())


def test_get_scenario_unknown_name_lists_known_ones():
    with pytest.raises(KeyError, match="smoke"):
        get_scenario("nope")


def test_points_expand_cartesian_product_in_declaration_order():
    sweep = SweepSpec(name="demo", base=ExperimentConfig(),
                      axes=(Axis("system", ("ssp", "geotp")),
                            Axis("terminals", (4, 8))))
    points = sweep.points()
    assert sweep.size() == 4
    assert [p.params for p in points] == [
        {"system": "ssp", "terminals": 4},
        {"system": "ssp", "terminals": 8},
        {"system": "geotp", "terminals": 4},
        {"system": "geotp", "terminals": 8},
    ]
    assert [p.index for p in points] == [0, 1, 2, 3]
    # Axis values land on the config when they name an ExperimentConfig field.
    assert points[3].config.system == "geotp"
    assert points[3].config.terminals == 8


def test_points_get_independent_config_copies():
    base = ExperimentConfig()
    sweep = SweepSpec(name="demo", base=base, axes=(Axis("seed", (1, 2)),))
    one, two = sweep.points()
    one.config.ycsb.skew = 99.0
    assert two.config.ycsb.skew != 99.0
    assert base.ycsb.skew != 99.0
    assert base.seed == 0


def test_sweep_overrides_axes_and_base_fields():
    scenario = get_scenario("fig5_overall")
    sweep = scenario.sweep(axes={"terminals": (2,)}, duration_ms=1234.0,
                           workload="tpcc", ycsb__skew=1.5)
    assert [a.values for a in sweep.axes if a.name == "terminals"] == [(2,)]
    assert sweep.base.duration_ms == 1234.0
    assert sweep.base.workload == "tpcc"
    assert sweep.base.ycsb.skew == 1.5
    # The registered scenario itself is never mutated by deriving sweeps.
    assert scenario.base.duration_ms != 1234.0
    assert scenario.base.ycsb.skew == CONTENTION_SKEW["medium"]


def test_sweep_rejects_unknown_axis_and_none_overrides_are_ignored():
    scenario = get_scenario("fig5_overall")
    with pytest.raises(KeyError):
        scenario.sweep(axes={"nope": (1,)})
    sweep = scenario.sweep(duration_ms=None, terminals=None)
    assert sweep.base.duration_ms == scenario.base.duration_ms


def test_set_config_param_rejects_unknown_paths():
    config = ExperimentConfig()
    with pytest.raises(AttributeError):
        set_config_param(config, "ycsb.nope", 1)


def test_apply_functions_shape_complex_scenarios():
    fig1 = get_scenario("fig1b").sweep(axes={"ds2_latency_ms": (60,)})
    for point in fig1.points():
        assert point.config.topology is not None
        assert len(point.config.topology.data_nodes) == 2
        assert point.config.ycsb.skew == CONTENTION_SKEW[point.params["contention"]]

    fig12 = get_scenario("fig12_ablation").sweep(axes={"skew": (0.9,)})
    variants = {p.params["variant"]: p.config for p in fig12.points()}
    assert variants["ssp"].system == "ssp" and variants["ssp"].geotp is None
    assert variants["geotp_o1"].geotp.enable_latency_aware_scheduling is False
    assert variants["geotp_o1_o3"].geotp.enable_high_contention_optimization is True

    table1 = get_scenario("table1_heterogeneous").sweep(axes={"ratio": (0.25,)})
    dialects = {p.params["deployment"]:
                [n.dialect for n in p.config.topology.data_nodes]
                for p in table1.points()}
    assert dialects["S2"] == ["postgresql", "mysql", "postgresql", "mysql"]


def test_fig11a_points_derive_seed_from_repeat():
    sweep = get_scenario("fig11a_random_latency").sweep(
        axes={"ratio": (0.2,), "repeat": (0, 1)})
    seeds = [p.config.seed for p in sweep.points()]
    assert seeds == [0, 1, 0, 1]  # system x ratio x repeat


def test_every_registered_scenario_expands_to_picklable_points():
    for name, scenario in SCENARIOS.items():
        points = scenario.sweep().points()
        assert len(points) == scenario.sweep().size() > 0, name
        # Points must cross process boundaries, configs and params included.
        pickle.loads(pickle.dumps(points))


def test_registering_requires_unique_axis_names():
    with pytest.raises(ValueError):
        SweepSpec(name="dup", base=ExperimentConfig(),
                  axes=(Axis("system", ("ssp",)), Axis("system", ("geotp",))))


def test_scenario_spec_is_reusable_across_derived_sweeps():
    scenario = ScenarioSpec(name="tiny", description="demo",
                            base=ExperimentConfig(terminals=3),
                            axes=(Axis("system", ("ssp",)),))
    first = scenario.sweep(terminals=7)
    second = scenario.sweep()
    assert first.base.terminals == 7
    assert second.base.terminals == 3
