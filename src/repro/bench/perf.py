"""Perf-regression harness for the simulation core.

``python -m repro.bench perf`` times registered scenarios through the same
:class:`~repro.bench.parallel.SweepRunner` the experiments use, collects
engine-level throughput metrics (events/sec, committed txns/sec, peak RSS) and
compares the wall clock against a committed baseline (``BENCH_baseline.json``)
with a configurable regression threshold.  CI runs ``perf --quick`` on every
push and fails when a scenario slows down by more than the threshold.

Methodology notes
-----------------

* Every scenario is run ``repeats`` times and the **best** wall clock is kept:
  minimum-of-N is the standard way to suppress scheduler noise when measuring
  a single-threaded workload.
* The comparison is wall-clock based and therefore machine-sensitive.  The
  committed baseline was produced on the development container (single CPU
  core); regenerate it with ``perf --update-baseline`` when switching
  hardware, and read CI failures near the threshold with that caveat in mind.
* ``events_per_sec`` divides the total simulation queue entries dispatched
  (``ExperimentSummary.events_processed``) by the wall clock, which makes it
  insensitive to scenario composition — it is the purest measure of engine
  speed this harness reports.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import SweepRunner
from repro.bench.scenarios import get_scenario
from repro.metrics.resources import process_peak_rss_bytes
from repro.sim.engine import active_engine

#: Scenarios timed by ``perf --quick`` (the CI gate).
QUICK_SUITE = ("smoke", "perf_scale")
#: Scenarios timed by a full ``perf`` run.
FULL_SUITE = ("smoke", "perf_scale", "fig6_breakdown")

#: Default committed-baseline location (repo root).
DEFAULT_BASELINE = "BENCH_baseline.json"
#: Default allowed slowdown before a run counts as a regression (30 %).
DEFAULT_THRESHOLD = 0.30
#: Default perf-trajectory log: one JSON line appended per ``perf`` run.
DEFAULT_HISTORY = "BENCH_history.jsonl"


#: Peak resident set size of this process, in bytes (canonical helper lives
#: in :mod:`repro.metrics.resources` so the runner can record per-experiment
#: RSS without importing the bench-suite machinery).
peak_rss_bytes = process_peak_rss_bytes


@dataclass
class PerfMetrics:
    """Measured performance of one scenario sweep (serial by default)."""

    scenario: str
    points: int
    repeats: int
    #: Best-of-``repeats`` wall clock for the whole sweep, in seconds.
    wall_clock_s: float
    #: Wall clock of every repeat, best first not guaranteed (run order).
    all_wall_clocks_s: List[float]
    #: Simulation queue entries dispatched per wall-clock second.
    events_per_sec: float
    #: Committed transactions per wall-clock second.
    committed_per_sec: float
    #: Total events / committed transactions across all points (per repeat).
    events_processed: int
    committed: int
    peak_rss_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        """The ``metrics`` entry of a ``BENCH_<tag>.json`` document."""
        return {
            "scenario": self.scenario,
            "points": self.points,
            "repeats": self.repeats,
            "wall_clock_s": round(self.wall_clock_s, 5),
            "all_wall_clocks_s": [round(w, 5) for w in self.all_wall_clocks_s],
            "events_per_sec": round(self.events_per_sec, 1),
            "committed_per_sec": round(self.committed_per_sec, 2),
            "events_processed": self.events_processed,
            "committed": self.committed,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def measure_scenario(name: str, repeats: int = 3, max_workers: int = 1,
                     **overrides: Any) -> PerfMetrics:
    """Time one registered scenario; keyword overrides shrink it for tests.

    ``overrides`` are forwarded to :meth:`ScenarioSpec.sweep` (e.g.
    ``duration_ms=1_000.0, terminals=4``), so unit tests can exercise the
    harness in milliseconds while the CLI times the scenario as registered.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    sweep = get_scenario(name).sweep(**overrides)
    runner = SweepRunner(max_workers=max_workers)
    walls: List[float] = []
    events = committed = 0
    points = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = runner.run(sweep)
        walls.append(time.perf_counter() - started)
        summaries = result.summaries()
        points = len(summaries)
        events = sum(s.events_processed for s in summaries)
        committed = sum(s.committed for s in summaries)
    best = min(walls)
    return PerfMetrics(
        scenario=name,
        points=points,
        repeats=repeats,
        wall_clock_s=best,
        all_wall_clocks_s=walls,
        events_per_sec=events / best if best > 0 else 0.0,
        committed_per_sec=committed / best if best > 0 else 0.0,
        events_processed=events,
        committed=committed,
        peak_rss_bytes=peak_rss_bytes(),
    )


@dataclass
class Comparison:
    """One scenario's wall clock *and peak RSS* measured against the baseline."""

    scenario: str
    wall_clock_s: float
    baseline_wall_clock_s: Optional[float]
    #: current / baseline; > 1 means slower than the baseline.
    ratio: Optional[float]
    regression: bool
    #: Peak RSS of the current run / the baseline's, same threshold as wall
    #: clock — a streaming-metrics leak shows up here long before it shows up
    #: in wall time.
    peak_rss_bytes: int = 0
    baseline_peak_rss_bytes: Optional[int] = None
    rss_ratio: Optional[float] = None
    rss_regression: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """The ``baseline_comparison`` entry of a ``BENCH_<tag>.json`` document."""
        return {
            "scenario": self.scenario,
            "wall_clock_s": round(self.wall_clock_s, 5),
            "baseline_wall_clock_s": (
                round(self.baseline_wall_clock_s, 5)
                if self.baseline_wall_clock_s is not None else None),
            "ratio": round(self.ratio, 3) if self.ratio is not None else None,
            "regression": self.regression,
            "peak_rss_bytes": self.peak_rss_bytes,
            "baseline_peak_rss_bytes": self.baseline_peak_rss_bytes,
            "rss_ratio": (round(self.rss_ratio, 3)
                          if self.rss_ratio is not None else None),
            "rss_regression": self.rss_regression,
        }


def compare_to_baseline(metrics: Sequence[PerfMetrics], baseline: Dict[str, Any],
                        threshold: float = DEFAULT_THRESHOLD) -> List[Comparison]:
    """Compare measured wall clocks and peak RSS against a loaded baseline.

    A scenario regresses when it is more than ``threshold`` slower than its
    baseline entry (ratio > 1 + threshold); peak RSS gets the same gate
    independently (``rss_regression``).  Scenarios absent from the baseline
    are reported with null ratios and never count as regressions, as are
    baselines recorded before the RSS fields existed.
    """
    by_name = {m["scenario"]: m for m in baseline.get("metrics", [])}
    out: List[Comparison] = []
    for metric in metrics:
        base = by_name.get(metric.scenario)
        if base is None or not base.get("wall_clock_s"):
            out.append(Comparison(metric.scenario, metric.wall_clock_s,
                                  None, None, False,
                                  peak_rss_bytes=metric.peak_rss_bytes))
            continue
        ratio = metric.wall_clock_s / base["wall_clock_s"]
        comparison = Comparison(metric.scenario, metric.wall_clock_s,
                                base["wall_clock_s"], ratio,
                                ratio > 1.0 + threshold,
                                peak_rss_bytes=metric.peak_rss_bytes)
        base_rss = base.get("peak_rss_bytes")
        if base_rss:
            comparison.baseline_peak_rss_bytes = base_rss
            comparison.rss_ratio = metric.peak_rss_bytes / base_rss
            comparison.rss_regression = comparison.rss_ratio > 1.0 + threshold
        out.append(comparison)
    return out


def load_baseline(path: str) -> Dict[str, Any]:
    """Load a baseline document written by :func:`build_document`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def build_document(tag: str, metrics: Sequence[PerfMetrics],
                   comparisons: Optional[Sequence[Comparison]] = None,
                   threshold: float = DEFAULT_THRESHOLD,
                   reference: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the ``BENCH_<tag>.json`` document."""
    doc: Dict[str, Any] = {
        "kind": "repro-bench-perf",
        "tag": tag,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "engine": active_engine(),
        "threshold": threshold,
        "metrics": [m.to_dict() for m in metrics],
    }
    if comparisons is not None:
        doc["baseline_comparison"] = [c.to_dict() for c in comparisons]
        doc["regressions"] = sorted(c.scenario for c in comparisons if c.regression)
        doc["rss_regressions"] = sorted(c.scenario for c in comparisons
                                        if c.rss_regression)
    if reference:
        doc["reference"] = dict(reference)
    return doc


def run_perf(scenarios: Sequence[str], repeats: int = 3, max_workers: int = 1,
             tag: str = "local", baseline_path: Optional[str] = None,
             threshold: float = DEFAULT_THRESHOLD,
             reference: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Measure ``scenarios`` and build the result document.

    When ``baseline_path`` names a readable baseline, a comparison section is
    included; the caller decides what to do about ``doc["regressions"]``.  A
    baseline that cannot be loaded is recorded as ``doc["baseline_error"]``
    instead of being silently ignored, so the regression gate never fails
    open without a trace.
    """
    metrics = [measure_scenario(name, repeats=repeats, max_workers=max_workers)
               for name in scenarios]
    comparisons = None
    baseline_error = None
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            baseline_error = f"cannot load baseline {baseline_path!r}: {exc}"
        else:
            comparisons = compare_to_baseline(metrics, baseline, threshold)
    doc = build_document(tag, metrics, comparisons, threshold,
                         reference=reference)
    if baseline_error is not None:
        doc["baseline_error"] = baseline_error
    return doc


# ------------------------------------------------------------------- history
def append_history(document: Dict[str, Any],
                   path: str = DEFAULT_HISTORY) -> Dict[str, Any]:
    """Append one compact line for ``document`` to the perf-trajectory log.

    The log is JSON Lines (one run per line) so the trajectory can be plotted
    or diffed without parsing full BENCH documents; CI uploads it as an
    artifact on every push.
    """
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "tag": document.get("tag", "local"),
        "python": document.get("python"),
        "platform": document.get("platform"),
        "engine": document.get("engine"),
        "metrics": {
            metric["scenario"]: {
                "wall_clock_s": metric["wall_clock_s"],
                "events_per_sec": metric["events_per_sec"],
                "committed_per_sec": metric["committed_per_sec"],
            }
            for metric in document.get("metrics", [])
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str = DEFAULT_HISTORY) -> List[Dict[str, Any]]:
    """Parse the perf-trajectory log (empty list if the file is missing)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    except OSError:
        return []


# ------------------------------------------------------------------- profile
#: Profile rows reported per scenario (sorted by cumulative time).
DEFAULT_PROFILE_TOP_N = 25


def profile_scenario(name: str, top_n: int = DEFAULT_PROFILE_TOP_N,
                     **overrides: Any) -> Dict[str, Any]:
    """cProfile one serial pass of a scenario; returns the top-N hot functions.

    The sweep runs in-process (profiling a worker pool would only profile the
    dispatch loop), sorted by *cumulative* time so the engine's dispatch and
    resume frames surface even when their self-time is spread across callees.
    The result is JSON-serialisable and lands in the ``profiles`` section of
    the BENCH document next to the timing metrics, so hot-kernel claims are
    measured rather than asserted.
    """
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    sweep = get_scenario(name).sweep(**overrides)
    runner = SweepRunner(max_workers=1)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    runner.run(sweep)
    profiler.disable()
    wall = time.perf_counter() - started
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    ranked = sorted(stats.stats.items(),  # type: ignore[attr-defined]
                    key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in ranked[:top_n]:
        rows.append({
            "function": f"{filename}:{lineno}({funcname})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 5),
            "cumtime_s": round(ct, 5),
        })
    return {
        "scenario": name,
        "engine": active_engine(),
        "sort": "cumulative",
        "top_n": top_n,
        "wall_clock_s": round(wall, 5),
        "rows": rows,
    }


def format_profile(profile: Dict[str, Any]) -> str:
    """Render one :func:`profile_scenario` result as an aligned text table."""
    header = (f"{'cumtime s':>10} {'tottime s':>10} {'ncalls':>12}  function")
    lines = [f"scenario {profile['scenario']} "
             f"(engine={profile.get('engine', '?')}, "
             f"wall={profile.get('wall_clock_s', 0.0):.3f}s, "
             f"top {profile['top_n']} by {profile['sort']})",
             header, "-" * len(header)]
    for row in profile["rows"]:
        lines.append(f"{row['cumtime_s']:>10.4f} {row['tottime_s']:>10.4f} "
                     f"{row['ncalls']:>12}  {row['function']}")
    return "\n".join(lines)


# ------------------------------------------------------------------- compare
#: Metadata keys that make two BENCH documents comparable; differing values
#: mean the wall-clock delta measures the environment, not the code.
COMPARABLE_METADATA = ("python", "platform", "engine")


def document_metadata_mismatches(doc_a: Dict[str, Any], doc_b: Dict[str, Any],
                                 labels: Tuple[str, str] = ("A", "B"),
                                 ) -> List[str]:
    """Human-readable warnings for BENCH documents that are not comparable.

    Checks the :data:`COMPARABLE_METADATA` keys (interpreter version,
    platform, engine).  A key missing from a document — e.g. a baseline
    recorded before the ``engine`` field existed — is reported too, as
    ``<missing>``: silently treating old pure-engine baselines as comparable
    to compiled-engine runs is exactly the mix-up this guard exists for.
    """
    warnings: List[str] = []
    for key in COMPARABLE_METADATA:
        value_a = doc_a.get(key, "<missing>")
        value_b = doc_b.get(key, "<missing>")
        if value_a != value_b:
            warnings.append(
                f"{key} differs: {labels[0]}={value_a} vs {labels[1]}={value_b}"
                f" — wall-clock deltas measure the environment, not the code")
    return warnings


def compare_documents(doc_a: Dict[str, Any],
                      doc_b: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-scenario deltas between two BENCH documents (B measured vs A).

    ``speedup`` is A's wall clock over B's (> 1 means B is faster); scenarios
    present in only one document get null deltas instead of being dropped.
    """
    metrics_a = {m["scenario"]: m for m in doc_a.get("metrics", [])}
    metrics_b = {m["scenario"]: m for m in doc_b.get("metrics", [])}
    rows: List[Dict[str, Any]] = []
    for scenario in list(metrics_a) + [name for name in metrics_b
                                       if name not in metrics_a]:
        a, b = metrics_a.get(scenario), metrics_b.get(scenario)
        row: Dict[str, Any] = {
            "scenario": scenario,
            "wall_clock_a_s": a["wall_clock_s"] if a else None,
            "wall_clock_b_s": b["wall_clock_s"] if b else None,
            "events_per_sec_a": a["events_per_sec"] if a else None,
            "events_per_sec_b": b["events_per_sec"] if b else None,
            "peak_rss_a_bytes": a.get("peak_rss_bytes") if a else None,
            "peak_rss_b_bytes": b.get("peak_rss_bytes") if b else None,
            "speedup": None,
            "events_per_sec_delta": None,
            "peak_rss_delta": None,
        }
        if a and b and b["wall_clock_s"]:
            row["speedup"] = round(a["wall_clock_s"] / b["wall_clock_s"], 3)
        if a and b and a["events_per_sec"]:
            row["events_per_sec_delta"] = round(
                (b["events_per_sec"] - a["events_per_sec"])
                / a["events_per_sec"], 3)
        if (a and b and a.get("peak_rss_bytes")
                and b.get("peak_rss_bytes") is not None):
            row["peak_rss_delta"] = round(
                (b["peak_rss_bytes"] - a["peak_rss_bytes"])
                / a["peak_rss_bytes"], 3)
        rows.append(row)
    return rows


def format_comparison(rows: Sequence[Dict[str, Any]],
                      labels: Tuple[str, str] = ("A", "B")) -> str:
    """Render :func:`compare_documents` rows as an aligned text table."""
    header = (f"{'scenario':<24} {'wall ' + labels[0]:>10} "
              f"{'wall ' + labels[1]:>10} {'speedup':>8} "
              f"{'ev/s ' + labels[0]:>12} {'ev/s ' + labels[1]:>12} "
              f"{'ev/s delta':>10} "
              f"{'rss ' + labels[0]:>9} {'rss ' + labels[1]:>9} "
              f"{'rss delta':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        def fmt(value, pattern):
            return pattern.format(value) if value is not None else "-"

        def fmt_rss(value):
            return f"{value / 2**20:.1f}M" if value is not None else "-"
        lines.append(
            f"{row['scenario']:<24} {fmt(row['wall_clock_a_s'], '{:.4f}'):>10} "
            f"{fmt(row['wall_clock_b_s'], '{:.4f}'):>10} "
            f"{fmt(row['speedup'], '{:.2f}x'):>8} "
            f"{fmt(row['events_per_sec_a'], '{:,.0f}'):>12} "
            f"{fmt(row['events_per_sec_b'], '{:,.0f}'):>12} "
            f"{fmt(row['events_per_sec_delta'], '{:+.1%}'):>10} "
            f"{fmt_rss(row.get('peak_rss_a_bytes')):>9} "
            f"{fmt_rss(row.get('peak_rss_b_bytes')):>9} "
            f"{fmt(row.get('peak_rss_delta'), '{:+.1%}'):>9}")
    return "\n".join(lines)
