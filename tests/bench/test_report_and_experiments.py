"""Tests for the reporting helpers and (smoke-level) the experiment functions.

``format_table`` gets property-style coverage (hypothesis): for any mix of
int/float/str cells and any header widths, the rendered table must stay
rectangular, aligned and lossless about cell order — and the float formatting
must depend on magnitude, not sign (the ``abs()`` regression pin).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.report import _format_cell, format_table, print_series, \
    print_table
from repro.bench.experiments import fig6_resources_breakdown, fig15_multi_region


def test_format_table_aligns_columns_and_formats_numbers():
    text = format_table(["system", "tput"], [("geotp", 123.456), ("ssp", 7.1)])
    lines = text.splitlines()
    assert lines[0].startswith("system")
    assert "123.5" in text
    assert "7.10" in text
    assert len(lines) == 4  # header, rule, two rows


def test_format_cell_uses_magnitude_not_sign_for_float_precision():
    # Regression pin: -12345.678 used to fall through to the two-decimal
    # branch because the threshold compared the signed value.
    assert _format_cell(12345.678) == "12345.7"
    assert _format_cell(-12345.678) == "-12345.7"
    assert _format_cell(99.994) == "99.99"
    assert _format_cell(-99.994) == "-99.99"
    assert _format_cell(100.0) == "100.0"
    assert _format_cell(-100.0) == "-100.0"


def test_format_table_negative_large_floats_align_with_positive_ones():
    text = format_table(["v"], [(1234.5,), (-1234.5,)])
    rows = text.splitlines()[2:]
    assert rows[0].rstrip() == "1234.5"
    assert rows[1].rstrip() == "-1234.5"


_cell = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e9, max_value=1e9),
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            max_size=12))


@settings(max_examples=60, deadline=None)
@given(headers=st.lists(st.text(
           alphabet=st.characters(min_codepoint=33, max_codepoint=126),
           min_size=1, max_size=20), min_size=1, max_size=5),
       data=st.data())
def test_format_table_is_rectangular_and_aligned(headers, data):
    n_columns = len(headers)
    rows = data.draw(st.lists(
        st.lists(_cell, min_size=n_columns, max_size=n_columns), max_size=6))
    lines = format_table(headers, rows).splitlines()
    assert len(lines) == 2 + len(rows)
    # Alignment invariant: every line is exactly as wide as the rule line
    # (modulo the trailing padding of left-justified last cells).
    rule_width = len(lines[1])
    for line in lines:
        assert len(line.rstrip()) <= rule_width
    # The rule is dashes and separators only.
    assert set(lines[1]) <= {"-", " "}
    # Losslessness: every rendered cell appears in its row's line, in order.
    for row, line in zip(rows, lines[2:]):
        position = 0
        for cell in row:
            rendered = _format_cell(cell)
            found = line.find(rendered, position)
            assert found >= 0, (rendered, line)
            position = found + len(rendered)


@settings(max_examples=30, deadline=None)
@given(headers=st.lists(st.sampled_from(["a", "bb", "a really wide header"]),
                        min_size=1, max_size=4))
def test_format_table_with_no_rows_renders_headers_and_rule_only(headers):
    lines = format_table(headers, []).splitlines()
    assert len(lines) == 2
    # Column widths are the (possibly ragged) header widths.
    assert [len(dash) for dash in lines[1].split("  ")] \
        == [len(h) for h in headers]


@settings(max_examples=30, deadline=None)
@given(value=st.floats(allow_nan=False, allow_infinity=False,
                       min_value=1e-9, max_value=1e15))
def test_format_cell_float_precision_is_symmetric_in_sign(value):
    assert _format_cell(-value) == "-" + _format_cell(value)


def test_print_table_and_series_write_to_stdout(capsys):
    print_table("demo", ["x", "y"], [(1, 2)])
    print_series("series", [(0.0, 1.0), (1.0, 2.0)], x_label="t", y_label="v")
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "== series ==" in out
    assert "t" in out and "v" in out


def test_fig6_experiment_smoke(capsys):
    """A tiny fig6 run exercises the experiment plumbing end to end."""
    result = fig6_resources_breakdown(duration_ms=3000, terminals=8, report=True)
    assert set(result) == {"ssp", "geotp"}
    for data in result.values():
        assert data["throughput_tps"] >= 0
        assert "breakdown" in data
    assert "Fig 6a/6b" in capsys.readouterr().out


def test_fig15_experiment_smoke():
    result = fig15_multi_region(duration_ms=3000, terminals=8)
    assert set(result) == {"ssp", "geotp"}
    for data in result.values():
        assert data["single_middleware_tps"] >= 0
        assert data["multi_middleware_tps"] >= 0
