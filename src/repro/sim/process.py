"""Generator-based processes for the simulation engine.

A :class:`Process` wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the environment; the generator is resumed
with the event's value once it fires.  A process is itself an event that
triggers when the generator returns (its value is the generator's return
value), so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Process(Event):
    """An active simulation process driving a generator of events."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Any = None
        # Kick the process off at the current simulation time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Any:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        # Drop our subscription on the event we were waiting for: a process
        # interrupted while waiting must not be resumed again by that event.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
        self._target = None

        env._active_process = self
        while True:
            try:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event.value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = getattr(stop, "value", None)
                env.schedule(self)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure propagates as event failure
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if next_event.processed:
                # Already fired: loop immediately with its value.
                event = next_event
                continue

            # Subscribe and suspend.
            next_event.callbacks.append(self._resume)
            self._target = next_event
            env._active_process = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
