"""The registered fault scenario family: determinism pins and sanity bands.

Two properties per scenario:

* **Same-seed byte-determinism** — a fault run is still a deterministic
  simulation: the same config (fault plan included) must produce the exact
  same summary twice, latency digest and fault report included.
* **Post-recovery sanity band** — the fault run's committed count must land
  within a band of the fault-free run minus the outage window
  (:func:`repro.recovery.failures.post_recovery_band`): faults must bite, but
  the system must come back.
"""

import hashlib

import pytest

from repro.bench.parallel import SweepRunner
from repro.bench.scenarios import (
    FAULT_SYSTEMS,
    fault_window,
    get_scenario,
)
from repro.recovery.failures import post_recovery_band

FAULT_SCENARIOS = ("fault_middleware_crash", "fault_ds_crash",
                   "fault_region_outage", "fault_latency_spike")

#: Reduced scale shared by every test here: 4 s simulated, light tables.
SCALE = dict(duration_ms=4_000.0, warmup_ms=800.0, terminals=6,
             ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200)


def run_point(scenario_name, system, seed=0, fault_free=False):
    scenario = get_scenario(scenario_name)
    sweep = scenario.sweep(axes={"system": (system,)}, seed=seed, **SCALE)
    points = sweep.points()
    assert len(points) == 1
    config = points[0].config
    if fault_free:
        config.fault_plan = None
    from repro.bench.runner import run_experiment
    return run_experiment(config)


def digest(result):
    samples = list(result.latency.samples)
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "abort_reasons": result.collector.abort_reasons(),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
        "faults": result.faults,
    }


# ---------------------------------------------------------------- registration
def test_fault_scenarios_are_registered_with_geotp_and_two_baselines():
    assert len(FAULT_SYSTEMS) >= 3
    assert "geotp" in FAULT_SYSTEMS
    for name in FAULT_SCENARIOS:
        scenario = get_scenario(name)
        (system_axis,) = [axis for axis in scenario.axes
                          if axis.name == "system"]
        assert system_axis.values == FAULT_SYSTEMS


def test_fault_window_scales_with_duration():
    at, dur = fault_window(10_000.0)
    assert at == 4_000.0 and dur == 1_500.0
    at_small, dur_small = fault_window(4_000.0)
    assert at_small == 1_600.0 and dur_small == 600.0


def test_fault_plan_is_derived_per_point_and_stays_inside_the_run():
    for name in FAULT_SCENARIOS:
        sweep = get_scenario(name).sweep(**SCALE)
        for point in sweep.points():
            plan = point.config.fault_plan
            assert plan is not None
            for event in plan.events:
                assert event.at_ms >= point.config.warmup_ms
                assert event.at_ms + event.duration_ms < point.config.duration_ms


# ----------------------------------------------------------------- determinism
@pytest.mark.parametrize("scenario_name", FAULT_SCENARIOS)
@pytest.mark.parametrize("system", ("ssp", "geotp"))
def test_same_seed_fault_runs_are_byte_identical(scenario_name, system):
    first = digest(run_point(scenario_name, system, seed=11))
    second = digest(run_point(scenario_name, system, seed=11))
    assert first == second


def test_fault_sweep_results_identical_serial_and_parallel():
    """The fault report must survive pickling across pool workers unchanged."""
    sweep = get_scenario("fault_ds_crash").sweep(
        axes={"system": ("ssp", "geotp")}, **SCALE)
    serial = SweepRunner(max_workers=1).run(sweep)
    pooled = SweepRunner(max_workers=2).run(sweep)
    for left, right in zip(serial.summaries(), pooled.summaries()):
        assert left.to_dict() == right.to_dict()


# ---------------------------------------------------------------- sanity bands
@pytest.mark.parametrize("scenario_name", FAULT_SCENARIOS)
def test_post_recovery_commits_within_band_of_fault_free_run(scenario_name):
    faulted = run_point(scenario_name, "geotp", seed=3)
    fault_free = run_point(scenario_name, "geotp", seed=3, fault_free=True)
    assert fault_free.faults is None and faulted.faults is not None

    measured_ms = 4_000.0 - 800.0
    outage_ms = sum(end - start
                    for start, end in ((e["at_ms"], e["at_ms"] + e["duration_ms"])
                                       for e in faulted.faults["plan"]))
    lo, hi = post_recovery_band(fault_free.committed, measured_ms, outage_ms,
                                slack=0.35)
    assert lo <= faulted.committed <= hi, (
        f"{scenario_name}: committed {faulted.committed} outside "
        f"[{lo:.1f}, {hi:.1f}] (fault-free {fault_free.committed}, "
        f"outage {outage_ms:.0f}ms of {measured_ms:.0f}ms)")

    # And the service is back by the end of the run: the last second commits.
    series = faulted.faults["availability"]["series"]
    assert sum(committed for start, committed, _ in series
               if start >= 3_000.0) > 0, f"{scenario_name} never recovered"
