"""Unit tests for topologies and cluster deployment."""

import pytest

from repro.cluster import TopologyConfig, build_cluster, region_rtt_ms
from repro.cluster.topology import DataNodeSpec, MiddlewareSpec
from repro.middleware import ModuloPartitioner
from repro.sim import JitterLatency


def test_region_rtt_lookup():
    assert region_rtt_ms("beijing", "beijing") == 0.0
    assert region_rtt_ms("beijing", "london") == 251.0
    assert region_rtt_ms("London", "Beijing") == 251.0
    with pytest.raises(KeyError):
        region_rtt_ms("beijing", "mars")


def test_paper_default_topology_matches_paper_rtts():
    topology = TopologyConfig.paper_default()
    assert topology.node_names() == ["ds0", "ds1", "ds2", "ds3"]
    dm = topology.middlewares[0]
    rtts = [topology.middleware_link_model(dm, node).rtt_at(0)
            for node in topology.data_nodes]
    assert rtts == [0.0, 27.0, 73.0, 251.0]


def test_from_rtts_topology_and_validation():
    topology = TopologyConfig.from_rtts([10, 50, 90])
    dm = topology.middlewares[0]
    assert [topology.middleware_link_model(dm, n).rtt_at(0)
            for n in topology.data_nodes] == [10, 50, 90]
    with pytest.raises(ValueError):
        TopologyConfig.from_rtts([])
    with pytest.raises(ValueError):
        TopologyConfig.paper_default(num_nodes=9)
    with pytest.raises(ValueError):
        TopologyConfig(data_nodes=[])
    with pytest.raises(ValueError):
        TopologyConfig(data_nodes=[DataNodeSpec(name="a"), DataNodeSpec(name="a")])


def test_from_latency_models_uses_given_models():
    model = JitterLatency(40, std_ms=5)
    topology = TopologyConfig.from_latency_models([model, model])
    dm = topology.middlewares[0]
    assert topology.middleware_link_model(dm, topology.data_nodes[0]) is model


def test_multi_middleware_topology_places_second_dm_remotely():
    topology = TopologyConfig.multi_middleware()
    assert len(topology.middlewares) == 2
    dm2 = topology.middlewares[1]
    # dm2 is co-located with the last (London) data node.
    assert topology.middleware_link_model(dm2, topology.data_nodes[-1]).rtt_at(0) == 0.0
    assert topology.middleware_link_model(dm2, topology.data_nodes[0]).rtt_at(0) == 251.0


def test_rtt_overrides_take_precedence():
    topology = TopologyConfig(
        data_nodes=[DataNodeSpec(name="ds0", region="beijing", rtt_to_dm_ms=40.0)],
        middlewares=[MiddlewareSpec(rtt_overrides={"ds0": 5.0})])
    dm = topology.middlewares[0]
    assert topology.middleware_link_model(dm, topology.data_nodes[0]).rtt_at(0) == 5.0


def test_build_cluster_for_every_supported_system():
    from repro.cluster import SUPPORTED_SYSTEMS, get_system_plugin
    for system in SUPPORTED_SYSTEMS:
        topology = TopologyConfig.from_rtts([5, 30])
        partitioner = ModuloPartitioner(topology.node_names())
        cluster = build_cluster(system, topology, partitioner)
        assert cluster.system == system
        assert set(cluster.datasources) == {"ds0", "ds1"}
        assert len(cluster.middlewares) == 1
        # Geo-agents are wired exactly when the plugin's capability asks for
        # them — the deployment must not special-case any system name.
        if get_system_plugin(system).needs_agents:
            assert set(cluster.agents) == {"ds0", "ds1"}
        else:
            assert cluster.agents == {}


def test_build_cluster_accepts_aliases_and_rejects_unknown():
    topology = TopologyConfig.from_rtts([5])
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("ScalarDB+", topology, partitioner)
    assert cluster.system == "scalardb_plus"
    cluster = build_cluster("YugabyteDB", topology, partitioner)
    assert cluster.system == "yugabyte"
    with pytest.raises(ValueError):
        build_cluster("oracle-rac", topology, partitioner)


def test_build_cluster_heterogeneous_dialects():
    topology = TopologyConfig.paper_default(dialects=["mysql", "postgresql",
                                                      "mysql", "postgresql"])
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("ssp", topology, partitioner)
    assert cluster.datasources["ds0"].dialect.name == "mysql"
    assert cluster.datasources["ds1"].dialect.name == "postgresql"


def test_yugabyte_coordinator_is_colocated_with_first_node():
    topology = TopologyConfig.paper_default()
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster("yugabyte", topology, partitioner)
    assert cluster.network.rtt("dm", "ds0") == 0.0
    assert cluster.network.rtt("dm", "ds3") == region_rtt_ms("beijing", "london")
