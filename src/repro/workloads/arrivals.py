"""Open-system arrival processes: offered load as a *rate*, not a terminal count.

Every scenario before this module was closed-loop — N terminals that wait for
each outcome before submitting again — so the offered load could never exceed
the system's capacity and the goodput/latency knee the paper's admission
control (§IV-C) exists for was unreachable.  An :class:`ArrivalProcess` turns
the load axis into transactions *per second of simulated time*: a generator
process draws inter-arrival gaps from the process and hands each arrival to a
bounded client pool (:class:`~repro.cluster.open_loop.OpenClientPool`), which
sheds arrivals when every client slot is busy.

Three processes cover the classic open-system shapes:

* :class:`PoissonArrivals` — memoryless arrivals at a constant mean rate, the
  M/·/· baseline every queueing result is stated against;
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process that
  alternates between a quiet state and a burst state (rate × ``burst_factor``)
  with exponentially distributed dwell times, modelling flash crowds while
  keeping the configured *mean* rate exact;
* :class:`DiurnalArrivals` — a sinusoidal day/night wave implemented by
  thinning a peak-rate Poisson stream, so the instantaneous rate follows
  ``rate · (1 + amplitude · sin(2πt/period))`` exactly.

All randomness flows through one :class:`~repro.sim.rng.SeededRNG`, so a given
``(config, seed)`` reproduces the same arrival timestamps bit for bit — the
same determinism contract the closed-loop workloads honour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.sim.rng import SeededRNG

#: Registered arrival-process names (the ``ArrivalConfig.process`` values).
ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal")


@dataclass
class ArrivalConfig:
    """Declarative open-system traffic shape (``ExperimentConfig.arrival``).

    Setting this on an experiment config switches the run from closed-loop
    terminals to an open-system client pool; ``rate_tps`` is then the sweep
    axis the ``load_sweep`` scenario family drives past saturation.
    """

    #: One of :data:`ARRIVAL_PROCESSES`.
    process: str = "poisson"
    #: Mean offered load in transactions per simulated second.
    rate_tps: float = 200.0
    #: Bound on concurrently open client sessions; arrivals beyond it are
    #: shed (counted, never queued), which keeps client-side memory O(1).
    max_clients: int = 256
    #: MMPP: burst-state rate multiplier (>= 1).
    burst_factor: float = 8.0
    #: MMPP: long-run fraction of time spent in the burst state (0 < f < 1).
    burst_fraction: float = 0.1
    #: MMPP: mean dwell time of one burst, in ms.
    mean_burst_ms: float = 500.0
    #: Diurnal: period of the rate wave, in ms.
    period_ms: float = 60_000.0
    #: Diurnal: relative swing of the wave (0 = flat, 1 = rate touches zero).
    amplitude: float = 0.8
    #: RNG seed of the arrival stream; the runner stamps the experiment seed
    #: here (same contract as ``WorkloadConfig.seed``).
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range knob (fail before the run)."""
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"choose one of {list(ARRIVAL_PROCESSES)}")
        if self.rate_tps <= 0:
            raise ValueError("rate_tps must be positive")
        if self.max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must lie inside (0, 1)")
        if self.mean_burst_ms <= 0:
            raise ValueError("mean_burst_ms must be positive")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must lie inside [0, 1)")

    def stamped(self, seed: int) -> "ArrivalConfig":
        """A copy with the experiment seed stamped on (never mutates shared
        configs — the same contract ``make_workload`` keeps for workloads)."""
        return replace(self, seed=seed)


class ArrivalProcess:
    """Base class: a deterministic stream of inter-arrival gaps."""

    def __init__(self, config: ArrivalConfig):
        config.validate()
        self.config = config
        # Arrival timing draws from its own derived stream so it is
        # independent of the workload's RNG consumption (and vice versa).
        self.rng = SeededRNG(config.seed).spawn(0x0A2217)

    def next_gap_ms(self, now_ms: float) -> float:
        """Milliseconds from ``now_ms`` until the next arrival."""
        raise NotImplementedError

    def mean_rate_tps(self) -> float:
        """The long-run mean arrival rate (what ``rate_tps`` configures)."""
        return self.config.rate_tps


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: exponential gaps at the mean rate."""

    def __init__(self, config: ArrivalConfig):
        super().__init__(config)
        self._mean_gap_ms = 1000.0 / config.rate_tps

    def next_gap_ms(self, now_ms: float) -> float:
        return self.rng.exponential(self._mean_gap_ms)


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet ↔ burst).

    The quiet-state rate is derated so the *long-run mean* equals the
    configured ``rate_tps`` exactly::

        mean = (1 - f) · r_quiet + f · r_quiet · burst_factor  =  rate_tps

    State dwell times are exponential (mean ``mean_burst_ms`` in the burst
    state, scaled by the odds ratio in the quiet state), and arrivals are
    drawn with the memoryless-restart construction: a candidate gap that
    crosses the next state switch is discarded and redrawn from the switch
    point at the new state's rate, which is exact for exponential gaps.
    """

    def __init__(self, config: ArrivalConfig):
        super().__init__(config)
        f, b = config.burst_fraction, config.burst_factor
        quiet_rate = config.rate_tps / ((1.0 - f) + f * b)
        self._gap_ms = (1000.0 / quiet_rate, 1000.0 / (quiet_rate * b))
        self._dwell_ms = (config.mean_burst_ms * (1.0 - f) / f,
                          config.mean_burst_ms)
        self._state = 0  # start quiet; the seeded dwell draw decides the rest
        self._switch_at_ms = self.rng.exponential(self._dwell_ms[0])

    def next_gap_ms(self, now_ms: float) -> float:
        at = now_ms
        while True:
            gap = self.rng.exponential(self._gap_ms[self._state])
            if at + gap < self._switch_at_ms:
                return (at + gap) - now_ms
            # Crossed a state switch: jump to it, toggle, redraw (memoryless).
            at = self._switch_at_ms
            self._state = 1 - self._state
            self._switch_at_ms = at + self.rng.exponential(
                self._dwell_ms[self._state])


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night rate wave via Poisson thinning.

    Candidates are generated at the peak rate ``rate · (1 + amplitude)`` and
    accepted with probability ``rate(t) / peak``; the accepted stream is an
    exact non-homogeneous Poisson process with the sinusoidal intensity.
    """

    def __init__(self, config: ArrivalConfig):
        super().__init__(config)
        self._peak_rate = config.rate_tps * (1.0 + config.amplitude)
        self._mean_gap_ms = 1000.0 / self._peak_rate
        self._omega = 2.0 * math.pi / config.period_ms

    def rate_at(self, t_ms: float) -> float:
        """Instantaneous arrival rate (tps) at simulated time ``t_ms``."""
        return self.config.rate_tps * (
            1.0 + self.config.amplitude * math.sin(self._omega * t_ms))

    def next_gap_ms(self, now_ms: float) -> float:
        at = now_ms
        while True:
            at += self.rng.exponential(self._mean_gap_ms)
            if self.rng.random() * self._peak_rate <= self.rate_at(at):
                return at - now_ms


_PROCESS_CLASSES = {
    "poisson": PoissonArrivals,
    "mmpp": MMPPArrivals,
    "diurnal": DiurnalArrivals,
}


def make_arrivals(config: ArrivalConfig) -> ArrivalProcess:
    """Instantiate the arrival process selected by ``config.process``."""
    config.validate()
    return _PROCESS_CLASSES[config.process](config)
