"""Closed-loop client terminals (the Benchbase driver substitute).

Each terminal repeatedly generates a transaction from the workload, submits it
to a middleware, waits for the outcome and immediately submits the next one —
the closed-loop, zero-think-time model the paper uses.  Results are recorded in
a :class:`~repro.metrics.MetricsCollector` (and optionally a throughput
timeline for the time-series experiments).

Two routing modes exist:

* **Pinned** (the default): every terminal is bound to one middleware at
  construction, round-robin over the list — the original single-coordinator
  model, kept byte-identical for the golden pins.
* **Fleet**: when a :class:`~repro.cluster.fleet.MiddlewareFleet` is passed,
  each submission is routed through its policy, clean refusals
  (``TransactionResult.rejected``) fail over to a healthy middleware under
  the :class:`~repro.cluster.fleet.RetryPolicy`'s budget, and outcomes feed
  the fleet's failure detector.

Backoff after an ``UNAVAILABLE`` outcome follows the
:class:`~repro.cluster.fleet.RetryPolicy` (capped exponential with
deterministic seeded jitter) when one is configured; without one the legacy
fixed ``RETRY_BACKOFF_MS`` pause applies (deprecated, kept as a fallback).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common import AbortReason
from repro.cluster.fleet import MiddlewareFleet, RetryPolicy
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeline import ThroughputTimeline
from repro.middleware.middleware import MiddlewareBase
from repro.sim.environment import Environment
from repro.sim.process import Process
from repro.sim.rng import SeededRNG
from repro.workloads.base import Workload


class ClientTerminal:
    """One closed-loop client session."""

    #: Deprecated fallback: the fixed pause before reconnecting after the
    #: middleware refused a submission (``AbortReason.UNAVAILABLE``), used
    #: only when no :class:`RetryPolicy` is configured.  Without a pause a
    #: closed loop would spin at simulated-zero cost against a dead
    #: coordinator.  Prefer ``ExperimentConfig.retry``.
    RETRY_BACKOFF_MS = 50.0

    def __init__(self, env: Environment, terminal_id: int, middleware: MiddlewareBase,
                 workload: Workload, collector: MetricsCollector,
                 stop_at_ms: float, timeline: Optional[ThroughputTimeline] = None,
                 think_time_ms: float = 0.0,
                 fleet: Optional[MiddlewareFleet] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0,
                 autostart: bool = True):
        self.env = env
        self.terminal_id = terminal_id
        self.middleware = middleware
        self.workload = workload
        self.collector = collector
        self.timeline = timeline
        self.stop_at_ms = stop_at_ms
        self.think_time_ms = think_time_ms
        self.fleet = fleet
        self.retry = retry
        #: Failover retries spent so far (bounded by ``retry.budget``).
        self.retries_spent = 0
        self.transactions_run = 0
        # The jitter stream is derived, not shared: every terminal draws from
        # its own seeded RNG, so retry timing is independent of how many other
        # terminals are backing off (and of the workload's RNG consumption).
        self._retry_rng = (SeededRNG(seed).spawn(terminal_id)
                           if retry is not None else None)
        self._unavailable_streak = 0
        # ``autostart=False`` builds the terminal as a pure submitter — no
        # closed loop is started; the open-system pool
        # (:class:`~repro.cluster.open_loop.OpenClientPool`) drives
        # :meth:`_submit` one arrival at a time, reusing the exact fleet
        # failover/retry discipline above instead of duplicating it.
        self.process: Optional[Process] = (
            env.process(self._run(), name=f"terminal-{terminal_id}",
                        daemon=True)
            if autostart else None)

    # ------------------------------------------------------------------ loop
    def _run(self):
        while self.env.now < self.stop_at_ms:
            spec = self.workload.next_transaction(self.terminal_id)
            result = yield from self._submit(spec)
            self.transactions_run += 1
            self.collector.record(result, txn_type=spec.txn_type)
            if self.timeline is not None and result.committed:
                self.timeline.record(result.end_time)
            if result.abort_reason is AbortReason.UNAVAILABLE:
                yield self.env.timeout(self._backoff_ms())
                self._unavailable_streak += 1
                # Re-check after the sleep: a backoff that lands at (or past)
                # the stop time must not buy one extra transaction.
                if self.env.now >= self.stop_at_ms:
                    break
            else:
                self._unavailable_streak = 0
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)
                if self.env.now >= self.stop_at_ms:
                    break

    def _backoff_ms(self) -> float:
        if self.retry is None:
            return self.RETRY_BACKOFF_MS
        return self.retry.backoff_ms(self._unavailable_streak, self._retry_rng)

    # ---------------------------------------------------------------- submit
    def _submit(self, spec):
        """Generator: submit once — or, in fleet mode, with failover retries.

        Only *clean refusals* (``result.rejected``: the middleware was
        already crashed at submit time, nothing was coordinated) are retried
        against a different middleware; an interrupted in-flight coordination
        is returned as-is because its in-doubt branches may yet be committed
        by recovery — resubmitting the spec could duplicate its effects.
        """
        if self.fleet is None:
            result = yield self.middleware.submit(spec)
            return result
        middleware = self.fleet.route(self.terminal_id)
        failover = 0
        while True:
            self.fleet.note_submit(middleware, failover=failover > 0)
            result = yield middleware.submit(spec)
            self.fleet.note_result(middleware, result)
            if not result.rejected or self.retry is None:
                return result
            if failover >= self.retry.max_failovers:
                return result
            if self.retries_spent >= self.retry.budget:
                self.fleet.note_budget_exhausted()
                return result
            self.retries_spent += 1
            self.fleet.retries += 1
            delay = self.retry.backoff_ms(failover, self._retry_rng)
            if delay > 0:
                yield self.env.timeout(delay)
            if self.env.now >= self.stop_at_ms:
                return result
            failover += 1
            middleware = self.fleet.route_away_from(self.terminal_id, middleware)


def start_terminals(env: Environment, middlewares: Sequence[MiddlewareBase],
                    workload: Workload, collector: MetricsCollector,
                    terminal_count: int, duration_ms: float,
                    timeline: Optional[ThroughputTimeline] = None,
                    think_time_ms: float = 0.0,
                    fleet: Optional[MiddlewareFleet] = None,
                    retry: Optional[RetryPolicy] = None,
                    seed: int = 0) -> List[ClientTerminal]:
    """Start ``terminal_count`` terminals over the middlewares.

    Without a ``fleet`` every terminal is pinned round-robin at construction
    (the legacy single-coordinator model); with one, terminals route each
    submission through the fleet's policy and the pinned assignment only
    serves as a deterministic fallback reference.
    """
    if terminal_count < 1:
        raise ValueError("terminal_count must be >= 1")
    if not middlewares:
        raise ValueError("at least one middleware is required")
    terminals = []
    for index in range(terminal_count):
        middleware = middlewares[index % len(middlewares)]
        terminals.append(ClientTerminal(
            env, index, middleware, workload, collector,
            stop_at_ms=duration_ms, timeline=timeline, think_time_ms=think_time_ms,
            fleet=fleet, retry=retry, seed=seed))
    return terminals
