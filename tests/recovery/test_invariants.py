"""Edge-case coverage for the robustness-invariant checker.

One deliberately-broken summary fixture per invariant: each must fire with an
*actionable* message (the observed numbers, not just a boolean), and a healthy
summary must pass everything applicable while skipping the rest.
"""

import copy
from types import SimpleNamespace

from repro.recovery.invariants import (
    INVARIANTS,
    all_passed,
    check_invariants,
    invariant,
    violations,
)


def healthy_summary(**overrides):
    """A minimal summary that satisfies every applicable invariant.

    Duck-typed like the real ``ExperimentSummary`` — the checker only reads
    attributes, so a namespace keeps each fixture's breakage explicit.
    """
    faults = {
        "plan": [{"kind": "datasource_crash", "target": "ds1",
                  "at_ms": 2_000.0, "duration_ms": 1_000.0}],
        "recoveries": [{"kind": "datasource_crash", "target": "ds1",
                        "recovery_ms": 12.5}],
        "availability": {
            "bucket_ms": 1_000.0,
            "series": [[0.0, 50, 2], [1_000.0, 48, 1], [2_000.0, 5, 9],
                       [3_000.0, 40, 3], [4_000.0, 49, 2], [5_000.0, 50, 1]],
        },
        "time_to_recover_ms": {"datasource_crash(ds1) @2000ms for 1000ms": 500.0},
        "recovery_baseline_tps": {"datasource_crash(ds1) @2000ms for 1000ms": 49.0},
        "wal_in_doubt": {"prepared_at_end": 0, "orphans": []},
    }
    base = dict(
        committed=200, aborted=20, warmup_samples=30,
        measured_duration_ms=4_000.0, throughput_tps=200 / 4.0,
        abort_reasons={"lock_timeout": 15, "peer_abort": 5},
        open_loop={"offered": 260, "started": 255, "dropped": 5,
                   "completed": 250, "in_flight_at_end": 5},
        fleet={"attribution": {"dm1": {"committed": 120, "aborted": 12},
                               "dm2": {"committed": 80, "aborted": 8}}},
        faults=faults,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def failed(report, name):
    assert report[name]["status"] == "failed", report[name]
    return report[name]["detail"]


# ------------------------------------------------------------------ pass path
def test_healthy_summary_passes_every_applicable_invariant():
    report = check_invariants(healthy_summary())
    assert violations(report) == []
    assert all_passed(report)
    assert all(entry["status"] == "passed" for entry in report.values()), report


def test_closed_loop_fault_free_summary_skips_the_specific_invariants():
    summary = healthy_summary(open_loop=None, fleet=None, faults=None)
    report = check_invariants(summary)
    assert all_passed(report)
    for name in ("books_balance", "no_lost_transactions", "attribution_sums",
                 "availability_recovers", "wal_in_doubt_empty",
                 "recovery_completed"):
        assert report[name]["status"] == "skipped"
    assert report["abort_reasons_bounded"]["status"] == "passed"
    assert report["throughput_accounting"]["status"] == "passed"


# ------------------------------------------------------- one breakage per rule
def test_lost_arrival_breaks_the_books():
    summary = healthy_summary()
    summary.open_loop = dict(summary.open_loop, offered=261)
    detail = failed(check_invariants(summary), "books_balance")
    assert "offered=261" in detail and "255+5" in detail


def test_vanished_session_breaks_the_books():
    summary = healthy_summary()
    summary.open_loop = dict(summary.open_loop, completed=249)
    detail = failed(check_invariants(summary), "books_balance")
    assert "started=255" in detail and "in_flight_at_end" in detail


def test_lost_transaction_is_detected_and_counted():
    summary = healthy_summary(committed=198)  # 2 sessions never recorded
    summary.throughput_tps = 198 / 4.0  # keep the rate consistent
    detail = failed(check_invariants(summary), "no_lost_transactions")
    assert "2 transaction(s) lost" in detail
    assert "250" in detail and "248" in detail


def test_duplicated_transaction_is_detected():
    summary = healthy_summary(committed=203)
    summary.throughput_tps = 203 / 4.0
    detail = failed(check_invariants(summary), "no_lost_transactions")
    assert "duplicated" in detail


def test_double_credited_commit_breaks_attribution():
    summary = healthy_summary()
    summary.fleet = {"attribution": {
        "dm1": {"committed": 121, "aborted": 12},
        "dm2": {"committed": 80, "aborted": 8}}}
    detail = failed(check_invariants(summary), "attribution_sums")
    assert "201" in detail and "200" in detail and "multiple" in detail


def test_abort_attribution_mismatch_is_detected():
    summary = healthy_summary()
    summary.fleet = {"attribution": {
        "dm1": {"committed": 120, "aborted": 11},
        "dm2": {"committed": 80, "aborted": 8}}}
    detail = failed(check_invariants(summary), "attribution_sums")
    assert "19" in detail and "20" in detail


def test_overcounted_abort_reasons_are_detected():
    summary = healthy_summary(abort_reasons={"lock_timeout": 25})
    detail = failed(check_invariants(summary), "abort_reasons_bounded")
    assert "25" in detail and "20" in detail


def test_duplicated_commit_rate_mismatch_is_detected():
    summary = healthy_summary(throughput_tps=51.0)  # committed says 50.0
    detail = failed(check_invariants(summary), "throughput_accounting")
    assert "51" in detail and "200" in detail


def test_non_recovering_availability_fires_with_the_event_label():
    summary = healthy_summary()
    summary.faults = copy.deepcopy(summary.faults)
    summary.faults["time_to_recover_ms"] = {
        "datasource_crash(ds1) @2000ms for 1000ms": None}
    detail = failed(check_invariants(summary), "availability_recovers")
    assert "datasource_crash(ds1)" in detail
    assert "never returned" in detail


def test_unobservable_baseline_is_a_skip_not_a_violation():
    summary = healthy_summary()
    summary.faults = copy.deepcopy(summary.faults)
    summary.faults["time_to_recover_ms"] = {
        "datasource_crash(ds1) @2000ms for 1000ms": None}
    summary.faults["recovery_baseline_tps"] = {
        "datasource_crash(ds1) @2000ms for 1000ms": 0.0}
    report = check_invariants(summary)
    assert report["availability_recovers"]["status"] == "passed"


def test_short_post_heal_runway_is_not_a_violation():
    summary = healthy_summary()
    summary.faults = copy.deepcopy(summary.faults)
    # Heal at 5500ms, observed end 6000ms: only half a bucket of runway.
    summary.faults["plan"][0].update(at_ms=4_500.0, duration_ms=1_000.0)
    summary.faults["time_to_recover_ms"] = {
        "datasource_crash(ds1) @4500ms for 1000ms": None}
    summary.faults["recovery_baseline_tps"] = {
        "datasource_crash(ds1) @4500ms for 1000ms": 49.0}
    report = check_invariants(summary)
    assert report["availability_recovers"]["status"] == "passed"


def test_orphaned_prepared_branch_is_detected_with_its_xid():
    summary = healthy_summary()
    summary.faults = copy.deepcopy(summary.faults)
    summary.faults["wal_in_doubt"] = {
        "prepared_at_end": 2,
        "orphans": [{"datasource": "ds1", "xid": "dm1-t17.0",
                     "gid": "dm1-t17", "owner": "dm1"}]}
    detail = failed(check_invariants(summary), "wal_in_doubt_empty")
    assert "dm1-t17.0@ds1" in detail
    assert "no decision" in detail


def test_missing_recovery_pass_is_detected():
    summary = healthy_summary()
    summary.faults = copy.deepcopy(summary.faults)
    summary.faults["recoveries"] = []
    detail = failed(check_invariants(summary), "recovery_completed")
    assert "datasource_crash" in detail and "no" in detail


# ------------------------------------------------------------------ machinery
def test_checker_crash_is_reported_not_raised():
    # A summary missing attributes is itself a violation worth surfacing.
    report = check_invariants(SimpleNamespace())
    assert any(entry["status"] == "failed"
               and "checker crashed" in entry["detail"]
               for entry in report.values()), report


def test_registry_is_pluggable():
    calls = []

    @invariant("test_always_fails", "a probe", applies=lambda s: True)
    def _probe(summary):
        calls.append(summary)
        return "probe detail"

    try:
        report = check_invariants(healthy_summary())
        assert report["test_always_fails"] == {"status": "failed",
                                               "detail": "probe detail"}
        assert violations(report) == ["test_always_fails: probe detail"]
        assert calls
    finally:
        del INVARIANTS["test_always_fails"]


def test_every_catalog_invariant_has_a_description():
    for inv in INVARIANTS.values():
        assert inv.description
