"""Unit tests for the point-to-point network model."""

import pytest

from repro.sim import ConstantLatency, Environment, Network


def make_net(rtt_ab=100.0):
    env = Environment()
    net = Network(env)
    net.set_link("a", "b", ConstantLatency(rtt_ab))
    a = net.interface("a")
    b = net.interface("b")
    return env, net, a, b


def test_send_delivers_after_one_way_delay():
    env, net, a, b = make_net(rtt_ab=100)
    received = []

    def receiver():
        msg = yield b.receive()
        received.append((env.now, msg.msg_type, msg.payload))

    def sender():
        yield env.timeout(0)
        a.send("b", "hello", payload=123)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert received == [(50.0, "hello", 123)]


def test_send_to_self_has_zero_delay():
    env, net, a, b = make_net()
    received = []

    def proc():
        a.send("a", "loopback")
        msg = yield a.receive()
        received.append(env.now)

    env.process(proc())
    env.run()
    assert received == [0.0]


def test_send_to_unknown_node_raises():
    env, net, a, b = make_net()
    with pytest.raises(KeyError):
        a.send("nowhere", "x")


def test_request_reply_takes_full_round_trip():
    env, net, a, b = make_net(rtt_ab=100)
    results = []

    def server():
        while True:
            msg = yield b.receive()
            b.reply(msg, msg.payload * 2)

    def client():
        value = yield a.request("b", "double", payload=21)
        results.append((env.now, value))

    env.process(server())
    env.process(client())
    env.run(until=1000)
    assert results == [(100.0, 42)]


def test_request_reply_includes_server_processing_time():
    env, net, a, b = make_net(rtt_ab=100)
    results = []

    def server():
        msg = yield b.receive()
        yield env.timeout(7)
        b.reply(msg, "ok")

    def client():
        value = yield a.request("b", "work")
        results.append(env.now)

    env.process(server())
    env.process(client())
    env.run()
    assert results == [pytest.approx(107.0)]


def test_rtt_between_nodes_reported():
    env, net, a, b = make_net(rtt_ab=73)
    assert net.rtt("a", "b") == 73
    assert net.rtt("b", "a") == 73
    assert net.rtt("a", "a") == 0
    assert a.rtt_to("b") == 73


def test_asymmetric_link_when_requested():
    env = Environment()
    net = Network(env)
    net.set_link("x", "y", ConstantLatency(10), symmetric=False)
    net.set_link("y", "x", ConstantLatency(30), symmetric=False)
    assert net.rtt("x", "y") == 10
    assert net.rtt("y", "x") == 30


def test_default_link_model_applies_to_unknown_pairs():
    env = Environment()
    net = Network(env, default_rtt_ms=8)
    net.interface("p")
    net.interface("q")
    assert net.rtt("p", "q") == 8


def test_network_stats_count_messages_by_type():
    env, net, a, b = make_net()

    def receiver():
        while True:
            yield b.receive()

    def sender():
        a.send("b", "ping")
        a.send("b", "ping")
        a.send("b", "data")
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run(until=500)
    assert net.stats.messages_sent == 3
    assert net.stats.messages_by_type["ping"] == 2
    assert net.stats.messages_by_type["data"] == 1


def test_reply_without_request_rejected():
    env, net, a, b = make_net()

    def receiver():
        msg = yield b.receive()
        with pytest.raises(ValueError):
            b.reply(msg, "oops")

    def sender():
        a.send("b", "one_way")
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run()
