"""Tests for the ordering-relaxed engine fast paths: run-to-first-yield
processes, the same-time microqueue, the sleep fast path and the hashed
timer wheel."""

import pytest

from repro.sim import Environment, Interrupt


# -------------------------------------------------------- run-to-first-yield
def test_process_body_runs_inline_until_first_yield():
    env = Environment()
    log = []

    def proc():
        log.append("started")
        yield env.timeout(1)
        log.append("resumed")

    env.process(proc())
    # The body ran to its first yield during env.process(), before env.run().
    assert log == ["started"]
    env.run()
    assert log == ["started", "resumed"]


def test_no_yield_process_completes_at_spawn():
    env = Environment()

    def instant():
        return "done"
        yield  # pragma: no cover - makes this a generator

    p = env.process(instant())
    assert not p.is_alive
    assert p.value == "done"
    # Completion is still dispatched through the queue for subscribers.
    assert env.run(until=p) == "done"


def test_no_yield_daemon_process_is_processed_in_place():
    env = Environment()

    def instant():
        return 7
        yield  # pragma: no cover

    p = env.process(instant(), daemon=True)
    assert p.processed and p.value == 7
    assert env._queue == [] and not env._soon


def test_exception_before_first_yield_propagates_via_run():
    env = Environment()

    def boom():
        raise ValueError("early boom")
        yield  # pragma: no cover

    p = env.process(boom())
    assert not p.is_alive  # failed already, surfaced at dispatch
    with pytest.raises(ValueError, match="early boom"):
        env.run()


def test_exception_before_first_yield_reaches_a_waiter():
    env = Environment()
    caught = []

    def boom():
        raise ValueError("early boom")
        yield  # pragma: no cover

    def waiter():
        try:
            yield env.process(boom())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["early boom"]


def test_spawner_stays_active_process_after_inline_child_start():
    env = Environment()
    seen = []

    def child():
        yield env.timeout(1)

    def parent():
        env.process(child())
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(parent())
    env.run()
    assert seen == [p]


# ------------------------------------------------------------ sleep fast path
def test_yield_number_matches_timeout_semantics():
    env = Environment()
    log = []

    def sleeper():
        got = yield 5.0
        log.append((env.now, got))

    env.process(sleeper())
    env.run()
    assert log == [(5.0, None)]


def test_interrupt_during_sleep_cancels_the_pending_wake():
    env = Environment()
    log = []

    def victim():
        try:
            yield 100.0
            log.append("slept")
        except Interrupt:
            log.append(("interrupted", env.now))
        yield 50.0
        log.append(("second sleep done", env.now))

    def attacker(proc):
        yield 10.0
        proc.interrupt()

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    # The stale 100 ms wake must not resume the process a second time; the
    # post-interrupt 50 ms sleep runs exactly once.
    assert log == [("interrupted", 10.0), ("second sleep done", 60.0)]


def test_stale_sleep_entry_cannot_fire_a_rearmed_carrier_early():
    # Regression: interrupt() used to keep the defused carrier, so a later
    # sleep re-armed the SAME object and the stale heap entry (here t=100)
    # woke the process early and swallowed the real wake-up.
    env = Environment()
    log = []

    def victim():
        try:
            yield 100.0  # carrier buried in the heap at t=100
        except Interrupt:
            pass
        yield 5.0        # t=15
        yield 60.0       # t=75
        yield 60.0       # must wake at t=135, not at the stale t=100
        log.append(env.now)

    def attacker(proc):
        yield 10.0
        proc.interrupt()

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert log == [135.0]


# ----------------------------------------------------------------- microqueue
def test_triggered_events_fire_in_fifo_order_before_future_work():
    env = Environment()
    order = []
    first, second = env.event(), env.event()
    first.callbacks.append(lambda e: order.append("first"))
    second.callbacks.append(lambda e: order.append("second"))
    env.call_at(0.0, lambda: order.append("timer"))
    first.succeed()
    second.succeed()
    env.run()
    # Microqueue (FIFO) drains before the heap, even for a zero-delay timer
    # that was scheduled first.
    assert order == ["first", "second", "timer"]


def test_zero_delay_timeout_uses_the_microqueue():
    env = Environment()
    t = env.timeout(0)
    assert t in env._soon
    env.run()
    assert t.processed


def test_peek_and_step_skip_cancelled_microqueue_entries():
    from repro.sim.environment import EmptySchedule

    env = Environment()
    dead = env.timeout(0)
    env.cancel(dead)
    # Only a cancelled entry is queued: peek must not claim live work exists,
    # and step must not no-op on it.
    assert env.peek() == float("inf")
    with pytest.raises(EmptySchedule):
        env.step()
    live = env.timeout(0)
    env.step()
    assert live.processed


def test_call_soon_runs_fifo_with_other_same_time_work():
    env = Environment()
    order = []
    gate = env.event()
    gate.callbacks.append(lambda e: order.append("event"))
    gate.succeed()
    env.call_soon(lambda tag: order.append(tag), "soon")
    env.run()
    assert order == ["event", "soon"]


def test_cancelling_triggered_events_does_not_inflate_heap_accounting():
    env = Environment()
    for _ in range(200):
        event = env.event()
        event.succeed()
        env.cancel(event)
    # Triggered events live on the microqueue, not the heap: cancelling them
    # must not count as heap debt (which would trigger pointless compaction).
    assert env._cancelled == 0
    env.run()


# ---------------------------------------------------- direct-consumer stores
def test_consumer_store_routes_puts_and_rejects_get():
    from repro.sim.resources import Store

    env = Environment()
    store = Store(env)
    seen = []
    store.set_consumer(seen.append)
    store.put("a")
    store.put("b")
    assert seen == ["a", "b"]
    with pytest.raises(RuntimeError, match="direct-consumer"):
        store.get()


def test_set_consumer_on_a_store_in_use_is_rejected():
    from repro.sim.resources import Store

    env = Environment()
    store = Store(env)
    store.put("queued")
    with pytest.raises(RuntimeError, match="already in use"):
        store.set_consumer(lambda item: None)


# ----------------------------------------------------------------- timer wheel
def test_wheel_timer_fires_on_the_next_tick_never_early():
    env = Environment(wheel_granularity_ms=10.0)
    fired = []

    def kick():
        yield 3.0  # now = 3.0
        env.call_coarse(15.0, lambda: fired.append(env.now))

    env.process(kick())
    env.run()
    # Deadline 18.0 rounds up to tick 20.0.
    assert fired == [20.0]


def test_wheel_timers_in_one_tick_fire_in_fifo_order():
    env = Environment(wheel_granularity_ms=10.0)
    order = []
    env.call_coarse(4.0, lambda: order.append("a"))
    env.call_coarse(2.0, lambda: order.append("b"))
    env.call_coarse(9.0, lambda: order.append("c"))
    env.run()
    # All three share the tick at t=10 and fire in insertion order, not in
    # deadline order — that is the documented coarseness contract.
    assert order == ["a", "b", "c"]
    assert env.now == 10.0


def test_wheel_cancel_before_fire_suppresses_the_callback():
    env = Environment()
    fired = []
    timer = env.call_coarse(5.0, lambda: fired.append("t"))
    timer.cancel()
    assert timer.cancelled
    env.run()
    assert fired == []


def test_wheel_cancel_after_fire_is_a_harmless_no_op():
    env = Environment()
    fired = []
    timer = env.call_coarse(5.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [5.0]
    assert timer.cancelled  # fired timers read as cancelled
    timer.cancel()
    timer.cancel()
    assert fired == [5.0]


def test_wheel_shares_one_heap_entry_per_live_tick():
    env = Environment(wheel_granularity_ms=10.0)
    for _ in range(500):
        env.call_coarse(7.0, lambda: None)
    # 500 live coarse timers share a single tick: exactly one heap entry.
    assert len(env._queue) == 1
    env.run()


def test_wheel_cancel_churn_keeps_heap_bounded():
    env = Environment(wheel_granularity_ms=10.0)
    for _ in range(1000):
        env.call_coarse(7.0, lambda: None).cancel()
    # Immediate set-then-cancel defuses each tick's shared entry (so nothing
    # ever fires); lazy deletion + compaction keep the dead entries bounded.
    assert len(env._queue) < 200
    env.run()
    assert env.now == 0.0


def test_fully_cancelled_wheel_slot_does_not_advance_the_clock():
    # Regression: an all-cancelled tick used to keep a live heap Timer that
    # fired an empty slot, keeping run() alive until the tick (e.g. a 5 s
    # lock timeout granted at t=100 inflated env.now to 5000).
    env = Environment()
    timer = env.call_coarse(5_000.0, lambda: None)
    timer.cancel()

    def worker():
        yield 10.0

    env.process(worker())
    env.run()
    assert env.now == 10.0


def test_wheel_ticks_cover_distinct_slots():
    env = Environment(wheel_granularity_ms=10.0)
    fired = []
    env.call_coarse(5.0, lambda: fired.append(env.now))
    env.call_coarse(25.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [10.0, 30.0]


# -------------------------------------------------- determinism of the engine
def test_same_seed_twice_is_byte_identical(engine, goldens_runner):
    # Runs once per runnable engine (pure in-process, compiled in a pinned
    # subprocess); the config is repro.bench.goldens.determinism_config().
    document = goldens_runner(engine, "determinism")
    assert document["identical"], (
        f"two runs of the same seed diverged on the {engine} engine: "
        f"{document['first']} != {document['second']}")
