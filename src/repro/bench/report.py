"""Plain-text reporting of experiment results (the tables/series the paper plots)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a titled table to stdout."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, series: List[Tuple[float, float]],
                 x_label: str = "x", y_label: str = "y") -> None:
    """Print an (x, y) series as a two-column table."""
    print_table(title, [x_label, y_label], series)
