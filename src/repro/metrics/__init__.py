"""Measurement utilities: latency/throughput collection, percentiles, breakdowns."""

from repro.metrics.collector import MetricsCollector, TransactionSample
from repro.metrics.percentiles import LatencyDistribution, percentile
from repro.metrics.timeline import ThroughputTimeline
from repro.metrics.breakdown import PhaseBreakdown
from repro.metrics.resources import ResourceUsage

__all__ = [
    "LatencyDistribution",
    "MetricsCollector",
    "PhaseBreakdown",
    "ResourceUsage",
    "ThroughputTimeline",
    "TransactionSample",
    "percentile",
]
