"""Tests for the ``python -m repro.bench`` command-line interface."""

import json

import pytest

from repro.bench.__main__ import main


def test_list_prints_every_registered_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5_overall", "table1_heterogeneous", "smoke"):
        assert name in out
    assert "system[2]" in out  # axes are summarised next to each name


def test_list_systems_prints_the_registry_with_aliases_and_capabilities(capsys):
    assert main(["list", "--systems"]) == 0
    out = capsys.readouterr().out
    for name in ("ssp", "quro", "chiller", "scalardb", "yugabyte", "geotp",
                 "geotp_static"):
        assert name in out
    assert "scalardb+" in out          # aliases are discoverable
    assert "agents" in out             # capability flags are discoverable
    assert "colocated-ds0" in out


def test_list_workloads_prints_the_registry(capsys):
    assert main(["list", "--workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("ycsb", "tpcc", "smallbank"):
        assert name in out
    assert "tpc_c" in out


def test_list_both_registries_in_one_invocation(capsys):
    assert main(["list", "--systems", "--workloads"]) == 0
    out = capsys.readouterr().out
    assert "yugabyte" in out and "smallbank" in out


def test_plugin_scenarios_appear_in_the_default_listing(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "smallbank_dist_ratio" in out
    assert "static_vs_adaptive" in out


def test_list_markdown_emits_the_registry_tables(capsys):
    from repro.bench.report import registry_markdown

    assert main(["list", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out == registry_markdown()
    assert "#### Scenarios" in out and "#### Workloads" in out
    assert "| `fault_region_outage` |" in out


def test_run_unknown_scenario_fails_with_message(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_smoke_emits_json_rows(capsys):
    assert main(["run", "smoke", "--workers", "1", "--duration-ms", "2000",
                 "--terminals", "2", "--seed", "1"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["scenario"] == "smoke"
    assert document["workers"] == 1
    assert document["points"] == 2
    assert document["wall_clock_s"] >= 0
    systems = [row["params"]["system"] for row in document["rows"]]
    assert systems == ["ssp", "geotp"]
    for row in document["rows"]:
        assert row["seed"] == 1
        assert row["terminals"] == 2
        assert row["committed"] > 0
        assert row["throughput_tps"] > 0
        assert "resources" in row and "breakdown" in row


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "smoke.json"
    assert main(["run", "smoke", "--duration-ms", "1500", "--warmup-ms", "300",
                 "--terminals", "2", "--output", str(target)]) == 0
    document = json.loads(target.read_text())
    assert document["points"] == 2
    assert "wrote 2 points" in capsys.readouterr().err


def test_override_collapses_a_matching_axis(capsys):
    """``--terminals`` must win even when terminals is a sweep axis."""
    assert main(["run", "fig5_overall", "--duration-ms", "2500",
                 "--terminals", "2", "--workers", "1"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["points"] == 5  # 5 systems x 1 collapsed terminal count
    assert all(row["terminals"] == 2 for row in document["rows"])


def test_override_recomputed_by_apply_is_reported(capsys):
    """fig11b derives duration from its phase schedule; the user must be told."""
    assert main(["run", "fig11b_dynamic_latency", "--duration-ms", "2000",
                 "--terminals", "2", "--workers", "1"]) == 0
    captured = capsys.readouterr()
    assert "note: --duration-ms is recomputed per point" in captured.err
    document = json.loads(captured.out)
    # fig11b rows carry the throughput timeline the figure is about.
    assert all("timeline" in row and row["timeline"]["series"]
               for row in document["rows"])


@pytest.mark.parametrize("argv", [
    ["run", "smoke", "--workers", "0"],
    ["run", "smoke", "--duration-ms", "500", "--warmup-ms", "600"],
])
def test_invalid_values_fail_cleanly_without_tracebacks(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")


@pytest.mark.parametrize("argv", [[], ["run"]])
def test_missing_arguments_exit_with_usage_error(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


def test_run_without_cache_flags_reports_no_cache_section(capsys):
    assert main(["run", "smoke"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "cache" not in document


def test_run_cache_dir_records_and_resume_replays(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["run", "smoke", "--cache-dir", cache_dir]) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["cache"]["hits"] == 0
    assert first["cache"]["misses"] == first["points"]

    assert main(["run", "smoke", "--cache-dir", cache_dir, "--resume"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["cache"]["hits"] == second["points"]
    assert second["cache"]["misses"] == 0
    assert second["cache"]["invalidations"] == 0
    # The replayed rows are byte-identical up to per-run environment fields.
    strip = lambda doc: [
        {key: value for key, value in row.items()
         if key not in ("wall_clock_s", "peak_rss_bytes")}
        for row in doc["rows"]]
    assert json.dumps(strip(first), sort_keys=True) \
        == json.dumps(strip(second), sort_keys=True)


def test_run_resume_alone_defaults_the_cache_dir(tmp_path, capsys,
                                                 monkeypatch):
    from repro.bench.cache import DEFAULT_CACHE_DIR

    monkeypatch.chdir(tmp_path)
    assert main(["run", "smoke", "--resume"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["cache"]["dir"] == DEFAULT_CACHE_DIR
    assert (tmp_path / DEFAULT_CACHE_DIR / "smoke").is_dir()


def test_run_resume_recomputes_after_config_change(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["run", "smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    # A different duration changes the config hash: nothing may be replayed.
    assert main(["run", "smoke", "--cache-dir", cache_dir, "--resume",
                 "--duration-ms", "900"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["cache"]["hits"] == 0
    assert document["cache"]["misses"] == document["points"]
    assert document["cache"]["invalidations"] == document["points"]
