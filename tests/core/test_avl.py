"""Unit and property-based tests for the AVL tree backing the hotspot footprint."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AVLTree


def test_insert_and_find():
    tree = AVLTree()
    tree.insert(5, "five")
    tree.insert(3, "three")
    tree.insert(8, "eight")
    assert tree.find(5) == "five"
    assert tree.find(3) == "three"
    assert tree.find(8) == "eight"
    assert tree.find(99) is None
    assert len(tree) == 3


def test_insert_replaces_existing_value_without_growing():
    tree = AVLTree()
    tree.insert("k", 1)
    tree.insert("k", 2)
    assert tree.find("k") == 2
    assert len(tree) == 1


def test_remove_leaf_internal_and_missing():
    tree = AVLTree()
    for key in [10, 5, 15, 3, 7, 12, 20]:
        tree.insert(key, key)
    assert tree.remove(3)          # leaf
    assert tree.remove(5)          # internal with one child
    assert tree.remove(10)         # root with two children
    assert not tree.remove(999)    # missing
    assert len(tree) == 4
    assert tree.check_invariants()
    assert sorted(tree.keys()) == tree.keys()


def test_in_order_iteration_sorted():
    tree = AVLTree()
    for key in [9, 1, 7, 3, 5]:
        tree.insert(key, str(key))
    assert tree.keys() == [1, 3, 5, 7, 9]
    assert [v for _k, v in tree.items()] == ["1", "3", "5", "7", "9"]


def test_range_query_inclusive_bounds():
    tree = AVLTree()
    for key in range(0, 100, 10):
        tree.insert(key, key)
    result = tree.range_query(20, 60)
    assert [k for k, _v in result] == [20, 30, 40, 50, 60]
    assert tree.range_query(101, 200) == []


def test_height_stays_logarithmic_for_sequential_inserts():
    tree = AVLTree()
    for key in range(1024):
        tree.insert(key, key)
    # A perfectly balanced tree of 1024 nodes has height 11; AVL guarantees
    # height <= 1.44 * log2(n), i.e. about 15 here.
    assert tree.height() <= 15
    assert tree.check_invariants()


def test_empty_tree_properties():
    tree = AVLTree()
    assert len(tree) == 0
    assert tree.height() == 0
    assert tree.keys() == []
    assert tree.check_invariants()
    assert not tree.remove("anything")


@given(st.lists(st.integers(min_value=-10_000, max_value=10_000)))
@settings(max_examples=80, deadline=None)
def test_property_invariants_and_sorted_iteration(keys):
    tree = AVLTree()
    for key in keys:
        tree.insert(key, key * 2)
    unique_sorted = sorted(set(keys))
    assert tree.keys() == unique_sorted
    assert len(tree) == len(unique_sorted)
    assert tree.check_invariants()


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1),
       st.lists(st.integers(min_value=0, max_value=200)))
@settings(max_examples=80, deadline=None)
def test_property_removal_keeps_invariants(inserts, removals):
    tree = AVLTree()
    for key in inserts:
        tree.insert(key, key)
    expected = set(inserts)
    for key in removals:
        removed = tree.remove(key)
        assert removed == (key in expected)
        expected.discard(key)
    assert tree.keys() == sorted(expected)
    assert tree.check_invariants()
