"""Key-value storage engine of a simulated data source.

Tables map keys to :class:`~repro.storage.record.Record` objects.  Writes made
by in-flight transactions are buffered per transaction in a write set and only
installed at commit time, which makes rollback trivial and matches the
"committed state only" view that strict 2PL provides to readers.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.storage.record import Record, RecordSnapshot

RecordId = Tuple[str, Hashable]


class Table:
    """A named collection of records."""

    def __init__(self, name: str):
        self.name = name
        self._records: Dict[Hashable, Record] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    def get(self, key: Hashable) -> Optional[Record]:
        """The record for ``key`` or None."""
        return self._records.get(key)

    def put(self, key: Hashable, value: Any, writer: str = "loader") -> Record:
        """Insert or overwrite the committed value of ``key``."""
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = Record(key=key)
        # Record.apply_write, inlined: commits and bulk loads funnel through
        # here, making this the storage engine's hottest statement sequence.
        record.value = value
        record.version += 1
        record.last_writer = writer
        return record

    def keys(self) -> Iterable[Hashable]:
        """Iterate over all keys in the table."""
        return self._records.keys()


class StorageEngine:
    """All tables of one data source plus per-transaction write buffers."""

    def __init__(self, name: str = "engine"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._write_sets: Dict[str, Dict[RecordId, Any]] = {}

    # ------------------------------------------------------------------ schema
    def create_table(self, table_name: str) -> Table:
        """Create a table if it does not exist and return it."""
        if table_name not in self._tables:
            self._tables[table_name] = Table(table_name)
        return self._tables[table_name]

    def table(self, table_name: str) -> Table:
        """Return an existing table, creating it lazily for convenience."""
        return self.create_table(table_name)

    def table_names(self) -> List[str]:
        """Names of all tables."""
        return list(self._tables)

    def record_count(self) -> int:
        """Total number of committed records across tables."""
        return sum(len(table) for table in self._tables.values())

    # ------------------------------------------------------------------- loads
    def load(self, table_name: str, key: Hashable, value: Any) -> None:
        """Bulk-load a committed record (no locking, used during setup)."""
        self.create_table(table_name).put(key, value)

    def bulk_load(self, table_name: str, rows: "Dict[Hashable, Any]") -> None:
        """Load many committed rows at once (setup fast path).

        Fresh keys — the overwhelming case, since preloads target empty
        tables — are materialised in one dict-comprehension pass instead of
        one :meth:`Table.put` call per row; keys that already exist fall back
        to ``put`` so reload semantics (version bump) are preserved.
        """
        table = self.create_table(table_name)
        records = table._records
        if records:
            existing = records.keys() & rows.keys()
            if existing:
                put = table.put
                fresh = {key: value for key, value in rows.items()
                         if key not in existing}
                for key in existing:
                    put(key, rows[key])
                rows = fresh
        records.update({
            key: Record(key=key, value=value, version=1, last_writer="loader")
            for key, value in rows.items()})

    # -------------------------------------------------------------------- reads
    def read(self, txn_id: str, table_name: str, key: Hashable) -> Optional[RecordSnapshot]:
        """Read the latest value visible to ``txn_id``.

        A transaction sees its own buffered writes; otherwise the committed
        record value (strict 2PL guarantees no other uncommitted writer).
        """
        table = self._tables.get(table_name)
        record = table._records.get(key) if table is not None else None
        write_set = self._write_sets.get(txn_id)
        if write_set:
            record_id = (table_name, key)
            if record_id in write_set:
                return RecordSnapshot(key=key, value=write_set[record_id],
                                      version=record.version if record else 0)
        if record is None:
            return None
        return RecordSnapshot(key=record.key, value=record.value,
                              version=record.version)

    # ------------------------------------------------------------------- writes
    def buffer_write(self, txn_id: str, table_name: str, key: Hashable, value: Any) -> None:
        """Record an uncommitted write in the transaction's write set."""
        self._write_sets.setdefault(txn_id, {})[(table_name, key)] = value

    def write_set(self, txn_id: str) -> Dict[RecordId, Any]:
        """The buffered writes of ``txn_id`` (may be empty)."""
        return dict(self._write_sets.get(txn_id, {}))

    def commit_writes(self, txn_id: str) -> int:
        """Install all buffered writes of ``txn_id``; return how many."""
        write_set = self._write_sets.pop(txn_id, {})
        for (table_name, key), value in write_set.items():
            self.table(table_name).put(key, value, writer=txn_id)
        return len(write_set)

    def discard_writes(self, txn_id: str) -> int:
        """Drop all buffered writes of ``txn_id``; return how many were dropped."""
        return len(self._write_sets.pop(txn_id, {}))

    def has_pending_writes(self, txn_id: str) -> bool:
        """True if the transaction still has a buffered write set."""
        return txn_id in self._write_sets
