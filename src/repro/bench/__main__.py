"""Command-line entry point for the scenario registry.

``python -m repro.bench list`` shows every registered scenario with its axes
(``list --systems`` / ``list --workloads`` print the plugin registries
instead, including aliases and capability flags);
``python -m repro.bench run NAME`` expands the scenario into sweep points,
executes them (optionally across a process pool) and emits a JSON document
with one row per point; ``python -m repro.bench perf`` times scenarios and
compares against the committed ``BENCH_baseline.json``.  Examples::

    PYTHONPATH=src python -m repro.bench list
    PYTHONPATH=src python -m repro.bench list --systems --workloads
    PYTHONPATH=src python -m repro.bench run smoke --workers 2
    PYTHONPATH=src python -m repro.bench run fig5_overall \\
        --duration-ms 5000 --terminals 16 --workers 4 --output fig5.json
    PYTHONPATH=src python -m repro.bench run load_sweep --workers 2 \\
        --rate-tps 400 --output knee.json
    PYTHONPATH=src python -m repro.bench run load_sweep --workers 2 \\
        --cache-dir .repro_cache --resume --output load.json
    PYTHONPATH=src python -m repro.bench figures load_sweep --workers 2 \\
        --output-dir figures/
    PYTHONPATH=src python -m repro.bench figures chaos \\
        --input chaos_report.json --output-dir figures/
    PYTHONPATH=src python -m repro.bench chaos --sample 10 --workers 2 \\
        --output chaos_report.json
    PYTHONPATH=src python -m repro.bench perf --quick --output BENCH_ci.json
    PYTHONPATH=src python -m repro.bench perf --quick --profile --output BENCH_ci.json
    PYTHONPATH=src python -m repro.bench perf --compare BENCH_a.json BENCH_b.json
    PYTHONPATH=src python -m repro.bench engine
    REPRO_ENGINE=compiled PYTHONPATH=src python -m repro.bench perf --quick

``run --cache-dir DIR`` persists every executed sweep point into a resumable
result cache; adding ``--resume`` consults the cache first, so a killed sweep
re-run computes only the missing points and assembles a byte-identical
document (hits/misses/invalidations are reported in the JSON's ``cache``
section).  ``figures NAME`` runs (or loads, with ``--input``) a scenario
document and renders the paper-shaped figures from it — every figure must
pass its registered sanity checks or nothing is emitted for it and the
command fails.  PNG rendering needs matplotlib (the ``figures`` optional
dependency); without it the checked data JSONs are still written.

Measurement runs append one line each to ``BENCH_history.jsonl`` (see
``--history`` / ``--no-history``); ``perf --compare`` diffs two BENCH
documents without measuring anything and warns when the two were recorded on
different interpreters, platforms or engines.  Every measurement document
carries the ``engine`` (pure or mypyc-compiled kernel, selected by
``REPRO_ENGINE``) it ran on; ``engine`` prints this process's selection.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench import perf as perf_mod
from repro.bench.cache import DEFAULT_CACHE_DIR, SweepCache
from repro.bench.parallel import SweepRunner, SweepResult
from repro.bench.report import registry_markdown, system_capabilities
from repro.bench.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.plugins import system_plugins, workload_plugins
from repro.sim.engine import active_engine, engine_info


def _add_sweep_flags(parser: argparse.ArgumentParser,
                     positional: bool = True) -> None:
    """The flags shared by ``run`` and ``figures``: overrides + cache."""
    if positional:
        parser.add_argument("scenario",
                            help="registered scenario name (see `list`)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: REPRO_BENCH_WORKERS "
                             "or serial)")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="override the simulated duration of every point")
    parser.add_argument("--warmup-ms", type=float, default=None,
                        help="override the warm-up window of every point")
    parser.add_argument("--terminals", type=int, default=None,
                        help="override the client terminal count of every point")
    parser.add_argument("--rate-tps", type=float, default=None,
                        help="override the offered arrival rate of every point "
                             "(open-system scenarios only; collapses the "
                             "rate_tps axis of load_sweep)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the base RNG seed of every point")
    parser.add_argument("--cache-dir", default=None,
                        help="persist every executed point into this sweep "
                             "cache (created if missing); off by default")
    parser.add_argument("--resume", action="store_true",
                        help="consult the cache before running: only missing "
                             "points are simulated (implies --cache-dir "
                             f"{DEFAULT_CACHE_DIR} unless given)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="List and run the registered experiment scenarios.")
    commands = parser.add_subparsers(dest="command", required=True)

    lister = commands.add_parser(
        "list", help="list registered scenarios (default), systems or workloads")
    lister.add_argument("--systems", action="store_true",
                        help="list the system registry (aliases + capabilities)")
    lister.add_argument("--workloads", action="store_true",
                        help="list the workload registry (aliases + descriptions)")
    lister.add_argument("--markdown", action="store_true",
                        help="emit the scenario/system/workload tables as "
                             "markdown (the EXPERIMENTS.md registry block)")

    run = commands.add_parser("run", help="run one scenario and emit JSON")
    _add_sweep_flags(run)
    run.add_argument("--output", default=None,
                     help="write the JSON document here instead of stdout")

    figures = commands.add_parser(
        "figures", help="run (or load) a scenario document and render the "
                        "sanity-checked figures derived from it")
    figures.add_argument("scenario",
                         help="registered scenario name to run, or any label "
                              "when --input supplies the document")
    figures.add_argument("--input", default=None,
                         help="JSON document from a previous `run`/`chaos` "
                              "--output instead of running the scenario")
    figures.add_argument("--output-dir", default="figures",
                         help="directory for the figure artifacts "
                              "(default: figures/)")
    figures.add_argument("--data-only", action="store_true",
                         help="write only the per-figure data JSONs, even "
                              "when matplotlib is available")
    _add_sweep_flags(figures, positional=False)

    perf = commands.add_parser(
        "perf", help="time scenarios and compare against the committed baseline")
    perf.add_argument("--quick", action="store_true",
                      help=f"time only the quick suite {list(perf_mod.QUICK_SUITE)}")
    perf.add_argument("--scenarios", nargs="+", default=None,
                      help="explicit scenario names to time (overrides the suite)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="repetitions per scenario; the best wall clock is kept")
    perf.add_argument("--workers", type=int, default=1,
                      help="process-pool size (default: serial, the stable setting)")
    perf.add_argument("--tag", default="local",
                      help="tag recorded in the output document")
    perf.add_argument("--baseline", default=perf_mod.DEFAULT_BASELINE,
                      help="baseline JSON to compare against "
                           f"(default: {perf_mod.DEFAULT_BASELINE})")
    perf.add_argument("--threshold", type=float, default=perf_mod.DEFAULT_THRESHOLD,
                      help="allowed slowdown vs the baseline before failing "
                           "(default: 0.30 = 30%%)")
    perf.add_argument("--output", default=None,
                      help="write BENCH_<tag>.json content here instead of stdout")
    perf.add_argument("--compare", nargs=2, metavar=("A.json", "B.json"),
                      default=None,
                      help="compare two BENCH documents (no measurement): "
                           "print per-scenario wall-clock and events/sec deltas")
    perf.add_argument("--history", default=perf_mod.DEFAULT_HISTORY,
                      help="perf-trajectory log appended to after each "
                           f"measurement run (default: {perf_mod.DEFAULT_HISTORY})")
    perf.add_argument("--no-history", action="store_true",
                      help="do not append this run to the history log")
    perf.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file with this run's metrics")
    perf.add_argument("--require-baseline", action="store_true",
                      help="fail (exit 1) when the baseline file cannot be "
                           "loaded instead of just warning (used by CI)")
    perf.add_argument("--profile", action="store_true",
                      help="cProfile each scenario once after timing it and "
                           "record the hottest functions (a `profiles` section "
                           "in the document, plus a text table next to the "
                           "--output file)")
    perf.add_argument("--profile-top", type=int,
                      default=perf_mod.DEFAULT_PROFILE_TOP_N,
                      help="number of functions per profile table "
                           f"(default: {perf_mod.DEFAULT_PROFILE_TOP_N})")

    chaos = commands.add_parser(
        "chaos", help="run a seeded sample of generated chaos_* scenarios at "
                      "smoke scale and fail on any robustness-invariant "
                      "violation")
    chaos.add_argument("--sample", type=int, default=10,
                       help="number of chaos scenarios to sample (default 10)")
    chaos.add_argument("--sample-seed", type=int, default=0,
                       help="seed of the scenario sample (same seed = same "
                            "scenarios, across machines and sessions)")
    chaos.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: REPRO_BENCH_WORKERS "
                            "or serial)")
    chaos.add_argument("--duration-ms", type=float, default=3_000.0,
                       help="simulated duration per point (default 3000)")
    chaos.add_argument("--warmup-ms", type=float, default=600.0,
                       help="warm-up window per point (default 600)")
    chaos.add_argument("--terminals", type=int, default=4,
                       help="closed-loop terminal count per point (default 4)")
    chaos.add_argument("--output", default=None,
                       help="write the invariant report JSON here instead of "
                            "stdout")

    commands.add_parser(
        "engine", help="report the simulation engine selection of this "
                       "process (REPRO_ENGINE) as JSON")
    return parser


def _list_scenarios() -> int:
    width = max(len(name) for name in SCENARIOS)
    for name in scenario_names():
        scenario = SCENARIOS[name]
        axes = " x ".join(f"{axis.name}[{len(axis.values)}]"
                          for axis in scenario.axes)
        print(f"{name:<{width}}  {axes:<40}  {scenario.description}")
    return 0


def _list_registry(plugins, capabilities) -> int:
    width = max(len(plugin.name) for plugin in plugins)
    for plugin in plugins:
        aliases = ",".join(plugin.aliases) or "-"
        extra = f"  {capabilities(plugin):<24}" if capabilities else ""
        print(f"{plugin.name:<{width}}  aliases: {aliases:<24}{extra}  "
              f"{plugin.description}")
    return 0


def _run_list(args: argparse.Namespace) -> int:
    if args.markdown:
        # The committed EXPERIMENTS.md registry block: always all three
        # tables, so regenerate-and-diff has a single canonical form.
        print(registry_markdown(), end="")
        return 0
    if not args.systems and not args.workloads:
        return _list_scenarios()
    status = 0
    if args.systems:
        status |= _list_registry(system_plugins(), system_capabilities)
    if args.workloads:
        status |= _list_registry(workload_plugins(), None)
    return status


def _result_document(result: SweepResult,
                     cache: Optional[SweepCache] = None) -> dict:
    document = {
        "scenario": result.sweep_name,
        "engine": active_engine(),
        "workers": result.workers,
        "points": len(result),
        "wall_clock_s": round(result.wall_clock_s, 3),
        "rows": [
            {"params": point.params,
             "wall_clock_s": round(point.wall_clock_s, 3),
             # Environment fields (peak_rss_bytes) are wanted in CLI output —
             # the load-sweep CI artifact reads them per point — and the CLI
             # never diffs rows across worker layouts, so including them is
             # safe here (unlike in the deterministic default payload).
             **point.summary.to_dict(include_environment=True)}
            for point in result
        ],
    }
    if cache is not None:
        document["cache"] = cache.stats()
    return document


def _make_cache(args: argparse.Namespace) -> Optional[SweepCache]:
    """The sweep cache the flags ask for, or ``None`` (caching is opt-in)."""
    if args.cache_dir is None and not args.resume:
        return None
    return SweepCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _expand_sweep(args: argparse.Namespace):
    """Build the overridden sweep of ``args.scenario`` (shared run/figures)."""
    scenario = get_scenario(args.scenario)
    overrides = {"duration_ms": args.duration_ms, "warmup_ms": args.warmup_ms,
                 "terminals": args.terminals, "seed": args.seed,
                 "rate_tps": args.rate_tps}
    # An override naming one of the scenario's axes (e.g. --terminals for
    # fig5_overall, --rate-tps for load_sweep) collapses that axis to the
    # single given value; otherwise the axis values would silently win over
    # the base-config override.
    axis_names = {axis.name for axis in scenario.axes}
    axes = {name: (value,) for name, value in overrides.items()
            if value is not None and name in axis_names}
    base = {name: value for name, value in overrides.items()
            if name not in axis_names}
    if base.get("rate_tps") is not None:
        # Not an ExperimentConfig field: the rate lives on the arrival config
        # (which only open-system scenarios carry — others fail loudly below).
        base["arrival__rate_tps"] = base.pop("rate_tps")
    else:
        base.pop("rate_tps", None)
    sweep = scenario.sweep(axes=axes, **base)
    # Some scenarios derive these fields per point (fig11b computes the
    # duration from its phase schedule, fig11a derives the seed from the
    # repeat axis); tell the user instead of silently ignoring the flag.
    points = sweep.points()
    for name, value in base.items():
        if value is None or "__" in name:  # dotted overrides: no 1:1 field
            continue
        if any(getattr(point.config, name) != value for point in points):
            flag = "--" + name.replace("_", "-")
            print(f"note: {flag} is recomputed per point by scenario "
                  f"{scenario.name!r} and was ignored for some points",
                  file=sys.stderr)
    return sweep


def _execute_scenario(args: argparse.Namespace):
    """Run ``args.scenario`` with overrides; returns the JSON document."""
    sweep = _expand_sweep(args)
    cache = _make_cache(args)
    result = SweepRunner(max_workers=args.workers, cache=cache,
                         resume=args.resume).run(sweep)
    return _result_document(result, cache=cache)


def _run_scenario(args: argparse.Namespace) -> int:
    try:
        document = _execute_scenario(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except (AttributeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(document, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {document['points']} points to {args.output}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def _run_figures(args: argparse.Namespace) -> int:
    """Derive, check and emit the figures of one scenario document.

    Exit 0 only when every derived figure passed all its sanity checks and
    was written; any violation is printed with the failing check's message
    and fails the command — a broken figure never reaches the artifact dir.
    """
    from repro.bench.figures import build_figures, emit_figures

    if args.input:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load --input {args.input!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        try:
            document = _execute_scenario(args)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except (AttributeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        figures = build_figures(document)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = emit_figures(figures, args.output_dir,
                          render=not args.data_only)
    for entry in report["figures"]:
        print(f"figure {entry['figure']}: "
              f"{', '.join(entry['files'])}", file=sys.stderr)
    if not report["rendered"] and not args.data_only:
        print("note: matplotlib is not installed (pip install "
              "'.[figures]'); wrote data JSONs only", file=sys.stderr)
    if report["violations"]:
        for violation in report["violations"]:
            for failure in violation["failures"]:
                print(f"FIGURE CHECK FAILED [{violation['figure']}]: "
                      f"{failure}", file=sys.stderr)
        print(f"{len(report['violations'])} figure(s) failed sanity checks; "
              f"no artifacts were written for them", file=sys.stderr)
        return 1
    print(f"emitted {len(report['figures'])} checked figure(s) to "
          f"{args.output_dir}", file=sys.stderr)
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos smoke: sample, run, judge by the robustness invariants.

    Exit 0 when every applicable invariant on every point passed; exit 1 with
    a per-violation listing otherwise.  The JSON document (``--output``) is
    the CI artifact: one entry per point with its params, headline numbers
    and full invariant report.
    """
    from repro.recovery.chaos import sample_chaos_scenarios
    from repro.recovery.invariants import violations as invariant_violations

    names = sample_chaos_scenarios(args.sample, seed=args.sample_seed)
    if not names:
        print("error: no chaos scenarios registered", file=sys.stderr)
        return 2
    runner = SweepRunner(max_workers=args.workers)
    scenarios = []
    all_violations: List[dict] = []
    points_run = 0
    for name in names:
        sweep = get_scenario(name).sweep(
            duration_ms=args.duration_ms, warmup_ms=args.warmup_ms,
            terminals=args.terminals,
            # Shrink the modelled tables with the run so smoke points stay
            # cheap; chaos bases all carry a YCSB config even when another
            # workload axis value is active (harmless there).
            ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200)
        result = runner.run(sweep)
        points_run += len(result)
        rows = []
        for point in result:
            summary = point.summary
            failed = invariant_violations(summary.invariants)
            rows.append({
                "params": point.params,
                "committed": summary.committed,
                "aborted": summary.aborted,
                "throughput_tps": round(summary.throughput_tps, 2),
                "invariants": summary.invariants,
            })
            for message in failed:
                all_violations.append({"scenario": name,
                                       "params": point.params,
                                       "violation": message})
        scenarios.append({"scenario": name, "points": rows})
    document = {
        "sample": args.sample,
        "sample_seed": args.sample_seed,
        "engine": active_engine(),
        "scenarios_run": names,
        "points_run": points_run,
        "violations": all_violations,
        "results": scenarios,
    }
    text = json.dumps(document, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {points_run} points ({len(names)} scenarios) to "
              f"{args.output}", file=sys.stderr)
    else:
        print(text)
    if all_violations:
        for entry in all_violations:
            print(f"INVARIANT VIOLATION [{entry['scenario']} "
                  f"{entry['params']}]: {entry['violation']}", file=sys.stderr)
        print(f"{len(all_violations)} invariant violation(s) across "
              f"{points_run} chaos points", file=sys.stderr)
        return 1
    print(f"all robustness invariants held across {points_run} chaos points",
          file=sys.stderr)
    return 0


def _compare_documents(args: argparse.Namespace) -> int:
    path_a, path_b = args.compare
    try:
        doc_a = perf_mod.load_baseline(path_a)
        doc_b = perf_mod.load_baseline(path_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = perf_mod.compare_documents(doc_a, doc_b)
    print(perf_mod.format_comparison(rows, labels=("A", "B")))
    print(f"\nA = {path_a} (tag {doc_a.get('tag', '?')}, "
          f"engine {doc_a.get('engine', '?')}), "
          f"B = {path_b} (tag {doc_b.get('tag', '?')}, "
          f"engine {doc_b.get('engine', '?')}); "
          "speedup > 1 means B is faster", file=sys.stderr)
    for warning in perf_mod.document_metadata_mismatches(doc_a, doc_b):
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    if args.compare:
        conflicting = [flag for flag, value in (
            ("--scenarios", args.scenarios), ("--quick", args.quick),
            ("--output", args.output), ("--update-baseline", args.update_baseline),
            ("--require-baseline", args.require_baseline),
            ("--profile", args.profile)) if value]
        if conflicting:
            # --compare measures nothing; silently ignoring measurement
            # flags would leave e.g. an expected --output file unwritten.
            print(f"error: --compare cannot be combined with "
                  f"{', '.join(conflicting)}", file=sys.stderr)
            return 2
        return _compare_documents(args)
    if args.scenarios:
        names = args.scenarios
    elif args.quick:
        names = list(perf_mod.QUICK_SUITE)
    else:
        names = list(perf_mod.FULL_SUITE)
    print(f"engine: {active_engine()} "
          f"(REPRO_ENGINE={engine_info()['requested']})", file=sys.stderr)
    try:
        for name in names:
            get_scenario(name)  # fail fast on unknown names
        document = perf_mod.run_perf(
            names, repeats=args.repeats, max_workers=args.workers, tag=args.tag,
            baseline_path=None if args.update_baseline else args.baseline,
            threshold=args.threshold)
        if args.profile:
            document["profiles"] = [
                perf_mod.profile_scenario(name, top_n=args.profile_top)
                for name in names]
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if not args.no_history:
        try:
            perf_mod.append_history(document, path=args.history)
        except OSError as exc:
            # Never let a bad history path discard a finished measurement:
            # the document (and any --output/--update-baseline write) is the
            # valuable part, the trajectory line is best-effort.
            print(f"warning: cannot append history to {args.history!r}: {exc}",
                  file=sys.stderr)
    rendered = json.dumps(document, indent=2)
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"baseline updated: {args.baseline}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote perf document to {args.output}", file=sys.stderr)
    elif not args.update_baseline:
        print(rendered)
    if args.profile:
        tables = "\n\n".join(perf_mod.format_profile(profile)
                             for profile in document["profiles"])
        if args.output:
            # The human-readable twin of the `profiles` section, next to the
            # BENCH json: BENCH_ci.json -> BENCH_ci.profile.txt.
            stem = args.output[:-5] if args.output.endswith(".json") else args.output
            profile_path = stem + ".profile.txt"
            with open(profile_path, "w", encoding="utf-8") as handle:
                handle.write(tables + "\n")
            print(f"wrote profile tables to {profile_path}", file=sys.stderr)
        else:
            print(tables, file=sys.stderr)
    baseline_error = document.get("baseline_error")
    if baseline_error is not None:
        print(f"warning: {baseline_error}", file=sys.stderr)
        if args.require_baseline:
            print("error: --require-baseline set and no baseline was loaded",
                  file=sys.stderr)
            return 1
    status = 0
    regressions = document.get("regressions", [])
    if regressions:
        print(f"PERF REGRESSION (> {args.threshold:.0%} slower than baseline): "
              f"{', '.join(regressions)}", file=sys.stderr)
        status = 1
    rss_regressions = document.get("rss_regressions", [])
    if rss_regressions:
        print(f"RSS REGRESSION (> {args.threshold:.0%} more peak memory than "
              f"baseline): {', '.join(rss_regressions)}", file=sys.stderr)
        status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _run_list(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "engine":
        print(json.dumps(engine_info(), indent=2, sort_keys=True))
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "figures":
        return _run_figures(args)
    return _run_scenario(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
