"""Time-series throughput, used by the online-adaptivity experiment (Fig. 11b)."""

from __future__ import annotations

from typing import Dict, List, Tuple


class ThroughputTimeline:
    """Buckets committed-transaction completions into fixed-width time bins."""

    def __init__(self, bucket_ms: float = 1000.0):
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        self.bucket_ms = bucket_ms
        self._buckets: Dict[int, int] = {}

    def record(self, finished_at_ms: float) -> None:
        """Record one committed transaction finishing at the given time."""
        index = int(finished_at_ms // self.bucket_ms)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def series(self, until_ms: float = None) -> List[Tuple[float, float]]:
        """Return (bucket_start_ms, throughput_tps) pairs in time order."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        if until_ms is not None:
            last = max(last, int(until_ms // self.bucket_ms))
        out: List[Tuple[float, float]] = []
        for index in range(last + 1):
            count = self._buckets.get(index, 0)
            out.append((index * self.bucket_ms, count / (self.bucket_ms / 1000.0)))
        return out

    def total(self) -> int:
        """Total number of recorded completions."""
        return sum(self._buckets.values())
