"""A self-balancing AVL tree.

The paper organises the hotspot footprint in an AVL tree so that point and
range lookups over hot records are ``O(log n)`` (§IV-C).  This implementation
stores arbitrary values under totally-ordered keys and supports insert, find,
delete, ordered iteration and range queries.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    left, right = node.left, node.right
    left_height = left.height if left else 0
    right_height = right.height if right else 0
    node.height = (left_height if left_height > right_height
                   else right_height) + 1


def _balance_factor(node: _Node) -> int:
    left, right = node.left, node.right
    return (left.height if left else 0) - (right.height if right else 0)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    # Height/balance computations are inlined: this runs once per visited
    # node on every insert/remove, which makes it the tree's hot path.
    left, right = node.left, node.right
    left_height = left.height if left else 0
    right_height = right.height if right else 0
    node.height = (left_height if left_height > right_height
                   else right_height) + 1
    balance = left_height - right_height
    if balance > 1:
        if _balance_factor(left) < 0:
            node.left = _rotate_left(left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(right) > 0:
            node.right = _rotate_right(right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Ordered map with O(log n) insert / find / delete and range scans."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.find(key) is not None or self._find_node(key) is not None

    # ---------------------------------------------------------------- mutation
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` (or replace its value if already present)."""
        self._root, added = self._insert(self._root, key, value)
        if added:
            self._size += 1

    def _insert(self, node: Optional[_Node], key: Any, value: Any) -> Tuple[_Node, bool]:
        if node is None:
            return _Node(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, added = self._insert(node.left, key, value)
        else:
            node.right, added = self._insert(node.right, key, value)
        return _rebalance(node), added

    def remove(self, key: Any) -> bool:
        """Remove ``key``; returns True if it was present."""
        self._root, removed = self._remove(self._root, key)
        if removed:
            self._size -= 1
        return removed

    def _remove(self, node: Optional[_Node], key: Any) -> Tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif key > node.key:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._remove(node.right, successor.key)
        return _rebalance(node), removed

    # ----------------------------------------------------------------- queries
    def _find_node(self, key: Any) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def find(self, key: Any) -> Optional[Any]:
        """The value stored under ``key``, or None."""
        node = self._find_node(key)
        return node.value if node else None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (sorted by key) iteration over (key, value) pairs."""
        stack: List[_Node] = []
        node = self._root
        while stack or node:
            while node:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> List[Any]:
        """All keys in sorted order."""
        return [key for key, _value in self.items()]

    def range_query(self, low: Any, high: Any) -> List[Tuple[Any, Any]]:
        """All (key, value) pairs with ``low <= key <= high`` in key order."""
        out: List[Tuple[Any, Any]] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.key > low:
                visit(node.left)
            if low <= node.key <= high:
                out.append((node.key, node.value))
            if node.key < high:
                visit(node.right)

        visit(self._root)
        return out

    def height(self) -> int:
        """Tree height (0 for an empty tree); stays O(log n) by balancing."""
        return _height(self._root)

    def check_invariants(self) -> bool:
        """Verify BST ordering and AVL balance (used by property tests)."""

        def check(node: Optional[_Node]) -> Tuple[bool, int]:
            if node is None:
                return True, 0
            ok_left, height_left = check(node.left)
            ok_right, height_right = check(node.right)
            ordered = ((node.left is None or node.left.key < node.key)
                       and (node.right is None or node.right.key > node.key))
            balanced = abs(height_left - height_right) <= 1
            return (ok_left and ok_right and ordered and balanced,
                    1 + max(height_left, height_right))

        ok, _height_value = check(self._root)
        return ok
