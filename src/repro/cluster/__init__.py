"""Cluster construction: topologies, deployments and client terminals."""

from repro.cluster.topology import (
    DataNodeSpec,
    MiddlewareSpec,
    TopologyConfig,
    region_rtt_ms,
)
from repro.cluster.deployment import Cluster, build_cluster
from repro.cluster.client import ClientTerminal, start_terminals
from repro.cluster.open_loop import OpenClientPool
from repro.cluster.fleet import (
    FleetConfig,
    HealthState,
    MiddlewareFleet,
    RetryPolicy,
    get_routing_policy,
    register_routing_policy,
    routing_policy_names,
)
from repro.plugins import get_system_plugin, normalize_system, system_names


def __getattr__(name: str):
    # Kept lazy (like repro.cluster.deployment.SUPPORTED_SYSTEMS itself) so
    # all spellings of the constant reflect the live registry and importing
    # this package does not force plugin loading.
    if name == "SUPPORTED_SYSTEMS":
        from repro.cluster import deployment
        return deployment.SUPPORTED_SYSTEMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClientTerminal",
    "Cluster",
    "DataNodeSpec",
    "FleetConfig",
    "HealthState",
    "MiddlewareFleet",
    "MiddlewareSpec",
    "OpenClientPool",
    "RetryPolicy",
    "SUPPORTED_SYSTEMS",
    "TopologyConfig",
    "build_cluster",
    "get_routing_policy",
    "get_system_plugin",
    "normalize_system",
    "region_rtt_ms",
    "register_routing_policy",
    "routing_policy_names",
    "start_terminals",
    "system_names",
]
