"""Write-ahead log of a simulated data source (and of the middleware).

Only the structure needed by the paper's recovery protocol (§V-A) is modelled:
append-only records for PREPARE / COMMIT / ABORT decisions plus a flush cost in
simulated milliseconds.  The recovery manager replays these records after a
crash to decide the fate of in-doubt transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class LogRecordType(enum.Enum):
    """The kinds of decisions persisted to the log."""

    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(slots=True)
class WALRecord:
    """One persisted log entry."""

    record_type: LogRecordType
    xid: str
    timestamp: float
    payload: Dict = field(default_factory=dict)


class WriteAheadLog:
    """Append-only durable log with a fixed flush latency."""

    def __init__(self, flush_cost_ms: float = 1.0):
        self.flush_cost_ms = flush_cost_ms
        self._records: List[WALRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record_type: LogRecordType, xid: str, timestamp: float,
               payload: Optional[Dict] = None) -> WALRecord:
        """Append a record (the caller is responsible for charging flush time)."""
        record = WALRecord(record_type=record_type, xid=xid,
                           timestamp=timestamp, payload=dict(payload or {}))
        self._records.append(record)
        return record

    def records(self) -> List[WALRecord]:
        """All records in append order."""
        return list(self._records)

    def records_for(self, xid: str) -> List[WALRecord]:
        """All records belonging to transaction ``xid``."""
        return [r for r in self._records if r.xid == xid]

    def last_decision(self, xid: str) -> Optional[LogRecordType]:
        """The final COMMIT/ABORT decision recorded for ``xid``, if any."""
        for record in reversed(self._records):
            if record.xid == xid and record.record_type in (
                    LogRecordType.COMMIT, LogRecordType.ABORT):
                return record.record_type
        return None

    def prepared_xids(self) -> List[str]:
        """Xids with a PREPARE record but no final decision (in-doubt)."""
        decided = {r.xid for r in self._records
                   if r.record_type in (LogRecordType.COMMIT, LogRecordType.ABORT)}
        seen: List[str] = []
        for record in self._records:
            if (record.record_type is LogRecordType.PREPARE
                    and record.xid not in decided and record.xid not in seen):
                seen.append(record.xid)
        return seen

    def truncate(self) -> None:
        """Discard all records (only used to model log archiving in tests)."""
        self._records.clear()
