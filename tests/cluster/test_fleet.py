"""Unit tests for the middleware fleet: routing, detection, retry discipline.

Everything here runs at the component level — stub middlewares (just ``name``
``crashed`` and ``submit``) on a bare :class:`Environment` — so each property
of the fleet layer is pinned independently of the full experiment runner:

* routing policies and their registry (including a custom registered policy),
* the failure detector's refusal-streak and health-probe channels,
* :class:`RetryPolicy` backoff math, jitter determinism and validation,
* the client terminal's failover loop, budgets and the deprecated
  ``RETRY_BACKOFF_MS`` fallback.
"""

from types import SimpleNamespace

import pytest

from repro.cluster.client import ClientTerminal
from repro.cluster.fleet import (
    FleetConfig,
    HealthState,
    MiddlewareFleet,
    RetryPolicy,
    get_routing_policy,
    register_routing_policy,
    routing_policy_names,
)
from repro.common import AbortReason, TransactionResult, TxnOutcome
from repro.sim.environment import Environment
from repro.sim.rng import SeededRNG


# ------------------------------------------------------------------- stubs
class _StubMiddleware:
    """Duck-typed middleware: name, crash flag and a scripted submit().

    Every submission takes ``latency_ms`` of simulated time — a zero-latency
    stub would let the closed client loop spin forever at one timestamp.
    """

    def __init__(self, env, name, crashed=False, refuse=False,
                 latency_ms=10.0):
        self.env = env
        self.name = name
        self.crashed = crashed
        self.refuse = refuse
        self.latency_ms = latency_ms
        self.submissions = 0
        self._counter = 0

    def submit(self, spec):
        self.submissions += 1
        self._counter += 1
        start = self.env.now
        event = self.env.event()

        def finish():
            now = self.env.now
            if self.refuse:
                result = TransactionResult(
                    txn_id=f"{self.name}-t{self._counter}",
                    outcome=TxnOutcome.ABORTED, start_time=start, end_time=now,
                    is_distributed=False,
                    abort_reason=AbortReason.UNAVAILABLE, rejected=True)
            else:
                result = TransactionResult(
                    txn_id=f"{self.name}-t{self._counter}",
                    outcome=TxnOutcome.COMMITTED, start_time=start,
                    end_time=now, is_distributed=False)
            event.succeed(result)

        self.env.call_at(self.latency_ms, finish)
        return event


class _RecordingCollector:
    def __init__(self):
        self.results = []

    def record(self, result, txn_type="generic"):
        self.results.append(result)


_WORKLOAD = SimpleNamespace(
    next_transaction=lambda terminal_id: SimpleNamespace(txn_type="generic"))


def _fleet(env, names, config=None, **stub_kwargs):
    middlewares = [_StubMiddleware(env, name, **stub_kwargs) for name in names]
    return MiddlewareFleet(env, middlewares, config), middlewares


def _refusal(name="dm1"):
    return TransactionResult(
        txn_id=f"{name}-t0", outcome=TxnOutcome.ABORTED, start_time=0.0,
        end_time=0.0, is_distributed=False,
        abort_reason=AbortReason.UNAVAILABLE, rejected=True)


def _commit(name="dm1"):
    return TransactionResult(
        txn_id=f"{name}-t0", outcome=TxnOutcome.COMMITTED, start_time=0.0,
        end_time=0.0, is_distributed=False)


# ------------------------------------------------------------- retry policy
def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_ms=50.0, cap_ms=400.0, multiplier=2.0, jitter=0.0)
    assert [policy.backoff_ms(n) for n in range(5)] == [50, 100, 200, 400, 400]


def test_backoff_jitter_is_bounded_and_seed_deterministic():
    policy = RetryPolicy(base_ms=100.0, cap_ms=1000.0, jitter=0.2)
    first = [policy.backoff_ms(1, SeededRNG(42)) for _ in range(5)]
    # A fresh RNG with the same seed reproduces the same jittered delay.
    assert first == [policy.backoff_ms(1, SeededRNG(42)) for _ in range(5)]
    for delay in [policy.backoff_ms(1, SeededRNG(seed)) for seed in range(50)]:
        assert 160.0 <= delay <= 240.0  # 200ms +- 20%


def test_backoff_without_rng_is_the_undithered_delay():
    policy = RetryPolicy(base_ms=100.0, cap_ms=1000.0, jitter=0.5)
    assert policy.backoff_ms(0) == 100.0


@pytest.mark.parametrize("kwargs", [
    dict(base_ms=-1.0),
    dict(base_ms=500.0, cap_ms=100.0),
    dict(multiplier=0.5),
    dict(jitter=1.0),
    dict(jitter=-0.1),
    dict(max_failovers=-1),
    dict(budget=-1),
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(probe_interval_ms=-1.0),
    dict(suspect_after=0),
    dict(suspect_after=3, down_after=2),
])
def test_fleet_config_validation(kwargs):
    with pytest.raises(ValueError):
        FleetConfig(**kwargs)


# ------------------------------------------------------------------ routing
def test_round_robin_cycles_over_healthy_middlewares():
    env = Environment()
    fleet, middlewares = _fleet(env, ["dm1", "dm2", "dm3"],
                                FleetConfig(probe_interval_ms=0.0))
    picks = [fleet.route(0).name for _ in range(6)]
    assert picks == ["dm1", "dm2", "dm3", "dm1", "dm2", "dm3"]


def test_region_affinity_sticks_to_home_until_it_is_unhealthy():
    env = Environment()
    config = FleetConfig(routing_policy="region_affinity",
                         probe_interval_ms=0.0, suspect_after=1, down_after=1)
    fleet, middlewares = _fleet(env, ["dm1", "dm2", "dm3"], config)
    assert [fleet.route(4).name for _ in range(3)] == ["dm2"] * 3
    # Kill the home: terminal 4 fails over to the next healthy one cyclically.
    fleet.note_submit(middlewares[1])
    fleet.note_result(middlewares[1], _refusal("dm2"))
    assert fleet.states["dm2"] is HealthState.DOWN
    assert fleet.route(4).name == "dm3"


def test_least_outstanding_prefers_idle_middlewares():
    env = Environment()
    config = FleetConfig(routing_policy="least_outstanding",
                         probe_interval_ms=0.0)
    fleet, middlewares = _fleet(env, ["dm1", "dm2"], config)
    assert fleet.route(0).name == "dm1"  # tie broken by topology order
    fleet.note_submit(middlewares[0])
    assert fleet.route(0).name == "dm2"
    fleet.note_submit(middlewares[1])
    fleet.note_submit(middlewares[1])
    assert fleet.route(0).name == "dm1"


def test_routing_registry_rejects_unknown_and_accepts_custom_policies():
    with pytest.raises(KeyError, match="round_robin"):
        get_routing_policy("nope")
    for name in ("round_robin", "region_affinity", "least_outstanding"):
        assert name in routing_policy_names()

    def always_last(fleet, terminal_id, candidates):
        return candidates[-1]

    register_routing_policy("always_last_test", always_last)
    try:
        env = Environment()
        fleet, _ = _fleet(env, ["dm1", "dm2"],
                          FleetConfig(routing_policy="always_last_test",
                                      probe_interval_ms=0.0))
        assert fleet.route(0).name == "dm2"
    finally:
        from repro.cluster import fleet as fleet_module
        del fleet_module._ROUTING_POLICIES["always_last_test"]


def test_route_away_from_prefers_other_healthy_middlewares():
    env = Environment()
    fleet, middlewares = _fleet(env, ["dm1", "dm2"],
                                FleetConfig(probe_interval_ms=0.0))
    for _ in range(4):
        assert fleet.route_away_from(0, middlewares[0]) is middlewares[1]
    # With nobody else left, it falls back to normal routing.
    solo_fleet, (solo,) = _fleet(env, ["dm1"], FleetConfig(probe_interval_ms=0.0))
    assert solo_fleet.route_away_from(0, solo) is solo


def test_fleet_requires_unique_names_and_at_least_one_middleware():
    env = Environment()
    with pytest.raises(ValueError, match="unique"):
        _fleet(env, ["dm1", "dm1"])
    with pytest.raises(ValueError, match="at least one"):
        MiddlewareFleet(env, [])


# ---------------------------------------------------------------- detection
def test_refusal_streak_walks_up_suspected_then_down_and_recovers():
    env = Environment()
    config = FleetConfig(probe_interval_ms=0.0, suspect_after=1, down_after=2)
    fleet, (dm1, dm2) = _fleet(env, ["dm1", "dm2"], config)

    fleet.note_submit(dm1)
    fleet.note_result(dm1, _refusal("dm1"))
    assert fleet.states["dm1"] is HealthState.SUSPECTED
    assert [m.name for m in fleet._candidates()] == ["dm2"]

    fleet.note_submit(dm1)
    fleet.note_result(dm1, _refusal("dm1"))
    assert fleet.states["dm1"] is HealthState.DOWN
    assert len(fleet.down_episodes) == 1

    # A commit on the survivor closes the divert window of dm1's episode...
    fleet.note_submit(dm2)
    fleet.note_result(dm2, _commit("dm2"))
    assert fleet.down_episodes[0]["diverted_at_ms"] == env.now

    # ...and any coordinated outcome on dm1 itself proves it is back.
    fleet.note_submit(dm1)
    fleet.note_result(dm1, _commit("dm1"))
    assert fleet.states["dm1"] is HealthState.UP
    assert fleet.down_episodes[0]["recovered_at_ms"] == env.now

    report = fleet.summary()
    (episode,) = report["down_episodes"]
    assert episode["time_to_divert_ms"] == 0.0
    assert report["states"] == {"dm1": "up", "dm2": "up"}


def test_candidates_degrade_to_suspected_then_everyone():
    env = Environment()
    config = FleetConfig(probe_interval_ms=0.0, suspect_after=1, down_after=2)
    fleet, (dm1, dm2) = _fleet(env, ["dm1", "dm2"], config)
    for middleware, name in ((dm1, "dm1"), (dm2, "dm2")):
        fleet.note_submit(middleware)
        fleet.note_result(middleware, _refusal(name))
    # Both suspected: routing still works over the suspected tier.
    assert {m.name for m in fleet._candidates()} == {"dm1", "dm2"}
    for middleware, name in ((dm1, "dm1"), (dm2, "dm2")):
        fleet.note_submit(middleware)
        fleet.note_result(middleware, _refusal(name))
    # Everyone down: the fleet keeps routing rather than deadlocking.
    assert {m.name for m in fleet._candidates()} == {"dm1", "dm2"}


def test_health_probe_marks_crashed_middlewares_down_and_back_up():
    env = Environment()
    config = FleetConfig(probe_interval_ms=10.0)
    fleet, (dm1, dm2) = _fleet(env, ["dm1", "dm2"], config)
    dm2.crashed = True
    env.run(until=15.0)
    assert fleet.states["dm2"] is HealthState.DOWN
    assert fleet.states["dm1"] is HealthState.UP
    assert fleet.down_episodes[0]["down_at_ms"] == 10.0
    dm2.crashed = False
    env.run(until=25.0)
    assert fleet.states["dm2"] is HealthState.UP
    assert fleet.down_episodes[0]["recovered_at_ms"] == 20.0
    assert [row[1:] for row in fleet.transitions] == [
        ["dm2", "down"], ["dm2", "up"]]


# ---------------------------------------------------- client terminal loop
def _run_terminal(env, middlewares, stop_at_ms, fleet=None, retry=None):
    collector = _RecordingCollector()
    terminal = ClientTerminal(
        env, 0, middlewares[0], _WORKLOAD, collector, stop_at_ms=stop_at_ms,
        fleet=fleet, retry=retry, seed=5)
    env.run(until=stop_at_ms + 1_000.0)
    return terminal, collector


def test_legacy_fixed_backoff_applies_without_a_retry_policy():
    """Deprecated ``RETRY_BACKOFF_MS`` fallback: no policy, fixed 50ms pauses."""
    env = Environment()
    middleware = _StubMiddleware(env, "dm1", refuse=True)
    terminal, collector = _run_terminal(env, [middleware], stop_at_ms=200.0)
    # Each round costs 10ms of submit latency plus the fixed 50ms pause, so
    # submissions start at t=0, 60, 120, 180 — four in a 200ms run.
    assert middleware.submissions == 4
    assert all(r.abort_reason is AbortReason.UNAVAILABLE
               for r in collector.results)


def test_backoff_landing_on_stop_time_buys_no_extra_transaction():
    env = Environment()
    middleware = _StubMiddleware(env, "dm1", refuse=True)
    terminal, _ = _run_terminal(env, [middleware], stop_at_ms=120.0)
    # Submissions at t=0 and t=60; the backoff after the second lands at
    # exactly the stop time, so no third transaction starts.
    assert middleware.submissions == 2
    assert terminal.transactions_run == 2


def test_clean_refusal_fails_over_to_a_healthy_middleware():
    env = Environment()
    dead = _StubMiddleware(env, "dm1", crashed=True, refuse=True)
    alive = _StubMiddleware(env, "dm2")
    fleet = MiddlewareFleet(env, [dead, alive],
                            FleetConfig(probe_interval_ms=0.0))
    retry = RetryPolicy(base_ms=0.0, cap_ms=0.0, jitter=0.0)
    terminal, collector = _run_terminal(env, [dead, alive], stop_at_ms=100.0,
                                        fleet=fleet, retry=retry)
    # Round-robin sent the first submission to dm1; the refusal failed over
    # to dm2, which committed — the client never saw the refusal.
    assert collector.results[0].committed
    assert fleet.failovers >= 1
    assert fleet.counters["dm1"]["rejected"] >= 1
    assert fleet.counters["dm2"]["committed"] >= 1
    assert fleet.summary()["per_middleware"]["dm2"]["failovers"] >= 1


def test_exhausted_budget_surfaces_the_refusal():
    env = Environment()
    dead = [_StubMiddleware(env, name, crashed=True, refuse=True)
            for name in ("dm1", "dm2")]
    fleet = MiddlewareFleet(env, dead, FleetConfig(probe_interval_ms=0.0))
    retry = RetryPolicy(base_ms=0.0, cap_ms=0.0, jitter=0.0, budget=0)
    terminal, collector = _run_terminal(env, dead, stop_at_ms=100.0,
                                        fleet=fleet, retry=retry)
    assert fleet.budget_exhausted >= 1
    assert not collector.results[0].committed
    assert collector.results[0].rejected


def test_max_failovers_bounds_resubmissions_per_transaction():
    env = Environment()
    dead = [_StubMiddleware(env, name, crashed=True, refuse=True)
            for name in ("dm1", "dm2")]
    fleet = MiddlewareFleet(env, dead, FleetConfig(probe_interval_ms=0.0))
    retry = RetryPolicy(base_ms=1_000.0, cap_ms=1_000.0, jitter=0.0,
                        max_failovers=2)
    collector = _RecordingCollector()
    ClientTerminal(env, 0, dead[0], _WORKLOAD, collector,
                   stop_at_ms=10_000.0, fleet=fleet, retry=retry, seed=5)
    env.run(until=2_500.0)
    # One logical transaction so far: initial try plus two failovers.
    assert sum(m.submissions for m in dead) == 3
    assert len(collector.results) == 1 and collector.results[0].rejected
