"""GeoTP reproduction: latency-aware geo-distributed transaction processing.

This package reproduces, on a discrete-event simulated substrate, the system
and evaluation of *GeoTP: Latency-aware Geo-Distributed Transaction Processing
in Database Middlewares* (ICDE 2025).  The public API is small:

* :class:`ExperimentConfig` / :func:`run_experiment` — run one experiment point
  (system x workload x topology) and get throughput / latency / abort metrics;
* :class:`TopologyConfig` — describe where middlewares and data sources live;
* :class:`YCSBConfig` / :class:`TPCCConfig` — workload knobs;
* :class:`GeoTPConfig` — the O1/O2/O3 switches of GeoTP itself;
* :func:`build_cluster` — lower-level access to a wired simulated cluster for
  users who want to drive transactions themselves;
* :func:`register_system` / :func:`register_workload` — the plugin registries
  behind both axes: systems and workloads are self-registering modules (see
  ``repro.plugins`` and ``repro.contrib``), discoverable via
  :func:`system_names` / :func:`workload_names` and
  ``python -m repro.bench list --systems/--workloads``;
* :class:`FaultPlan` / :class:`FaultEvent` / :class:`FaultKind` — scheduled
  fault injection (crashes, outages, partitions, latency spikes) via
  ``ExperimentConfig.fault_plan``.

See README.md for a quickstart, ARCHITECTURE.md for the layer map and
PLUGINS.md for the plugin authoring guide.
"""

from repro.bench.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
)
from repro.baselines.scalardb import ScalarDBConfig
from repro.cluster.deployment import Cluster, build_cluster
from repro.cluster.topology import DataNodeSpec, MiddlewareSpec, TopologyConfig
from repro.common import (
    AbortReason,
    Operation,
    OpType,
    TransactionResult,
    TxnOutcome,
)
from repro.core.config import GeoTPConfig
from repro.middleware.statements import Statement, TransactionSpec
from repro.recovery.failures import FaultEvent, FaultKind, FaultPlan
from repro.plugins import (
    SystemPlugin,
    WorkloadPlugin,
    get_system_plugin,
    get_workload_plugin,
    normalize_system,
    normalize_workload,
    register_system,
    register_workload,
    system_names,
    workload_names,
)
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.ycsb import CONTENTION_SKEW, YCSBConfig

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy so the constant always reflects the live system registry (plugins
    # may register after import) and `import repro` stays cheap.
    if name == "SUPPORTED_SYSTEMS":
        from repro.cluster import deployment
        return deployment.SUPPORTED_SYSTEMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AbortReason",
    "CONTENTION_SKEW",
    "Cluster",
    "DataNodeSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSummary",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "GeoTPConfig",
    "MiddlewareSpec",
    "Operation",
    "OpType",
    "SUPPORTED_SYSTEMS",
    "ScalarDBConfig",
    "Statement",
    "SystemPlugin",
    "TPCCConfig",
    "TopologyConfig",
    "TransactionResult",
    "TransactionSpec",
    "TxnOutcome",
    "WorkloadPlugin",
    "YCSBConfig",
    "build_cluster",
    "get_system_plugin",
    "get_workload_plugin",
    "normalize_system",
    "normalize_workload",
    "register_system",
    "register_workload",
    "run_experiment",
    "system_names",
    "workload_names",
    "__version__",
]
