"""Post-run robustness invariants for chaos and fault experiments.

Hundreds of generated chaos points (see :mod:`repro.recovery.chaos`) are only
useful if "the run completed" can be upgraded to "the run provably stayed
safe".  This module is that upgrade: a small, pluggable catalog of invariants
evaluated against every :class:`~repro.bench.runner.ExperimentSummary` the
runner produces, surfaced as ``summary.invariants`` and through the CLI JSON.

Design rules:

* Checkers are pure functions of the summary — no cluster access, no
  simulation state — so they are deterministic, engine-independent, and can
  re-run on a deserialised summary dict just as well as on a live run.
* An invariant that does not apply to a run (e.g. open-system books on a
  closed-loop run) reports ``skipped``, never ``passed`` — a green report
  means every *applicable* safety property actually held.
* Failure details are actionable: they carry the observed numbers, not just
  a boolean, so a CI log alone localises the violation.

The catalog (see ``INVARIANTS``):

``books_balance``
    Open-system arrival books: ``offered == started + dropped`` and
    ``started == completed + in_flight_at_end``.
``no_lost_transactions``
    Every completed session is recorded exactly once by the metrics
    collector: ``completed == committed + aborted + warmup_samples``.
    Catches both lost and duplicated transactions.
``attribution_sums``
    Fleet abort/commit attribution sums across middlewares to the run
    totals — no transaction credited to two coordinators, none to zero.
``abort_reasons_bounded``
    The abort-reason histogram never exceeds the abort count and holds no
    negative entries.
``throughput_accounting``
    ``throughput_tps`` is exactly ``committed / measured_duration`` — a
    duplicated-commit detector on serialised summaries.
``availability_recovers``
    After every repaired fault with enough post-heal runway, throughput
    returns to the recovery band (half the pre-fault baseline, the
    ``time_to_recover_ms`` contract) before the run ends.
``wal_in_doubt_empty``
    After crash recovery, no datasource holds a prepared branch that no
    live coordinator owns and no decision log will ever resolve.
``recovery_completed``
    Every repaired crash produced at least one completed §V-A recovery
    pass, and every pass finished with a non-negative duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Invariant",
    "INVARIANTS",
    "register_invariant",
    "invariant",
    "check_invariants",
    "violations",
    "all_passed",
]

#: status values a check can produce
PASSED = "passed"
FAILED = "failed"
SKIPPED = "skipped"

# A checker returns None when the invariant holds, or a human-actionable
# failure message when it does not.
Checker = Callable[[Any], Optional[str]]
Applies = Callable[[Any], bool]


@dataclass(frozen=True)
class Invariant:
    """One pluggable robustness invariant."""

    name: str
    description: str
    applies: Applies
    check: Checker


#: Registry, in evaluation order.  Plugins may :func:`register_invariant`
#: additional entries; names are unique (re-registration replaces).
INVARIANTS: Dict[str, Invariant] = {}


def register_invariant(inv: Invariant) -> Invariant:
    INVARIANTS[inv.name] = inv
    return inv


def invariant(name: str, description: str,
              applies: Applies = lambda summary: True):
    """Decorator form of :func:`register_invariant`."""

    def decorate(fn: Checker) -> Checker:
        register_invariant(Invariant(name, description, applies, fn))
        return fn

    return decorate


# --------------------------------------------------------------------- runner

def check_invariants(summary: Any) -> Dict[str, Dict[str, str]]:
    """Evaluate every registered invariant against ``summary``.

    Returns ``{name: {"status": "passed"|"failed"|"skipped", "detail": str}}``
    in registration order.  A checker that raises is reported as a failure
    (with the exception text) rather than aborting the run — a malformed
    summary is itself a violation worth surfacing.
    """
    report: Dict[str, Dict[str, str]] = {}
    for inv in INVARIANTS.values():
        try:
            if not inv.applies(summary):
                report[inv.name] = {"status": SKIPPED, "detail": ""}
                continue
            detail = inv.check(summary)
        except Exception as exc:  # noqa: BLE001 - surfaced, not swallowed
            detail = f"checker crashed: {type(exc).__name__}: {exc}"
        if detail is None:
            report[inv.name] = {"status": PASSED, "detail": ""}
        else:
            report[inv.name] = {"status": FAILED, "detail": detail}
    return report


def violations(report: Optional[Dict[str, Dict[str, str]]]) -> List[str]:
    """``["name: detail", ...]`` for every failed invariant in ``report``."""
    if not report:
        return []
    return [f"{name}: {entry['detail']}"
            for name, entry in report.items()
            if entry.get("status") == FAILED]


def all_passed(report: Optional[Dict[str, Dict[str, str]]]) -> bool:
    """True when no applicable invariant failed (skips are fine)."""
    return not violations(report)


# -------------------------------------------------------------------- helpers

def _faults(summary: Any) -> Optional[Dict[str, Any]]:
    return getattr(summary, "faults", None)


def _repaired_events(faults: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Plan entries with a heal (duration > 0), in plan order.

    ``time_to_recover_ms`` is keyed by ``event.describe()`` strings built in
    the same order, so zipping the two is safe on round-tripped JSON too.
    """
    return [event for event in faults.get("plan", ())
            if float(event.get("duration_ms", 0.0)) > 0.0]


CRASH_KINDS = ("middleware_crash", "datasource_crash")


# -------------------------------------------------------------------- catalog

@invariant(
    "books_balance",
    "open-system arrival books: offered == started + dropped and "
    "started == completed + in_flight_at_end",
    applies=lambda s: getattr(s, "open_loop", None) is not None)
def _books_balance(summary: Any) -> Optional[str]:
    books = summary.open_loop
    offered = books["offered"]
    started, dropped = books["started"], books["dropped"]
    completed, in_flight = books["completed"], books["in_flight_at_end"]
    if offered != started + dropped:
        return (f"offered={offered} != started+dropped={started}+{dropped}"
                f"={started + dropped} (arrivals lost or double-counted)")
    if started != completed + in_flight:
        return (f"started={started} != completed+in_flight_at_end="
                f"{completed}+{in_flight}={completed + in_flight} "
                f"(sessions vanished mid-run)")
    return None


@invariant(
    "no_lost_transactions",
    "every completed session is recorded exactly once: "
    "completed == committed + aborted + warmup_samples",
    applies=lambda s: getattr(s, "open_loop", None) is not None)
def _no_lost_transactions(summary: Any) -> Optional[str]:
    completed = summary.open_loop["completed"]
    recorded = summary.committed + summary.aborted + summary.warmup_samples
    if completed != recorded:
        kind = "lost" if completed > recorded else "duplicated"
        return (f"pool completed {completed} sessions but the collector "
                f"recorded {recorded} (committed={summary.committed} + "
                f"aborted={summary.aborted} + warmup={summary.warmup_samples})"
                f" — {abs(completed - recorded)} transaction(s) {kind}")
    return None


@invariant(
    "attribution_sums",
    "fleet commit/abort attribution sums across middlewares to the run totals",
    applies=lambda s: bool(getattr(s, "fleet", None))
    and "attribution" in s.fleet)
def _attribution_sums(summary: Any) -> Optional[str]:
    attribution = summary.fleet["attribution"]
    committed = sum(row.get("committed", 0) for row in attribution.values())
    aborted = sum(row.get("aborted", 0) for row in attribution.values())
    if committed != summary.committed:
        return (f"per-middleware committed sums to {committed}, run total is "
                f"{summary.committed} (transaction credited to "
                f"{'multiple' if committed > summary.committed else 'no'} "
                f"coordinator)")
    if aborted != summary.aborted:
        return (f"per-middleware aborted sums to {aborted}, run total is "
                f"{summary.aborted}")
    return None


@invariant(
    "abort_reasons_bounded",
    "abort-reason histogram never exceeds the abort count, no negative bins")
def _abort_reasons_bounded(summary: Any) -> Optional[str]:
    reasons = summary.abort_reasons or {}
    negative = {k: v for k, v in reasons.items() if v < 0}
    if negative:
        return f"negative abort-reason bins: {negative}"
    total = sum(reasons.values())
    if total > summary.aborted:
        return (f"abort reasons sum to {total} but only {summary.aborted} "
                f"aborts were recorded (reasons double-counted)")
    return None


@invariant(
    "throughput_accounting",
    "throughput_tps equals committed / measured_duration",
    applies=lambda s: s.measured_duration_ms > 0)
def _throughput_accounting(summary: Any) -> Optional[str]:
    expected = summary.committed / (summary.measured_duration_ms / 1000.0)
    if abs(expected - summary.throughput_tps) > max(1e-6 * expected, 1e-9):
        return (f"throughput_tps={summary.throughput_tps:.6f} but "
                f"committed/measured = {summary.committed}/"
                f"{summary.measured_duration_ms:.0f}ms = {expected:.6f} tps "
                f"(commit count and rate disagree)")
    return None


@invariant(
    "availability_recovers",
    "after every repaired fault with post-heal runway, throughput returns "
    "to the recovery band (>= half the pre-fault baseline) before run end",
    applies=lambda s: _faults(s) is not None
    and "time_to_recover_ms" in _faults(s))
def _availability_recovers(summary: Any) -> Optional[str]:
    faults = _faults(summary)
    availability = faults.get("availability", {})
    bucket_ms = float(availability.get("bucket_ms", 1000.0))
    series = availability.get("series", [])
    observed_end = (series[-1][0] + bucket_ms) if series else 0.0
    repaired = _repaired_events(faults)
    recover = faults.get("time_to_recover_ms", {})
    baselines = faults.get("recovery_baseline_tps", {})
    failures = []
    for event, (label, ttr) in zip(repaired, recover.items()):
        heal_at = float(event["at_ms"]) + float(event["duration_ms"])
        # Need at least two full buckets after the heal for "recovered" to
        # be observable at all; shorter runways are a skip, not a failure.
        if observed_end - heal_at < 2 * bucket_ms:
            continue
        # A fault that struck before the first full bucket has no measurable
        # pre-fault baseline — there is nothing to recover *to*.
        if baselines.get(label, 0.0) <= 0.0:
            continue
        if ttr is None:
            failures.append(
                f"{label}: throughput never returned to the recovery band "
                f"in the {observed_end - heal_at:.0f}ms after the heal")
    if failures:
        return "; ".join(failures)
    return None


@invariant(
    "wal_in_doubt_empty",
    "after crash recovery no datasource holds an orphaned prepared branch "
    "(no live owner, no decision log to resolve it)",
    applies=lambda s: _faults(s) is not None
    and "wal_in_doubt" in _faults(s))
def _wal_in_doubt_empty(summary: Any) -> Optional[str]:
    in_doubt = _faults(summary)["wal_in_doubt"]
    orphans = in_doubt.get("orphans", [])
    if orphans:
        shown = ", ".join(
            f"{o['xid']}@{o['datasource']}" for o in orphans[:5])
        more = f" (+{len(orphans) - 5} more)" if len(orphans) > 5 else ""
        return (f"{len(orphans)} prepared branch(es) left in doubt with no "
                f"owner and no decision: {shown}{more}")
    return None


@invariant(
    "recovery_completed",
    "every repaired crash produced at least one completed recovery pass",
    applies=lambda s: _faults(s) is not None and any(
        e.get("kind") in CRASH_KINDS for e in _repaired_events(_faults(s))))
def _recovery_completed(summary: Any) -> Optional[str]:
    faults = _faults(summary)
    recoveries = faults.get("recoveries", [])
    for report in recoveries:
        recovery_ms = report.get("recovery_ms")
        if recovery_ms is None or recovery_ms < 0:
            return (f"recovery pass for {report.get('target')} reports "
                    f"recovery_ms={recovery_ms}")
    availability = faults.get("availability", {})
    bucket_ms = float(availability.get("bucket_ms", 1000.0))
    series = availability.get("series", [])
    observed_end = (series[-1][0] + bucket_ms) if series else 0.0
    for event in _repaired_events(faults):
        if event.get("kind") not in CRASH_KINDS:
            continue
        heal_at = float(event["at_ms"]) + float(event["duration_ms"])
        if heal_at >= observed_end:
            continue  # restart fired after the measured window; nothing to see
        matching = [r for r in recoveries if r.get("kind") == event["kind"]]
        if not matching:
            return (f"{event['kind']} healed at {heal_at:.0f}ms but no "
                    f"recovery pass of that kind ran")
    return None
