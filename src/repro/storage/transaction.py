"""Local (per-data-source) XA transaction state machine.

A subtransaction on a data source moves through the XA states::

    ACTIVE --xa_end--> IDLE --xa_prepare--> PREPARED --commit--> COMMITTED
       \\                                        |
        \\--rollback--> ABORTED <---rollback-----/

Illegal transitions raise :class:`IllegalTransitionError`; the correctness
tests assert that the data source never commits a subtransaction that has not
been prepared (atomicity property AC3/AC4 of the paper's §V-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set, Tuple


class TxnState(enum.Enum):
    """XA states of a subtransaction on one data source."""

    ACTIVE = "active"
    IDLE = "idle"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class IllegalTransitionError(Exception):
    """An XA verb was applied in a state where it is not allowed."""

    def __init__(self, xid: str, state: TxnState, verb: str):
        super().__init__(f"txn {xid}: cannot {verb} in state {state.value}")
        self.xid = xid
        self.state = state
        self.verb = verb


_ALLOWED = {
    "end": {TxnState.ACTIVE},
    "prepare": {TxnState.IDLE, TxnState.ACTIVE},
    "commit": {TxnState.PREPARED},
    "commit_one_phase": {TxnState.ACTIVE, TxnState.IDLE},
    "rollback": {TxnState.ACTIVE, TxnState.IDLE, TxnState.PREPARED},
}


@dataclass(slots=True)
class LocalTransaction:
    """State of one subtransaction executing on a data source."""

    xid: str
    global_txn_id: str
    state: TxnState = TxnState.ACTIVE
    started_at: float = 0.0
    finished_at: Optional[float] = None
    locked_keys: Set[Hashable] = field(default_factory=set)
    accessed_records: List[Tuple[str, Hashable]] = field(default_factory=list)
    #: Time of the first lock acquisition (start of the lock contention span).
    first_lock_at: Optional[float] = None

    def _check(self, verb: str) -> None:
        if self.state not in _ALLOWED[verb]:
            raise IllegalTransitionError(self.xid, self.state, verb)

    def mark_end(self) -> None:
        """XA END: execution finished, no further statements accepted."""
        self._check("end")
        self.state = TxnState.IDLE

    def mark_prepared(self) -> None:
        """XA PREPARE: transaction state and WAL persisted, vote YES."""
        self._check("prepare")
        self.state = TxnState.PREPARED

    def mark_committed(self, now: float) -> None:
        """Final commit after a successful prepare."""
        self._check("commit")
        self.state = TxnState.COMMITTED
        self.finished_at = now

    def mark_committed_one_phase(self, now: float) -> None:
        """One-phase commit used for centralized (single-source) transactions."""
        self._check("commit_one_phase")
        self.state = TxnState.COMMITTED
        self.finished_at = now

    def mark_aborted(self, now: float) -> None:
        """Rollback from any non-final state."""
        self._check("rollback")
        self.state = TxnState.ABORTED
        self.finished_at = now

    @property
    def is_finished(self) -> bool:
        """True once the subtransaction reached COMMITTED or ABORTED."""
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    @property
    def lock_contention_span_ms(self) -> Optional[float]:
        """LCS per Eq. (1): first lock acquisition to final release (finish)."""
        if self.first_lock_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.first_lock_at
