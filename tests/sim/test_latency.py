"""Unit tests for network latency models."""

import pytest

from repro.sim import (
    ConstantLatency,
    DynamicLatency,
    JitterLatency,
    RandomLatency,
    SeededRNG,
)


def test_constant_latency_rtt_and_one_way():
    model = ConstantLatency(100)
    assert model.rtt_at(0) == 100
    assert model.rtt_at(1e9) == 100
    assert model.sample_one_way(0) == 50


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_jitter_latency_mean_is_nominal_rtt():
    model = JitterLatency(80, std_ms=10, rng=SeededRNG(1))
    assert model.rtt_at(0) == 80


def test_jitter_latency_samples_vary_but_average_near_mean():
    model = JitterLatency(80, std_ms=10, rng=SeededRNG(7))
    samples = [model.sample_one_way(0) for _ in range(2000)]
    mean = sum(samples) / len(samples)
    assert 38 <= mean <= 42  # one-way mean should be ~40
    assert max(samples) != min(samples)


def test_jitter_latency_respects_floor():
    model = JitterLatency(10, std_ms=100, rng=SeededRNG(3), floor_ms=5)
    assert all(model.sample_one_way(0) >= 2.5 for _ in range(500))


def test_jitter_latency_zero_std_is_deterministic():
    model = JitterLatency(60, std_ms=0, rng=SeededRNG(2))
    assert all(model.sample_one_way(0) == 30 for _ in range(10))


def test_random_latency_samples_within_band():
    model = RandomLatency(100, max_factor=1.5, rng=SeededRNG(5))
    for _ in range(500):
        sample = model.sample_one_way(0)
        assert 50 <= sample <= 75


def test_random_latency_rejects_factor_below_one():
    with pytest.raises(ValueError):
        RandomLatency(100, max_factor=0.5)


def test_dynamic_latency_follows_schedule():
    model = DynamicLatency([(0, 50), (40_000, 150), (80_000, 20)])
    assert model.rtt_at(0) == 50
    assert model.rtt_at(39_999) == 50
    assert model.rtt_at(40_000) == 150
    assert model.rtt_at(79_999.9) == 150
    assert model.rtt_at(200_000) == 20


def test_dynamic_latency_before_first_entry_uses_first_value():
    model = DynamicLatency([(100, 30)])
    assert model.rtt_at(0) == 30


def test_dynamic_latency_equal_start_times_resolve_to_the_last_entry():
    # The bisect lookup must match the old linear scan: with duplicate start
    # times the later (sorted-last) entry wins from that time onward.
    model = DynamicLatency([(0, 50), (10, 70), (10, 90)])
    assert model.rtt_at(9.9) == 50
    assert model.rtt_at(10) == 90
    assert model.rtt_at(11) == 90


def test_dynamic_latency_fine_grained_schedule_lookup():
    # A fig11b_fine-style schedule: 320 one-second phases.  Every phase
    # boundary and interior point must resolve to its phase's RTT.
    schedule = [(phase * 1_000.0, float(10 + phase % 7)) for phase in range(320)]
    model = DynamicLatency(schedule)
    for phase in (0, 1, 5, 137, 318, 319):
        assert model.rtt_at(phase * 1_000.0) == 10 + phase % 7
        assert model.rtt_at(phase * 1_000.0 + 999.9) == 10 + phase % 7
    assert model.rtt_at(1e9) == 10 + 319 % 7


def test_dynamic_latency_empty_schedule_rejected():
    with pytest.raises(ValueError):
        DynamicLatency([])


def test_dynamic_latency_negative_rtt_rejected():
    with pytest.raises(ValueError):
        DynamicLatency([(0, -5)])


def test_describe_strings_are_informative():
    assert "constant" in ConstantLatency(10).describe()
    assert "jitter" in JitterLatency(10, 1).describe()
    assert "random" in RandomLatency(10).describe()
    assert "dynamic" in DynamicLatency([(0, 10)]).describe()
