"""Property tests for the bounded-memory reservoir percentile estimator.

Two regimes are pinned separately:

* **Exact regime** (stream fits the reservoir): hypothesis drives arbitrary
  streams and the streaming estimator must agree with the retained
  :class:`LatencyDistribution` bit for bit.
* **Sampling regime** (stream exceeds the reservoir): Algorithm R's kept
  indices are data-independent, so hypothesis over *values* cannot probe the
  error; instead fixed-seed random streams check the **rank error** — the
  fraction of the full stream below the estimate versus the target quantile —
  stays within 1 % at the default capacity of 4096.
"""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.percentiles import (
    DEFAULT_RESERVOIR_SIZE,
    LatencyDistribution,
    StreamingLatencyDistribution,
    percentile,
)

latencies = st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------- exact regime
@given(st.lists(latencies, min_size=1, max_size=200))
@settings(max_examples=200)
def test_exact_equivalence_while_stream_fits_reservoir(values):
    streaming = StreamingLatencyDistribution(capacity=200, seed=0)
    retained = LatencyDistribution()
    for value in values:
        streaming.add(value)
        retained.add(value)
    assert len(streaming) == len(retained)
    assert streaming.samples == retained.samples
    for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0):
        assert streaming.p(fraction) == retained.p(fraction)
        assert streaming.p(fraction) == percentile(values, fraction)
    assert streaming.mean == retained.mean
    assert streaming.summary_stats() == pytest.approx(retained.summary_stats())
    assert streaming.cdf() == retained.cdf()


@given(st.lists(latencies, min_size=1, max_size=64))
@settings(max_examples=100)
def test_exact_aggregates_regardless_of_reservoir_size(values):
    # count/mean/min/max are streaming aggregates, exact even at capacity 1.
    streaming = StreamingLatencyDistribution(capacity=1, seed=0)
    for value in values:
        streaming.add(value)
    assert len(streaming) == len(values)
    assert streaming.reservoir_len == 1
    assert streaming.min == min(values)
    assert streaming.max == max(values)
    assert streaming.mean == pytest.approx(sum(values) / len(values))


# ------------------------------------------------------------- sampling regime
def test_rank_error_within_one_percent_at_default_capacity():
    # The rank standard error at capacity k is sqrt(p(1-p)/k) — 0.78 % on the
    # median at 4096 — so the 1 % bound is asserted on the *mean* absolute
    # rank error across seeds, with a flat 2 % cap on any single seed.
    errors = {0.5: [], 0.9: [], 0.99: []}
    for seed in (1, 2, 3, 4, 5):
        stream_rng = random.Random(1_000 + seed)
        streaming = StreamingLatencyDistribution(
            capacity=DEFAULT_RESERVOIR_SIZE, seed=seed)
        full = []
        for _ in range(100_000):
            # Long-tailed, like latency.
            value = stream_rng.expovariate(1.0 / 250.0)
            streaming.add(value)
            full.append(value)
        full.sort()
        assert streaming.reservoir_len == DEFAULT_RESERVOIR_SIZE
        for fraction in errors:
            estimate = streaming.p(fraction)
            rank = bisect.bisect_left(full, estimate) / len(full)
            error = abs(rank - fraction)
            assert error <= 0.02, (
                f"seed {seed} p{fraction}: estimate {estimate} at rank {rank}")
            errors[fraction].append(error)
    for fraction, observed in errors.items():
        assert sum(observed) / len(observed) <= 0.01, (
            f"p{fraction}: mean rank error {observed}")


def test_reservoir_stays_uniform_over_the_stream():
    # Feed an increasing ramp: a uniform reservoir's mean index must be near
    # the middle of the stream, not biased toward the head or tail.
    streaming = StreamingLatencyDistribution(capacity=512, seed=9)
    n = 50_000
    for i in range(n):
        streaming.add(float(i))
    mean_index = sum(streaming.samples) / streaming.reservoir_len
    assert abs(mean_index - n / 2) < 0.1 * n


# -------------------------------------------------------------------- contract
def test_same_seed_same_reservoir():
    def build(seed):
        streaming = StreamingLatencyDistribution(capacity=64, seed=seed)
        for i in range(5_000):
            streaming.add(float(i % 997))
        return streaming.samples

    assert build(7) == build(7)
    assert build(7) != build(8)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        StreamingLatencyDistribution(capacity=0)


def test_empty_distribution_contract():
    streaming = StreamingLatencyDistribution(capacity=16)
    assert len(streaming) == 0
    assert streaming.mean == 0.0
    assert streaming.summary_stats()["count"] == 0
    assert streaming.cdf() == []
    with pytest.raises(ValueError):
        streaming.p50


def test_fraction_out_of_range_rejected():
    streaming = StreamingLatencyDistribution(capacity=16)
    streaming.add(1.0)
    with pytest.raises(ValueError):
        streaming.p(1.5)
