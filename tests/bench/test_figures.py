"""Tests for the checked figure pipeline (``repro.bench.figures``).

One broken-fixture test per registered sanity check — each must produce an
actionable message naming the check — plus the end-to-end guarantees: a figure
failing any check gets *no* artifact files, the builders reshape real CLI
documents correctly, and the ``figures`` CLI fails loudly on broken input.
"""

import json
import math
from pathlib import Path

import pytest

from repro.bench.__main__ import main
from repro.bench.figures import (FIGURE_CHECKS, Figure, FigureCheckError,
                                 assert_figure, availability_figures,
                                 build_figures, chaos_heatmap_figures,
                                 check_figure, emit_figures,
                                 fleet_scaleout_figures, load_sweep_figures)

DATA_DIR = Path(__file__).parent / "data"


def line_figure(**overrides) -> Figure:
    """A minimal well-formed two-series line figure."""
    spec = dict(
        name="probe", title="probe", kind="line",
        columns={"system": ["a", "a", "b", "b"],
                 "rate_tps": [100.0, 200.0, 100.0, 200.0],
                 "goodput_tps": [90.0, 150.0, 80.0, 140.0]},
        x="rate_tps", y="goodput_tps", series="system",
        x_label="x", y_label="y",
        checks=("columns_aligned", "no_nans", "nonempty_series",
                "monotone_x"),
        annotations={"expected_series": ["a", "b"]})
    spec.update(overrides)
    return Figure(**spec)


def test_well_formed_figure_passes_every_check():
    assert check_figure(line_figure()) == []
    assert_figure(line_figure())  # does not raise


# ------------------------------------------------ one broken fixture per check
def test_columns_aligned_rejects_ragged_columns():
    broken = line_figure()
    broken.columns["goodput_tps"] = broken.columns["goodput_tps"][:-1]
    failures = check_figure(broken)
    assert any("columns_aligned" in f and "unequal lengths" in f
               for f in failures)


def test_columns_aligned_rejects_missing_declared_column():
    broken = line_figure()
    del broken.columns["goodput_tps"]
    failures = check_figure(broken)
    assert any("'goodput_tps' is missing" in f for f in failures)


def test_columns_aligned_rejects_empty_data():
    broken = line_figure(columns={"system": [], "rate_tps": [],
                                  "goodput_tps": []})
    failures = check_figure(broken)
    assert any("no data to plot" in f for f in failures)


def test_no_nans_rejects_nan_and_inf_cells():
    broken = line_figure()
    broken.columns["goodput_tps"][1] = float("nan")
    failures = check_figure(broken)
    assert any("no_nans" in f and "row 1" in f for f in failures)
    broken = line_figure()
    broken.columns["rate_tps"][0] = math.inf
    assert any("no_nans" in f for f in check_figure(broken))


def test_no_nans_rejects_none_in_plotted_columns():
    broken = line_figure()
    broken.columns["goodput_tps"][2] = None
    failures = check_figure(broken)
    assert any("no_nans" in f and "None" in f for f in failures)


def test_nonempty_series_rejects_a_vanished_system():
    broken = line_figure(annotations={"expected_series": ["a", "b", "geotp"]})
    failures = check_figure(broken)
    assert any("nonempty_series" in f and "geotp" in f for f in failures)


def test_monotone_x_rejects_duplicate_and_out_of_order_x():
    broken = line_figure()
    broken.columns["rate_tps"][1] = 100.0  # duplicate within series "a"
    failures = check_figure(broken)
    assert any("monotone_x" in f and "'a'" in f for f in failures)
    broken = line_figure()
    broken.columns["rate_tps"][3] = 50.0   # folds back within series "b"
    assert any("monotone_x" in f for f in check_figure(broken))


def timeline_figure(**overrides) -> Figure:
    spec = dict(
        name="avail", title="avail", kind="timeline",
        columns={"t_s": [0.0, 1.0, 2.0], "committed": [10, 0, 8],
                 "aborted": [0, 3, 0]},
        x="t_s", y="committed", x_label="t", y_label="txns",
        checks=("columns_aligned", "no_nans", "monotone_x",
                "buckets_sum_to_totals"),
        annotations={"totals": {"committed": 18, "aborted": 3}})
    spec.update(overrides)
    return Figure(**spec)


def test_buckets_sum_to_totals_accepts_exact_accounting():
    assert check_figure(timeline_figure()) == []


def test_buckets_sum_to_totals_rejects_dropped_transactions():
    broken = timeline_figure(
        annotations={"totals": {"committed": 19, "aborted": 3}})
    failures = check_figure(broken)
    assert any("buckets_sum_to_totals" in f and "19" in f for f in failures)


def test_buckets_sum_to_totals_requires_the_totals_annotation():
    broken = timeline_figure(annotations={})
    failures = check_figure(broken)
    assert any("totals" in f and "missing" in f for f in failures)


def heatmap_figure(**overrides) -> Figure:
    spec = dict(
        name="grid", title="grid", kind="heatmap",
        columns={"scenario": ["s1", "s1", "s2", "s2"],
                 "invariant": ["i1", "i2", "i1", "i2"],
                 "status": [1.0, 0.5, 1.0, 0.0]},
        x="invariant", y="status", series="scenario",
        x_label="invariant", y_label="scenario",
        checks=("columns_aligned", "no_nans", "heatmap_complete"),
        annotations={"rows": ["s1", "s2"], "cols": ["i1", "i2"]})
    spec.update(overrides)
    return Figure(**spec)


def test_heatmap_complete_accepts_a_full_grid():
    assert check_figure(heatmap_figure()) == []


def test_heatmap_complete_rejects_a_missing_cell():
    broken = heatmap_figure()
    for column in broken.columns.values():
        column.pop()
    failures = check_figure(broken)
    assert any("heatmap_complete" in f and "2x2=4" in f for f in failures)


def test_heatmap_complete_rejects_unknown_status_values():
    broken = heatmap_figure()
    broken.columns["status"][0] = 0.7
    failures = check_figure(broken)
    assert any("0.7" in f for f in failures)


def test_heatmap_complete_requires_grid_axes():
    broken = heatmap_figure(annotations={})
    failures = check_figure(broken)
    assert any("rows" in f for f in failures)


def test_unregistered_check_name_fails_instead_of_passing_silently():
    broken = line_figure(checks=("no_such_check",))
    failures = check_figure(broken)
    assert any("not registered" in f for f in failures)


def test_assert_figure_raises_with_figure_name_and_messages():
    broken = line_figure()
    broken.columns["goodput_tps"][0] = float("nan")
    with pytest.raises(FigureCheckError) as excinfo:
        assert_figure(broken)
    assert excinfo.value.figure_name == "probe"
    assert "no_nans" in str(excinfo.value)


def test_every_registered_check_has_a_broken_fixture_test():
    # Guard for future checks: extend this map (and add a test) when
    # registering a new sanity check.
    assert set(FIGURE_CHECKS) == {"columns_aligned", "no_nans",
                                  "nonempty_series", "monotone_x",
                                  "buckets_sum_to_totals", "heatmap_complete"}


# ------------------------------------------------------------------- builders
def test_load_sweep_builder_marks_the_knee_per_system():
    document = {"scenario": "load_sweep", "rows": [
        {"params": {"system": "geotp", "rate_tps": rate},
         "throughput_tps": tps, "p99_latency_ms": 10.0,
         "open_loop": {"drop_rate": 0.0}}
        for rate, tps in [(100.0, 95.0), (200.0, 180.0), (400.0, 170.0)]]}
    goodput, p99 = load_sweep_figures(document)
    assert goodput.name == "load_sweep_goodput"
    assert p99.y == "p99_latency_ms"
    # The knee is the rate of maximum goodput, not the maximum rate.
    assert goodput.annotations["knees"]["geotp"]["rate_tps"] == 200.0
    assert check_figure(goodput) == [] and check_figure(p99) == []


def test_availability_builder_carries_totals_and_fault_windows():
    document = {"scenario": "fault_x", "rows": [
        {"params": {"system": "geotp"}, "committed": 18, "aborted": 3,
         "faults": {"availability": {"bucket_ms": 1000.0,
                                     "series": [[0.0, 10, 0], [1000.0, 0, 3],
                                                [2000.0, 8, 0]]},
                    "plan": [{"kind": "datasource_crash", "at_ms": 900.0,
                              "duration_ms": 600.0, "target": "ds1"}]}}]}
    [figure] = availability_figures(document)
    assert figure.annotations["totals"] == {"committed": 18, "aborted": 3}
    assert figure.annotations["windows"] == [
        {"start_s": 0.9, "end_s": 1.5, "label": "datasource_crash"}]
    assert check_figure(figure) == []


def test_fleet_builder_computes_scaleout_efficiency_against_k1():
    document = {"scenario": "fleet_scaleout", "rows": [
        {"params": {"system": "geotp", "middleware_count": k},
         "throughput_tps": tps}
        for k, tps in [(1, 100.0), (2, 190.0), (4, 360.0)]]}
    throughput, efficiency = fleet_scaleout_figures(document)
    assert efficiency.columns["efficiency"] == [1.0, 0.95, 0.9]
    assert check_figure(throughput) == [] and check_figure(efficiency) == []


def test_chaos_builder_grids_every_point_and_marks_absent_as_skipped():
    document = {"scenarios_run": ["c1"], "results": [
        {"scenario": "c1", "points": [
            {"params": {"system": "geotp"},
             "invariants": {"books_balance": {"status": "passed"},
                            "recovery_completed": {"status": "failed"}}},
            {"params": {"system": "ssp"},
             "invariants": {"books_balance": {"status": "passed"}}}]}]}
    [figure] = chaos_heatmap_figures(document)
    assert figure.annotations["rows"] == ["c1 [geotp]", "c1 [ssp]"]
    index = {(figure.columns["scenario"][i], figure.columns["invariant"][i]):
             figure.columns["status"][i] for i in range(figure.n_rows())}
    assert index[("c1 [geotp]", "recovery_completed")] == 0.0
    assert index[("c1 [ssp]", "recovery_completed")] == 0.5  # never ran
    assert check_figure(figure) == []


def test_build_figures_rejects_a_document_with_no_applicable_builder():
    with pytest.raises(ValueError, match="no figure builder applies"):
        build_figures({"scenario": "smoke", "rows": [
            {"params": {"system": "geotp"}, "throughput_tps": 1.0}]})


# ------------------------------------------------------------------- emission
def test_emit_figures_blocks_artifacts_for_failing_figures(tmp_path):
    good = line_figure(name="good")
    bad = line_figure(name="bad")
    bad.columns["goodput_tps"][0] = float("nan")
    report = emit_figures([good, bad], tmp_path, render=False)
    assert [entry["figure"] for entry in report["figures"]] == ["good"]
    assert (tmp_path / "good.json").exists()
    assert not (tmp_path / "bad.json").exists(), \
        "a failing figure must not leave artifacts behind"
    [violation] = report["violations"]
    assert violation["figure"] == "bad"
    assert any("no_nans" in f for f in violation["failures"])


def test_emitted_data_json_round_trips_the_figure(tmp_path):
    figure = line_figure()
    emit_figures([figure], tmp_path, render=False)
    restored = json.loads((tmp_path / "probe.json").read_text())
    assert restored["columns"] == figure.columns
    assert restored["checks"] == list(figure.checks)
    assert restored["annotations"]["expected_series"] == ["a", "b"]


# ------------------------------------------------------------------------ CLI
def test_figures_cli_fails_on_broken_input_and_emits_nothing(tmp_path, capsys):
    out_dir = tmp_path / "figs"
    status = main(["figures", "load_sweep",
                   "--input", str(DATA_DIR / "broken_load_sweep.json"),
                   "--output-dir", str(out_dir)])
    assert status == 1
    err = capsys.readouterr().err
    assert "FIGURE CHECK FAILED" in err
    assert "monotone_x" in err or "no_nans" in err
    assert not list(out_dir.glob("load_sweep_*")), \
        "broken figures must not reach the artifact directory"


def test_figures_cli_emits_checked_artifacts_from_an_input_document(tmp_path,
                                                                    capsys):
    document = {"scenario": "fleet_scaleout", "rows": [
        {"params": {"system": "geotp", "middleware_count": k},
         "throughput_tps": tps}
        for k, tps in [(1, 100.0), (2, 190.0)]]}
    source = tmp_path / "doc.json"
    source.write_text(json.dumps(document))
    out_dir = tmp_path / "figs"
    status = main(["figures", "fleet_scaleout", "--input", str(source),
                   "--output-dir", str(out_dir), "--data-only"])
    assert status == 0
    assert (out_dir / "fleet_scaleout_throughput.json").exists()
    assert (out_dir / "fleet_scaleout_efficiency.json").exists()
    assert "emitted 2 checked figure(s)" in capsys.readouterr().err


def test_figures_cli_rejects_an_inapplicable_document(tmp_path, capsys):
    source = tmp_path / "doc.json"
    source.write_text(json.dumps({"scenario": "smoke", "rows": []}))
    status = main(["figures", "smoke", "--input", str(source),
                   "--output-dir", str(tmp_path / "figs")])
    assert status == 2
    assert "no figure builder applies" in capsys.readouterr().err


def test_figures_cli_runs_a_scenario_end_to_end(tmp_path, capsys):
    # The smallest real scenario with a figure builder: collapse load_sweep
    # to one rate and one tiny duration, then render (data-only) from it.
    out_dir = tmp_path / "figs"
    status = main(["figures", "load_sweep", "--rate-tps", "80",
                   "--duration-ms", "400", "--warmup-ms", "100",
                   "--output-dir", str(out_dir), "--data-only"])
    assert status == 0
    emitted = sorted(path.name for path in out_dir.glob("*.json"))
    assert emitted == ["load_sweep_goodput.json", "load_sweep_p99.json"]
