"""Integration tests for the scheduled fault-injection subsystem.

These drive whole experiments with an ``ExperimentConfig.fault_plan`` set and
assert the injected faults actually bite (refusals, abort spikes, parked
traffic) and that the system heals (recovery passes run, commits resume,
availability metrics report the dip).
"""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.metrics.availability import build_availability
from repro.recovery import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.recovery.failures import post_recovery_band
from repro.workloads.ycsb import YCSBConfig


def fault_config(system="geotp", plan=None, **overrides):
    defaults = dict(
        system=system, terminals=6, duration_ms=5_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(records_per_node=1_000, preload_rows_per_node=200),
        fault_plan=plan, seed=7)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def one_event_plan(kind, **kwargs):
    return FaultPlan(events=(
        FaultEvent(kind=kind, at_ms=2_000.0, duration_ms=1_000.0, **kwargs),))


# ----------------------------------------------------------------- validation
def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(kind=FaultKind.DATASOURCE_CRASH, at_ms=100.0)  # no target
    with pytest.raises(ValueError):
        FaultEvent(kind=FaultKind.PARTITION, at_ms=100.0, target="ds0")  # no peer
    with pytest.raises(ValueError):
        FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=100.0, factor=0.5)
    with pytest.raises(ValueError):
        FaultEvent(kind=FaultKind.MIDDLEWARE_CRASH, at_ms=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(events=())


def test_fault_event_rejects_unknown_mode():
    with pytest.raises(ValueError):
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=0.0, target="ds2",
                   mode="parck")


def test_fault_plan_rejects_overlapping_same_target_windows():
    """The network fault state is single-slot: overlaps would heal early."""
    overlapping = (
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=1_000.0,
                   duration_ms=2_000.0, target="ds2"),
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=2_000.0,
                   duration_ms=2_000.0, target="ds2"),
    )
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(events=overlapping)
    # An unrepaired fault (duration 0) conflicts with anything after it.
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(events=(
            FaultEvent(kind=FaultKind.DATASOURCE_CRASH, at_ms=1_000.0,
                       target="ds1"),
            FaultEvent(kind=FaultKind.DATASOURCE_CRASH, at_ms=9_000.0,
                       duration_ms=500.0, target="ds1"),
        ))
    # An all-node latency spike conflicts with any other spike.
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(events=(
            FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=1_000.0,
                       duration_ms=2_000.0, factor=2.0),
            FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=2_000.0,
                       duration_ms=2_000.0, target="ds1", factor=2.0),
        ))
    # Sequential windows and distinct targets are fine.
    FaultPlan(events=(
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=1_000.0,
                   duration_ms=500.0, target="ds2"),
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=2_000.0,
                   duration_ms=500.0, target="ds2"),
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=1_000.0,
                   duration_ms=500.0, target="ds1"),
    ))


def test_fault_plan_rejects_reversed_partition_pairs():
    """A partition disrupts both directions, so A<->B conflicts with B<->A."""
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(events=(
            FaultEvent(kind=FaultKind.PARTITION, at_ms=1_000.0,
                       duration_ms=2_000.0, target="ds1", peer="ds2"),
            FaultEvent(kind=FaultKind.PARTITION, at_ms=2_000.0,
                       duration_ms=2_000.0, target="ds2", peer="ds1"),
        ))


def test_cross_target_overlap_is_allowed_for_composed_plans():
    """Different targets may overlap: the chaos 'dual' plan depends on it."""
    from repro.recovery.chaos import build_chaos_fault_plan

    # An outage healing inside a still-active cross-target partition window
    # validates (the re-interception test below shows why it is safe).
    plan = build_chaos_fault_plan("dual", 10_000.0)
    outage, partition = plan.events
    assert outage.at_ms + outage.duration_ms < \
        partition.at_ms + partition.duration_ms
    # Hand-written equivalent, plus an unrelated node, also validates.
    FaultPlan(events=(
        FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=1_000.0,
                   duration_ms=2_000.0, target="ds2"),
        FaultEvent(kind=FaultKind.PARTITION, at_ms=1_500.0,
                   duration_ms=2_000.0, target="ds1", peer="ds2"),
        FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=1_500.0,
                   duration_ms=2_000.0, target="ds0", factor=2.0),
    ))


def test_dual_plan_released_deliveries_are_re_intercepted():
    """The injector-driven version of the network re-interception test.

    The generated ``dual`` plan heals the ds2 outage while the ds1<->ds2
    partition is still active; a message parked by the outage must be
    re-parked by the partition on release, not tunnel through it.
    """
    from types import SimpleNamespace

    from repro.recovery.chaos import build_chaos_fault_plan
    from repro.sim import ConstantLatency, Environment, Network

    env = Environment()
    net = Network(env)
    net.set_link("ds1", "ds2", ConstantLatency(100.0))
    a, b = net.interface("ds1"), net.interface("ds2")
    cluster = SimpleNamespace(env=env, network=net,
                              datasources={"ds1": None, "ds2": None},
                              agents={}, middlewares=[])
    # Outage on ds2 over [4000, 5500); partition ds1<->ds2 over [4500, 6000).
    plan = build_chaos_fault_plan("dual", 10_000.0)
    injector = FaultInjector(cluster, plan)
    injector.install()
    received = []

    def receiver():
        while True:
            msg = yield b.receive()
            received.append((env.now, msg.msg_type))

    def sender():
        yield env.timeout(4_200.0)   # inside the outage, before the partition
        a.send("ds2", "caught_twice")

    env.process(receiver(), daemon=True)
    env.process(sender())
    env.run(until=10_000.0)
    # Released by the outage heal at t=5500, re-parked under the partition,
    # delivered one link delay after the partition heals at t=6000.
    assert received == [(6_050.0, "caught_twice")]
    assert net.stats.messages_parked == 2  # parked once per disruption
    assert net.stats.messages_dropped == 0
    assert net._faults is None  # everything healed
    heals = [entry for entry in injector.log if entry["action"] == "heal"]
    assert len(heals) == 2


def test_unknown_fault_target_fails_before_the_run_starts():
    plan = one_event_plan(FaultKind.DATASOURCE_CRASH, target="ds9")
    with pytest.raises(KeyError, match="ds9"):
        run_experiment(fault_config(plan=plan))
    bad_middleware = one_event_plan(FaultKind.MIDDLEWARE_CRASH, target="dm9")
    with pytest.raises(KeyError):
        run_experiment(fault_config(plan=bad_middleware))


def test_fault_plan_windows_and_description():
    plan = one_event_plan(FaultKind.REGION_OUTAGE, target="ds2")
    assert plan.first_at_ms() == 2_000.0
    assert plan.outage_windows() == [(2_000.0, 3_000.0)]
    event = plan.events[0]
    assert "region_outage(ds2)" in event.describe()
    assert event.to_dict()["mode"] == "park"


# ----------------------------------------------------------- middleware crash
@pytest.mark.parametrize("system", ["ssp", "geotp"])
def test_middleware_crash_aborts_spike_then_service_recovers(system):
    plan = one_event_plan(FaultKind.MIDDLEWARE_CRASH)
    result = run_experiment(fault_config(system=system, plan=plan))
    faults = result.faults
    assert faults is not None

    # Clients saw the crash: refused submissions and/or interrupted txns.
    assert result.collector.abort_reasons().get("unavailable", 0) > 0

    # Exactly one recovery pass ran, after the restart at t=3000.
    assert len(faults["recoveries"]) == 1
    recovery = faults["recoveries"][0]
    assert recovery["kind"] == "middleware_crash"
    assert recovery["restarted_at_ms"] >= 3_000.0
    assert recovery["recovery_ms"] >= 0.0

    # Commits resume after the repair: the post-heal window is not dead.
    post_heal = [committed for start, committed, _
                 in faults["availability"]["series"] if start >= 4_000.0]
    assert sum(post_heal) > 0

    # The injector's primitive counters saw the crash too.
    assert faults["injected"] == {"middleware": 1}


def test_middleware_crash_leaves_no_orphaned_active_branches():
    """Crash-time and restart-time sweeps roll the orphaned sessions back."""
    plan = one_event_plan(FaultKind.MIDDLEWARE_CRASH)
    result = run_experiment(fault_config(system="ssp", plan=plan),
                            keep_cluster=True)
    middleware = result.cluster.middleware
    assert not middleware.crashed
    # Whatever is still in flight at shutdown was submitted after the
    # restart; nothing survived from before the crash.
    assert all(ctx.submitted_at >= 3_000.0
               for ctx in middleware.active_contexts.values())
    # After the run no branch is stuck holding locks: every lock table is
    # either empty or owned by a transaction that finished at shutdown time.
    for datasource in result.cluster.datasources.values():
        for txn in datasource.transactions.values():
            assert txn.state.value in ("committed", "aborted", "prepared", "active", "idle")
        # The decisive check: nothing the crashed coordinator owned is still
        # unfinished (the sweeps killed in-flight branches, recovery resolved
        # the prepared ones; only post-restart work may still be open).
        for txn in datasource.transactions.values():
            if txn.state.value in ("active", "idle", "prepared"):
                assert txn.started_at > 3_000.0


# ---------------------------------------------------------- data source crash
def test_datasource_crash_recovers_and_commits_resume():
    plan = one_event_plan(FaultKind.DATASOURCE_CRASH, target="ds1")
    result = run_experiment(fault_config(system="geotp", plan=plan))
    faults = result.faults
    assert faults["injected"] == {"datasource": 1}
    assert len(faults["recoveries"]) == 1
    assert faults["recoveries"][0]["kind"] == "datasource_crash"
    assert faults["recoveries"][0]["target"] == "ds1"
    # The run still commits a healthy share of work overall.
    assert result.committed > 0
    post_heal = [committed for start, committed, _
                 in faults["availability"]["series"] if start >= 4_000.0]
    assert sum(post_heal) > 0


# --------------------------------------------------------------- region outage
def test_region_outage_parks_traffic_and_self_heals():
    plan = one_event_plan(FaultKind.REGION_OUTAGE, target="ds2")
    result = run_experiment(fault_config(system="geotp", plan=plan),
                            keep_cluster=True)
    faults = result.faults
    stats = result.cluster.network.stats
    assert stats.messages_parked > 0
    assert stats.messages_dropped == 0
    assert result.cluster.network._faults is None  # fully healed
    # No recovery pass: nothing crashed, the network healed on its own.
    assert faults["recoveries"] == []
    assert faults["log"][-1]["action"] == "heal"
    post_heal = [committed for start, committed, _
                 in faults["availability"]["series"] if start >= 4_000.0]
    assert sum(post_heal) > 0


# ---------------------------------------------------------------- sanity band
def test_post_recovery_band_helper():
    lo, hi = post_recovery_band(100, measured_ms=4_000.0, outage_ms=1_000.0,
                                slack=0.2)
    assert lo == pytest.approx(100 * 0.75 * 0.8)
    assert hi == pytest.approx(120.0)
    with pytest.raises(ValueError):
        post_recovery_band(100, measured_ms=0.0, outage_ms=0.0)


# ------------------------------------------------------------- availability
def test_build_availability_buckets_and_metrics():
    class Sample:
        def __init__(self, finished_at, committed):
            self.finished_at = finished_at
            self.committed = committed

    samples = ([Sample(t, True) for t in (500, 1500, 1600, 3500)]
               + [Sample(2500, False)] * 3)
    report = build_availability(samples, duration_ms=4_000.0, bucket_ms=1_000.0)
    assert [b[1] for b in report.buckets] == [1, 2, 0, 1]
    assert [b[2] for b in report.buckets] == [0, 0, 3, 0]
    assert report.availability() == pytest.approx(0.75)
    assert report.abort_spike() == pytest.approx(4.0)  # 3 aborts vs mean 0.75
    # Baseline before t=2000 is 1.5 tps; recovery to half of that (>= 0.75
    # committed per bucket) happens in the bucket starting at 3000.
    assert report.throughput_before(2_000.0) == pytest.approx(1.5)
    assert report.time_to_recover_ms(2_000.0) == pytest.approx(1_000.0)
    assert report.time_to_recover_ms(2_000.0, baseline_tps=100.0) is None
    with pytest.raises(ValueError):
        build_availability([], duration_ms=1_000.0, bucket_ms=0.0)
    with pytest.raises(ValueError):
        build_availability([], duration_ms=1_000.0, start_ms=1_000.0)


def test_build_availability_starts_buckets_at_the_warmup_boundary():
    """Warm-up buckets can never hold a sample; they must not exist at all.

    Otherwise even a perfectly healthy run reports availability < 1 and the
    pre-fault baseline (hence time-to-recover) is diluted by guaranteed-zero
    buckets.
    """
    class Sample:
        def __init__(self, finished_at, committed):
            self.finished_at = finished_at
            self.committed = committed

    samples = [Sample(t, True) for t in (2_100, 3_200, 4_300, 5_400)]
    report = build_availability(samples, duration_ms=6_000.0,
                                bucket_ms=1_000.0, start_ms=2_000.0)
    assert [b[0] for b in report.buckets] == [2_000.0, 3_000.0, 4_000.0, 5_000.0]
    assert report.availability() == 1.0
    assert report.throughput_before(4_000.0) == pytest.approx(1.0)


def test_fault_run_availability_series_starts_at_warmup():
    plan = one_event_plan(FaultKind.LATENCY_SPIKE, factor=2.0)
    result = run_experiment(fault_config(system="ssp", plan=plan))
    series = result.faults["availability"]["series"]
    # No bucket covers the warm-up window (it could never hold a sample);
    # buckets tile [warmup_ms, duration_ms) and account for every commit.
    assert [start for start, _, _ in series] == [1_000.0, 2_000.0, 3_000.0,
                                                 4_000.0]
    assert sum(committed for _, committed, _ in series) == result.committed


def test_fault_report_is_in_the_picklable_summary():
    import pickle

    plan = one_event_plan(FaultKind.LATENCY_SPIKE, factor=3.0)
    summary = run_experiment(fault_config(system="ssp", plan=plan)).summary()
    assert summary.faults is not None
    assert summary.faults["plan"][0]["kind"] == "latency_spike"
    assert "availability" in summary.to_dict()["faults"]
    pickle.loads(pickle.dumps(summary))  # must cross worker boundaries
