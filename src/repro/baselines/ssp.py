"""SSP: the Apache ShardingSphere baseline.

ShardingSphere coordinates distributed transactions with the standard XA
two-phase commit driven from the middleware, which is exactly what
:class:`~repro.middleware.coordinator.TwoPhaseCommitCoordinator` implements.
This subclass only pins the system name used in reports.
"""

from __future__ import annotations

from repro.middleware.coordinator import TwoPhaseCommitCoordinator


class SSPCoordinator(TwoPhaseCommitCoordinator):
    """ShardingSphere-style middleware XA coordinator."""

    system_name = "SSP"
