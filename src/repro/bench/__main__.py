"""Command-line entry point for the scenario registry.

``python -m repro.bench list`` shows every registered scenario with its axes;
``python -m repro.bench run NAME`` expands the scenario into sweep points,
executes them (optionally across a process pool) and emits a JSON document
with one row per point.  Examples::

    PYTHONPATH=src python -m repro.bench list
    PYTHONPATH=src python -m repro.bench run smoke --workers 2
    PYTHONPATH=src python -m repro.bench run fig5_overall \\
        --duration-ms 5000 --terminals 16 --workers 4 --output fig5.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.parallel import SweepRunner, SweepResult
from repro.bench.scenarios import SCENARIOS, get_scenario, scenario_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="List and run the registered experiment scenarios.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios")

    run = commands.add_parser("run", help="run one scenario and emit JSON")
    run.add_argument("scenario", help="registered scenario name (see `list`)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: REPRO_BENCH_WORKERS or serial)")
    run.add_argument("--duration-ms", type=float, default=None,
                     help="override the simulated duration of every point")
    run.add_argument("--warmup-ms", type=float, default=None,
                     help="override the warm-up window of every point")
    run.add_argument("--terminals", type=int, default=None,
                     help="override the client terminal count of every point")
    run.add_argument("--seed", type=int, default=None,
                     help="override the base RNG seed of every point")
    run.add_argument("--output", default=None,
                     help="write the JSON document here instead of stdout")
    return parser


def _list_scenarios() -> int:
    width = max(len(name) for name in SCENARIOS)
    for name in scenario_names():
        scenario = SCENARIOS[name]
        axes = " x ".join(f"{axis.name}[{len(axis.values)}]"
                          for axis in scenario.axes)
        print(f"{name:<{width}}  {axes:<40}  {scenario.description}")
    return 0


def _result_document(result: SweepResult) -> dict:
    return {
        "scenario": result.sweep_name,
        "workers": result.workers,
        "points": len(result),
        "wall_clock_s": round(result.wall_clock_s, 3),
        "rows": [
            {"params": point.params,
             "wall_clock_s": round(point.wall_clock_s, 3),
             **point.summary.to_dict()}
            for point in result
        ],
    }


def _run_scenario(args: argparse.Namespace) -> int:
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    overrides = {"duration_ms": args.duration_ms, "warmup_ms": args.warmup_ms,
                 "terminals": args.terminals, "seed": args.seed}
    # An override naming one of the scenario's axes (e.g. --terminals for
    # fig5_overall) collapses that axis to the single given value; otherwise
    # the axis values would silently win over the base-config override.
    axis_names = {axis.name for axis in scenario.axes}
    axes = {name: (value,) for name, value in overrides.items()
            if value is not None and name in axis_names}
    base = {name: value for name, value in overrides.items()
            if name not in axis_names}
    try:
        sweep = scenario.sweep(axes=axes, **base)
        # Some scenarios derive these fields per point (fig11b computes the
        # duration from its phase schedule, fig11a derives the seed from the
        # repeat axis); tell the user instead of silently ignoring the flag.
        points = sweep.points()
        for name, value in base.items():
            if value is None:
                continue
            if any(getattr(point.config, name) != value for point in points):
                flag = "--" + name.replace("_", "-")
                print(f"note: {flag} is recomputed per point by scenario "
                      f"{scenario.name!r} and was ignored for some points",
                      file=sys.stderr)
        result = SweepRunner(max_workers=args.workers).run(sweep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = json.dumps(_result_document(result), indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {len(result)} points to {args.output}", file=sys.stderr)
    else:
        print(document)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _list_scenarios()
    return _run_scenario(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
