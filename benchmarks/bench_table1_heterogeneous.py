"""Table I — heterogeneous MySQL / PostgreSQL deployments."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import table1_heterogeneous


def test_table1_heterogeneous_deployments(benchmark):
    result = benchmark.pedantic(
        lambda: table1_heterogeneous(ratios=(0.25, 0.75),
                                     duration_ms=BENCH_DURATION_MS,
                                     terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    for scenario in ("S1", "S2", "S3"):
        for ratio in (0.25, 0.75):
            geotp = result[scenario][("geotp", ratio)]
            ssp = result[scenario][("ssp", ratio)]
            # GeoTP wins on throughput and latency in every deployment, as in Table I.
            assert geotp["throughput_tps"] > ssp["throughput_tps"]
            assert geotp["avg_latency_ms"] < ssp["avg_latency_ms"]
