"""Unit tests for middleware connection pools."""

import pytest

from repro.middleware.connection_pool import ConnectionPool, ConnectionPoolSet
from repro.sim import Environment


def test_pool_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        ConnectionPool(Environment(), "ds0", capacity=0)


def test_pool_bounds_concurrent_connections():
    env = Environment()
    pool = ConnectionPool(env, "ds0", capacity=2)
    order = []

    def user(name, hold_ms):
        request = pool.acquire()
        yield request
        order.append((env.now, name))
        yield env.timeout(hold_ms)
        pool.release(request)

    env.process(user("a", 10))
    env.process(user("b", 10))
    env.process(user("c", 10))
    env.run()
    assert order == [(0, "a"), (0, "b"), (10, "c")]
    assert pool.total_acquisitions == 3
    assert pool.in_use == 0


def test_pool_waiting_counter():
    env = Environment()
    pool = ConnectionPool(env, "ds0", capacity=1)
    first = pool.acquire()
    pool.acquire()
    assert pool.in_use == 1
    assert pool.waiting == 1
    pool.release(first)
    assert pool.waiting == 0


def test_pool_set_creates_one_pool_per_datasource():
    env = Environment()
    pools = ConnectionPoolSet(env, capacity=4)
    a = pools.pool("ds0")
    b = pools.pool("ds1")
    assert pools.pool("ds0") is a
    assert a is not b
    assert set(pools.pools()) == {"ds0", "ds1"}
    assert a.capacity == 4
