"""Tests for the contrib ``geotp_static`` system variant (frozen adaptation)."""

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster import TopologyConfig, build_cluster, get_system_plugin
from repro.contrib.geotp_static import GeoTPStaticCoordinator
from repro.core.geotp import GeoTPCoordinator
from repro.middleware import ModuloPartitioner
from repro.workloads.ycsb import YCSBConfig


def _cluster(system="geotp_static", rtts=(5.0, 40.0)):
    topology = TopologyConfig.from_rtts(list(rtts))
    partitioner = ModuloPartitioner(topology.node_names())
    return build_cluster(system, topology, partitioner)


def test_plugin_builds_the_static_coordinator_with_agents():
    cluster = _cluster()
    assert isinstance(cluster.middleware, GeoTPStaticCoordinator)
    assert set(cluster.agents) == {"ds0", "ds1"}  # needs_agents capability
    plugin = get_system_plugin("geotp_static")
    assert plugin.needs_agents
    assert not plugin.supports_active_probing


def test_frozen_config_disables_forecasting_and_probing():
    middleware = _cluster().middleware
    assert middleware.geotp.enable_high_contention_optimization is False
    assert middleware.geotp.enable_active_probing is False
    # Scheduling itself stays on (that is the point of the variant).
    assert middleware.geotp.enable_latency_aware_scheduling is True


def test_latency_estimates_never_move_from_the_primed_rtts():
    middleware = _cluster(rtts=(5.0, 40.0)).middleware
    before = middleware.latency_monitor.estimate("ds1")
    middleware.record_network_rtt("ds1", 500.0)
    middleware.record_network_rtt("ds1", 500.0)
    assert middleware.latency_monitor.estimate("ds1") == before

    # The adaptive coordinator, by contrast, moves with the observations.
    geotp = _cluster(system="geotp", rtts=(5.0, 40.0))
    assert isinstance(geotp.middleware, GeoTPCoordinator)
    assert not isinstance(geotp.middleware, GeoTPStaticCoordinator)
    moving = geotp.middleware.latency_monitor.estimate("ds1")
    geotp.middleware.record_network_rtt("ds1", 500.0)
    assert geotp.middleware.latency_monitor.estimate("ds1") != moving


def test_start_probing_is_a_no_op():
    middleware = _cluster().middleware
    middleware.start_probing()  # must not spawn a probe loop
    assert middleware.env.peek() is None or middleware.env.now == 0.0


def test_static_variant_runs_an_experiment_outside_deployment_and_runner():
    """The acceptance check: the variant lives entirely in the plugin module."""
    config = ExperimentConfig(
        system="geotp_static", terminals=2, duration_ms=1_500.0, warmup_ms=300.0,
        topology=TopologyConfig.from_rtts([5.0, 30.0]),
        ycsb=YCSBConfig(records_per_node=500, preload_rows_per_node=100))
    result = run_experiment(config)
    assert result.system == "geotp_static"
    assert result.committed > 0


def test_registered_scenario_pairs_static_against_adaptive():
    from repro.bench.scenarios import get_scenario

    scenario = get_scenario("static_vs_adaptive")
    points = scenario.sweep(axes={"ratio": (0.2,), "repeat": (0,)}).points()
    assert [p.params["system"] for p in points] == ["geotp_static", "geotp"]
    for point in points:
        # fig11a-style randomized links, seeded from the repeat axis.
        assert point.config.topology is not None
        assert point.config.seed == point.params["repeat"]
