"""The simulation environment: virtual clock and event queue (kernel module).

The :class:`Environment` owns the simulated clock (milliseconds, float) and
two scheduling structures:

* a **microqueue** (plain deque) of work that fires *now* — triggered events,
  finished processes and zero-delay callbacks.  Same-time work is dispatched
  in FIFO order without ever touching the heap;
* a **priority heap** of future work: ``(time, priority, sequence, entry)``
  tuples where ``entry`` is an :class:`~repro.sim.events.Event` or a
  lightweight :class:`Timer` created by :meth:`Environment.call_at`.

:meth:`Environment.run` drains the microqueue first, then pops the heap,
advancing the clock only on heap entries (microqueue work is by construction
at the current time).  The ``sequence`` counter is a plain int (bumped in-line
by the event classes as well, see :mod:`repro.sim.events`) so that same-time
heap entries keep FIFO order without the cost of an :func:`itertools.count`
call per schedule.

Ordering contract (relaxed since the reordering fast paths landed)
------------------------------------------------------------------

Entries are totally ordered by time; *within* one timestamp the engine
guarantees FIFO order per structure (microqueue first, then heap by priority
and sequence) but makes **no promise that this interleaving matches the old
heap-only engine byte for byte**.  Any change to same-timestamp interleaving
is validated by the statistical-equivalence harness
(:mod:`repro.bench.equivalence`) instead of byte-identical golden pins.

Cancellation is lazy: :meth:`cancel` (and :meth:`Timer.cancel`) only mark the
entry dead; dead entries are dropped when they reach the top of the heap, and
the whole heap is compacted once dead entries outnumber live ones.  Coarse
cancellable timeouts (lock waits, request timeouts) should instead use
:meth:`Environment.call_coarse`, which parks them on a hashed timer wheel:
set-then-cancel churn there never touches the heap at all.

This module is part of the mypyc-compilable kernel (see
:mod:`repro.sim._kernel`): fully annotated, ``Final`` constants, relative
imports only, and a fixed attribute layout — the factory fast paths
(``event``/``timeout``/``process``) are *declared attributes* bound to
``partial`` objects in ``__init__`` rather than methods shadowed per
instance, which is the same call-path at runtime but legal for a native
class.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heapify, heappop, heappush
from math import ceil
from typing import (Any, Callable, ClassVar, Deque, Dict, Final, Iterable,
                    List, Optional, Tuple)

from .events import PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process

#: Scheduling priorities: interrupts preempt normal events at the same time.
PRIORITY_URGENT: Final[int] = 0
PRIORITY_NORMAL: Final[int] = 1

#: Compact the heap when at least this many cancelled entries are buried in it
#: (and they outnumber the live ones); small queues are never worth compacting.
_COMPACT_MIN_CANCELLED: Final[int] = 64

#: Default tick width of the hashed timer wheel (:meth:`Environment.call_coarse`).
#: Coarse timers fire up to one tick *late* (never early); at 1 ms that is
#: 0.02 % of the paper's 5 s lock-wait timeout, below every other modelled
#: cost, while still letting all timers set within the same millisecond of
#: simulated time share a single heap entry.
WHEEL_GRANULARITY_MS: Final[float] = 1.0


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Timer:
    """A lightweight scheduled callback (no :class:`Event` allocated).

    Produced by :meth:`Environment.call_at` for fire-and-forget work such as
    network message delivery.  The callback is stored as ``fn`` plus
    positional ``args`` so callers can pass bound methods instead of
    allocating a fresh closure per schedule.  ``cancel()`` defuses the timer
    in O(1); the heap entry is reclaimed lazily.
    """

    __slots__ = ("fn", "args", "env")

    #: Class-level marker: the dispatch loop recognises a Timer (or a
    #: cancelled Event) by ``callbacks is None`` and then consults ``fn``.
    callbacks: ClassVar[None] = None

    def __init__(self, fn: Callable[..., None], args: Tuple[Any, ...],
                 env: "Environment"):
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.env = env

    @property
    def cancelled(self) -> bool:
        """True once the timer has been cancelled (or has fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Defuse the timer: its callback will never run."""
        if self.fn is not None:
            self.fn = None
            self.env._note_cancelled()


class _WheelBucket:
    """One tick's worth of wheel timers plus the shared heap entry."""

    __slots__ = ("env", "slot", "timers", "live", "timer")

    def __init__(self, env: "Environment", slot: int):
        self.env = env
        self.slot = slot
        self.timers: List["WheelTimer"] = []
        self.live: int = 0
        self.timer: Optional[Timer] = None


class WheelTimer:
    """A coarse cancellable timeout parked on the environment's timer wheel.

    Cancellation just clears ``fn`` and decrements its bucket's live count —
    no per-timer heap entry exists, so set-then-cancel churn (the lock
    manager's common case: most lock waits are granted long before their
    timeout) is O(1).  When the *last* live timer of a tick is cancelled the
    tick's shared heap entry is defused too, so a fully-cancelled tick never
    fires an empty slot (which would keep ``run()`` alive and advance the
    clock past the last real event).
    """

    __slots__ = ("fn", "args", "_bucket")

    def __init__(self, fn: Callable[..., None], args: Tuple[Any, ...],
                 bucket: _WheelBucket):
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self._bucket = bucket

    @property
    def cancelled(self) -> bool:
        """True once the timer has been cancelled (or has fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Defuse the timer: its callback will never run."""
        if self.fn is None:
            return
        self.fn = None
        bucket = self._bucket
        bucket.live -= 1
        if bucket.live == 0 and bucket.timer is not None:
            # Whole tick dead: defuse the shared heap entry and forget the
            # bucket so a later call_coarse for the same slot starts fresh.
            bucket.timer.cancel()
            bucket.timer = None
            bucket.env._wheel_buckets.pop(bucket.slot, None)


class Environment:
    """A discrete-event simulation environment with a millisecond clock."""

    __slots__ = ("now", "active_process", "events_processed", "_queue",
                 "_soon", "_eid", "_cancelled", "wheel_granularity_ms",
                 "_wheel_buckets", "event", "timeout", "process")

    #: Factory fast paths, bound in ``__init__``: ``timeout``/``event``/
    #: ``process`` are called tens of thousands of times per simulated second,
    #: and a C-level ``partial`` skips one Python frame per call.  Declared
    #: here (not as methods) so the layout is fixed for the compiled engine.
    event: Callable[[], Event]
    timeout: Callable[..., Timeout]
    process: Callable[..., Process]

    def __init__(self, initial_time: float = 0.0,
                 wheel_granularity_ms: float = WHEEL_GRANULARITY_MS):
        #: Current simulated time in milliseconds (read-only for models).
        self.now: float = float(initial_time)
        #: The process currently being resumed, if any.
        self.active_process: Optional[Process] = None
        #: Number of queue entries dispatched so far (microqueue + heap).
        self.events_processed: int = 0
        self._queue: List[Tuple[float, int, int, Any]] = []
        #: Same-time work in FIFO order: triggered Events / finished Processes,
        #: or ``(fn, args)`` tuples from :meth:`call_soon`.
        self._soon: Deque[Any] = deque()
        self._eid: int = 0
        self._cancelled: int = 0
        if wheel_granularity_ms <= 0:
            raise ValueError("wheel_granularity_ms must be positive")
        self.wheel_granularity_ms: float = float(wheel_granularity_ms)
        self._wheel_buckets: Dict[int, _WheelBucket] = {}
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Enqueue ``event`` to be processed ``delay`` ms from now."""
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self.now + delay, priority, eid, event))

    def call_at(self, delay: float, fn: Callable[..., None],
                *args: Any) -> Timer:
        """Run ``fn(*args)`` ``delay`` ms from now; returns a cancellable handle.

        This is the cheap alternative to ``timeout(delay).callbacks.append``
        for internal bookkeeping that no process ever waits on.  Scheduling
        order is identical to an equivalently-timed :class:`Timeout`.
        """
        timer = Timer(fn, args, self)
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self.now + delay, PRIORITY_NORMAL, eid, timer))
        return timer

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current time, after already-queued
        same-time work (FIFO).  Not cancellable; never touches the heap.

        This is the public form of the microqueue's ``(fn, args)`` entry
        protocol.  The network model inlines the append on its zero-delay
        paths (one attribute lookup saved per message); model extensions
        should call this instead of touching ``_soon`` directly.
        """
        self._soon.append((fn, args))

    def call_coarse(self, delay: float, fn: Callable[..., None],
                    *args: Any) -> WheelTimer:
        """Run ``fn(*args)`` on the hashed timer wheel; returns a handle.

        The deadline is rounded **up** to the next wheel tick
        (``wheel_granularity_ms``), so the callback fires at most one tick
        late and never early.  All timers sharing a tick share a single heap
        entry, and cancelling — the overwhelmingly common fate of lock-wait
        timers — never touches the heap.  Same-tick timers fire in the order
        they were set.
        """
        granularity = self.wheel_granularity_ms
        slot = ceil((self.now + delay) / granularity)
        bucket = self._wheel_buckets.get(slot)
        if bucket is None:
            self._wheel_buckets[slot] = bucket = _WheelBucket(self, slot)
            bucket.timer = self.call_at(slot * granularity - self.now,
                                        self._fire_wheel_slot, slot)
        timer = WheelTimer(fn, args, bucket)
        bucket.timers.append(timer)
        bucket.live += 1
        return timer

    def _fire_wheel_slot(self, slot: int) -> None:
        bucket = self._wheel_buckets.pop(slot, None)
        if bucket is None:
            return
        bucket.timer = None
        for timer in bucket.timers:
            fn = timer.fn
            if fn is not None:
                timer.fn = None
                fn(*timer.args)

    def cancel(self, event: Event) -> None:
        """Cancel a triggered-but-unprocessed event: its callbacks never run.

        Only use this on events whose callbacks you own (e.g. an internal
        timer); waiters subscribed to the event would never be resumed.
        """
        if event.callbacks is not None:
            event.callbacks = None
            # Heap dead-entry accounting applies only to entries that live
            # in the heap — i.e. future Timeouts.  Triggered events sit on
            # the microqueue (dropped for free at drain time), so counting
            # them would trigger pointless O(n) compactions.
            if event.__class__ is Timeout and event.delay:
                self._note_cancelled()

    def _note_cancelled(self) -> None:
        self._cancelled = cancelled = self._cancelled + 1
        if (cancelled >= _COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries from the heap and re-heapify the survivors.

        The queue list is mutated IN PLACE: the dispatch loop in :meth:`run`
        (and event-triggering code in :mod:`repro.sim.events`) holds direct
        references to the list object, so rebinding ``self._queue`` here would
        silently split the simulation across two queues.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue
                    if entry[3].callbacks is not None
                    or entry[3].fn is not None]
        heapify(queue)
        self._cancelled = 0

    def peek(self) -> float:
        """Time of the next live scheduled entry, or ``inf`` if none."""
        soon = self._soon
        while soon:
            entry = soon[0]
            if entry.__class__ is tuple or entry.callbacks is not None:
                return self.now
            soon.popleft()  # cancelled while queued: drop it
        queue = self._queue
        while queue:
            head = queue[0]
            entry = head[3]
            if entry.callbacks is not None or entry.fn is not None:
                return head[0]
            heappop(queue)
            if self._cancelled:
                self._cancelled -= 1
        return float("inf")

    # ------------------------------------------------------------- factories
    # ``event``/``timeout``/``process`` are declared attributes bound to
    # partial objects in ``__init__`` (see class body above).
    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -------------------------------------------------------------- execution
    def _dispatch_soon(self, entry: Any) -> None:
        """Dispatch one microqueue entry (shared by :meth:`step` and tests)."""
        if entry.__class__ is tuple:
            self.events_processed += 1
            fn, args = entry
            fn(*args)
            return
        callbacks = entry.callbacks
        if callbacks is None:
            return  # cancelled while queued
        self.events_processed += 1
        entry.callbacks = None
        for callback in callbacks:
            callback(entry)
        if not entry._ok and not entry.defused:
            raise entry._value

    def step(self) -> None:
        """Process the next scheduled entry (skipping cancelled ones)."""
        soon = self._soon
        while soon:
            entry = soon.popleft()
            if entry.__class__ is tuple or entry.callbacks is not None:
                self._dispatch_soon(entry)
                return
        queue = self._queue
        while True:
            try:
                when, _priority, _eid, event = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            callbacks = event.callbacks
            if callbacks is not None:
                break
            fn = event.fn
            if fn is not None:
                # Lightweight timer: fire and return.
                self.now = when
                self.events_processed += 1
                event.fn = None
                fn(*event.args)
                return
            if self._cancelled:
                self._cancelled -= 1
        self.now = when
        self.events_processed += 1
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was prepared to handle it: surface
            # the error instead of silently dropping it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an
        :class:`Event` (run until it triggers; its value is returned), or
        ``None`` (run until no events remain).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None

        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past (now={self.now})")

        # The dispatch loop below is `peek` + `step` inlined: it runs once per
        # simulated event, so the per-iteration call overhead matters.
        queue = self._queue
        soon = self._soon
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                value = stop_event._value
                if value is PENDING:
                    raise RuntimeError(
                        "until event will never fire (it was cancelled)")
                if stop_event._ok:
                    return value
                raise value

            # Same-time work first: microqueue entries were created at the
            # current clock value, so they never advance time.
            if soon:
                entry = soon.popleft()
                if entry.__class__ is tuple:
                    self.events_processed += 1
                    fn, args = entry
                    fn(*args)
                else:
                    callbacks = entry.callbacks
                    if callbacks is None:
                        continue  # cancelled while queued
                    self.events_processed += 1
                    entry.callbacks = None
                    for callback in callbacks:
                        callback(entry)
                    if not entry._ok and not entry.defused:
                        raise entry._value
                continue

            while queue:
                head = queue[0]
                entry = head[3]
                if entry.callbacks is not None or entry.fn is not None:
                    break
                heappop(queue)
                if self._cancelled:
                    self._cancelled -= 1
            else:
                if stop_event is not None and stop_event._value is PENDING:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited event fired")
                if stop_time is not None:
                    self.now = stop_time
                return None

            when = head[0]
            if stop_time is not None and when > stop_time:
                self.now = stop_time
                return None

            heappop(queue)
            event = head[3]
            self.now = when
            self.events_processed += 1
            callbacks = event.callbacks
            if callbacks is not None:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            else:
                fn = event.fn
                event.fn = None
                fn(*event.args)
