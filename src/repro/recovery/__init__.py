"""Failure injection and recovery (§V-A of the paper)."""

from repro.recovery.failures import FailureInjector
from repro.recovery.recovery_manager import RecoveryManager, RecoveryReport

__all__ = ["FailureInjector", "RecoveryManager", "RecoveryReport"]
