"""Figure 7 — impact of the distributed-transaction ratio on YCSB."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig7_distributed_ratio_ycsb


def test_fig7_distributed_ratio(benchmark):
    # The quick bench sweeps low and medium contention; at the paper's highest
    # skew a 20 s window yields single-digit commit counts for every system
    # (see EXPERIMENTS.md), so the high-contention points are left to
    # full-scale runs of fig7_distributed_ratio_ycsb().
    result = benchmark.pedantic(
        lambda: fig7_distributed_ratio_ycsb(
            ratios=(0.2, 1.0), contentions=("low", "medium"),
            duration_ms=BENCH_DURATION_MS, terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    for contention in ("low", "medium"):
        geotp = dict((r, t) for r, t, _l in result[contention]["geotp"])
        ssp = dict((r, t) for r, t, _l in result[contention]["ssp"])
        # GeoTP outperforms SSP at every distributed ratio; under the most
        # extreme contention both systems can collapse to near zero in a short
        # window, so the comparison is non-strict there.
        for ratio in (0.2, 1.0):
            if contention == "high":
                assert geotp[ratio] >= ssp[ratio]
            else:
                assert geotp[ratio] > ssp[ratio]
        # Throughput decreases as more transactions become distributed.
        assert geotp[1.0] <= geotp[0.2] * 1.2
