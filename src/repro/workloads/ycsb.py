"""The YCSB transactional workload (§VII-A2).

Each transaction has a configurable number of operations (5 by default), each a
read or an update with 50/50 probability, over a single ``usertable`` whose
keys are striped across the data nodes.  Contention is controlled by the
Zipfian *skew factor* (0.3 = low, 0.9 = medium, 1.5 = high, as in the paper),
and the ratio of distributed transactions is controlled by generating keys that
live on one node (centralized) or on several nodes (distributed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import Operation, OpType
from repro.middleware.router import ModuloPartitioner
from repro.middleware.statements import TransactionSpec
from repro.plugins import WorkloadPlugin, register_workload
from repro.sim.rng import ZipfianGenerator
from repro.workloads.base import Workload, WorkloadConfig

#: The paper's skew factors for low / medium / high contention.
CONTENTION_SKEW = {"low": 0.3, "medium": 0.9, "high": 1.5}

TABLE = "usertable"


@dataclass
class YCSBConfig(WorkloadConfig):
    """Configuration of the YCSB generator."""

    #: Records stored per data node.  The paper loads 1 M rows per node; the
    #: simulation defaults to a smaller key space (contention behaviour is
    #: governed by the skew, not the absolute table size).
    records_per_node: int = 100_000
    #: Rows actually materialised per node at load time.  Only the hottest keys
    #: matter for contention; cold keys are created lazily on first write and
    #: read as missing before that, which keeps memory bounded without changing
    #: locking behaviour (locks are taken on keys, not on stored rows).
    preload_rows_per_node: int = 5_000
    #: Zipfian skew factor (theta).
    skew: float = 0.9
    #: Operations per transaction (the paper's "transaction length").
    operations_per_transaction: int = 5
    #: Probability that an operation is a read (the rest are updates).
    read_ratio: float = 0.5
    #: Number of data nodes a distributed transaction touches.
    nodes_per_distributed_txn: int = 2
    #: Payload stored in each record.
    value_size_bytes: int = 100
    #: When set, every transaction is homed on this node index: centralized
    #: transactions touch only it and distributed transactions always include
    #: it.  Used by the Figure 1b motivation experiment ("80 % centralized
    #: transactions accessing DS1, 20 % distributed accessing DS1 and DS2").
    home_node: Optional[int] = None


class YCSBWorkload(Workload):
    """Generator of YCSB transaction specs."""

    name = "ycsb"

    def __init__(self, datasource_names, config: YCSBConfig):
        super().__init__(datasource_names, config)
        self.config: YCSBConfig = config
        if config.records_per_node < 1:
            raise ValueError("records_per_node must be positive")
        if not 0 <= config.distributed_ratio <= 1:
            raise ValueError("distributed_ratio must be in [0, 1]")
        if config.nodes_per_distributed_txn < 2:
            raise ValueError("a distributed transaction needs at least 2 nodes")
        self._zipf = ZipfianGenerator(config.records_per_node, config.skew,
                                      rng=self.rng.spawn(9999))
        self._partitioner = ModuloPartitioner(self.datasource_names)

    # --------------------------------------------------------------- interface
    def make_partitioner(self) -> ModuloPartitioner:
        return self._partitioner

    def initial_data(self) -> Dict[str, Dict[str, Dict]]:
        payload = "x" * self.config.value_size_bytes
        preload = min(self.config.records_per_node, self.config.preload_rows_per_node)
        data: Dict[str, Dict[str, Dict]] = {}
        # Every preloaded row starts from the same synthetic value, and writes
        # replace record values wholesale (nothing mutates them in place), so
        # all rows can share a single dict instead of allocating one per key.
        row = {"field0": payload}
        for node_index, name in enumerate(self.datasource_names):
            key_for_node = self._partitioner.key_for_node
            data[name] = {TABLE: {key_for_node(node_index, sequence): row
                                  for sequence in range(preload)}}
        return data

    def next_transaction(self, terminal_id: int = 0) -> TransactionSpec:
        node_count = len(self.datasource_names)
        if self.config.home_node is not None:
            home = self.config.home_node % node_count
        else:
            home = self.rng.randint(0, node_count - 1)
        is_distributed = (node_count > 1
                          and self.rng.bernoulli(self.config.distributed_ratio))
        if is_distributed:
            target_count = min(self.config.nodes_per_distributed_txn, node_count)
            others = [i for i in range(node_count) if i != home]
            targets = [home] + self.rng.sample(others, target_count - 1)
        else:
            targets = [home]

        operations = self._generate_operations(targets)
        spec = TransactionSpec.from_operations(
            operations, txn_type=self.name, rounds=self.config.rounds,
            metadata={"distributed": is_distributed, "home_node": home})
        return spec

    # ----------------------------------------------------------------- helpers
    def _generate_operations(self, target_nodes: List[int]) -> List[Operation]:
        count = self.config.operations_per_transaction
        operations: List[Operation] = []
        used_keys = set()
        for index in range(count):
            # Spread operations over the target nodes round-robin so that every
            # chosen node is actually touched (which is what makes the
            # transaction distributed).
            node = target_nodes[index % len(target_nodes)]
            key = self._draw_key(node, used_keys)
            used_keys.add(key)
            if self.rng.bernoulli(self.config.read_ratio):
                operations.append(Operation(op_type=OpType.READ, table=TABLE, key=key))
            else:
                operations.append(Operation(op_type=OpType.UPDATE, table=TABLE,
                                            key=key, value={"field0": "updated"}))
        return operations

    def _draw_key(self, node_index: int, used_keys) -> int:
        for _attempt in range(20):
            local = self._zipf.next()
            key = self._partitioner.key_for_node(node_index, local)
            if key not in used_keys:
                return key
        return self._partitioner.key_for_node(node_index, self._zipf.next())


# ------------------------------------------------------------------- plugin
register_workload(WorkloadPlugin(
    name="ycsb",
    description="YCSB key-value transactions with Zipfian contention and a "
                "distributed-ratio knob (\u00a7VII-A2)",
    factory=YCSBWorkload,
    config_factory=YCSBConfig,
    config_field="ycsb",
))
