"""The baseline XA two-phase-commit coordinator (the paper's "SSP").

The flow per transaction is the classic one described in §II of the paper:

1. *analysis* — parse/route the statements;
2. *execution* — for each client interaction round, dispatch the per-data-source
   statement batches and wait for all results (one WAN round trip per round);
3. *prepare* — on the client's commit, send ``XA PREPARE`` to every participant
   and collect votes (a second WAN round trip);
4. *commit* — flush the decision log, then send the final decision (a third WAN
   round trip).  Centralized (single-participant) transactions skip the prepare
   and commit with a single one-phase round trip.

GeoTP and the other baselines subclass this coordinator and override the
scheduling / admission / commit hooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common import AbortReason, SubtxnResult, TxnOutcome, Vote
from repro import protocol
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.middleware import MiddlewareBase
from repro.middleware.rewriter import SubtransactionPlan
from repro.middleware.statements import Statement
from repro.storage.wal import LogRecordType


class TwoPhaseCommitCoordinator(MiddlewareBase):
    """Standard middleware XA coordination (ShardingSphere behaviour)."""

    system_name = "SSP"

    # ------------------------------------------------------------------ hooks
    def admit(self, ctx: TransactionContext):
        """Admission control hook (GeoTP's late transaction scheduling).

        Generator returning ``(admitted, abort_reason)``; the base admits all.
        """
        return (True, None)
        yield  # pragma: no cover

    def schedule_round(self, ctx: TransactionContext,
                       plans: Dict[str, SubtransactionPlan],
                       is_final_round: bool) -> Dict[str, float]:
        """Per-participant dispatch postponement in ms (GeoTP's O2/O3); base: none."""
        return {name: 0.0 for name in plans}

    def execute_payload(self, ctx: TransactionContext, plan: SubtransactionPlan,
                        is_final_round: bool) -> Dict:
        """Payload of the execute request sent to a participant."""
        return {
            "xid": ctx.branch_xid(plan.datasource),
            "global_txn_id": ctx.txn_id,
            "operations": plan.operations,
            "auto_start": True,
        }

    def on_round_complete(self, ctx: TransactionContext,
                          results: List[SubtxnResult]) -> None:
        """Called after every successful round (GeoTP feeds its hotspot stats here)."""

    # ------------------------------------------------------------ transaction
    def _run_transaction(self, ctx: TransactionContext):
        yield self.config.analysis_cost_ms
        self.stats.work_units += ctx.spec.statement_count

        admitted, admit_reason = yield from self.admit(ctx)
        if not admitted:
            return TxnOutcome.ABORTED, admit_reason or AbortReason.ADMISSION_BLOCKED

        ctx.enter_phase(TransactionPhase.EXECUTION, self.env.now)
        final_index = ctx.spec.round_count - 1
        for round_index, statements in enumerate(ctx.spec.rounds):
            ok, reason = yield from self._execute_round(
                ctx, statements, is_final_round=(round_index == final_index))
            if not ok:
                yield from self._abort_all(ctx)
                return TxnOutcome.ABORTED, reason

        outcome, reason = yield from self._commit(ctx)
        return outcome, reason

    # --------------------------------------------------------------- execution
    def _execute_round(self, ctx: TransactionContext, statements: List[Statement],
                       is_final_round: bool):
        """Dispatch one interaction round; returns (ok, abort_reason)."""
        plans = self.rewriter.plan_round(statements)
        delays = self.schedule_round(ctx, plans, is_final_round)
        subtxn_processes = []
        for name, plan in plans.items():
            ctx.branch_xid(name)  # register the participant in first-touch order
            subtxn_processes.append(self.env.process(
                self._execute_subtransaction(ctx, plan, delays.get(name, 0.0),
                                             is_final_round),
                name=f"{ctx.txn_id}:exec:{name}"))
        condition = yield self.env.all_of(subtxn_processes)
        results: List[SubtxnResult] = [condition[p] for p in subtxn_processes]

        failures = [r for r in results if not r.success]
        for result in results:
            ctx.results[result.datasource] = result
            ctx.merge_record_latencies(result)
        if failures:
            return False, failures[0].abort_reason or AbortReason.FAILURE
        self.on_round_complete(ctx, results)
        return True, None

    def _execute_subtransaction(self, ctx: TransactionContext, plan: SubtransactionPlan,
                                delay_ms: float, is_final_round: bool):
        """Send one statement batch to one participant and await its result."""
        if delay_ms > 0:
            yield delay_ms
        handle = self.participants[plan.datasource]
        pool = self.pools.pool(plan.datasource)
        connection = pool.acquire()
        yield connection
        try:
            yield self.config.request_overhead_ms
            payload = self.execute_payload(ctx, plan, is_final_round)
            result = yield self.request_participant(handle, protocol.MSG_EXECUTE, payload)
        finally:
            pool.release(connection)
        return result

    # ------------------------------------------------------------------ commit
    def _commit(self, ctx: TransactionContext):
        """Prepare and commit phases; returns (outcome, abort_reason)."""
        ctx.enter_phase(TransactionPhase.PREPARE, self.env.now)
        if not ctx.is_distributed:
            return (yield from self._commit_centralized(ctx))
        return (yield from self._commit_distributed(ctx))

    def _commit_centralized(self, ctx: TransactionContext):
        """Single-participant transactions: one-phase commit, one WAN round trip."""
        name = ctx.participants[0]
        handle = self.participants[name]
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        reply = yield self.timed_request_participant(
            handle, protocol.MSG_COMMIT_ONE_PHASE, {"xid": ctx.branch_xid(name)})
        if isinstance(reply, dict) and reply.get("status") == "ok":
            return TxnOutcome.COMMITTED, None
        return TxnOutcome.ABORTED, AbortReason.FAILURE

    def _commit_distributed(self, ctx: TransactionContext):
        """Classic 2PC: prepare round trip, log flush, commit round trip."""
        vote_events = {}
        for name in ctx.participants:
            handle = self.participants[name]
            vote_events[name] = self.timed_request_participant(
                handle, protocol.MSG_XA_PREPARE, {"xid": ctx.branch_xid(name)})
        condition = yield self.env.all_of(list(vote_events.values()))
        for name, event in vote_events.items():
            reply = condition[event]
            vote = reply.get("vote", Vote.NO) if isinstance(reply, dict) else Vote.NO
            ctx.record_vote(name, vote)

        yield from self._flush_decision_log(ctx, commit=ctx.all_yes())

        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        if ctx.all_yes():
            yield from self._dispatch_decision(ctx, protocol.MSG_XA_COMMIT)
            return TxnOutcome.COMMITTED, None
        yield from self._dispatch_decision(ctx, protocol.MSG_XA_ROLLBACK)
        return TxnOutcome.ABORTED, AbortReason.PREPARE_FAILED

    def _flush_decision_log(self, ctx: TransactionContext, commit: bool):
        """Persist the global commit/abort decision before dispatching it."""
        yield self.config.log_flush_cost_ms
        record_type = LogRecordType.COMMIT if commit else LogRecordType.ABORT
        self.wal.append(record_type, ctx.txn_id, self.env.now,
                        payload={"participants": list(ctx.participants)})

    def _dispatch_decision(self, ctx: TransactionContext, verb: str):
        """Send the final decision to every participant and wait for the acks."""
        acks = []
        for name in ctx.participants:
            handle = self.participants[name]
            acks.append(self.timed_request_participant(
                handle, verb, {"xid": ctx.branch_xid(name)}))
        yield self.env.all_of(acks)

    # ------------------------------------------------------------------- abort
    def _abort_all(self, ctx: TransactionContext):
        """Roll back every participant after an execution failure.

        In the baseline the middleware must learn about the failure (half a WAN
        round trip, already paid when the execute reply arrived) and then
        dispatch rollbacks and await the acks (a further full round trip).
        """
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        yield from self._flush_decision_log(ctx, commit=False)
        if ctx.participants:
            yield from self._dispatch_decision(ctx, protocol.MSG_XA_ROLLBACK)
