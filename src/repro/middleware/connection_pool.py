"""Connection pools between the middleware and each data source.

A pool bounds the number of concurrent in-flight requests to one data source,
mirroring the JDBC connection pools ShardingSphere maintains.  The default
capacity is generous (the paper never saturates connections), but the bound is
real: experiments that push hundreds of terminals will queue here, which is one
of the reasons throughput flattens at high terminal counts in Figure 5.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.environment import Environment
from repro.sim.resources import Resource, ResourceRequest


class ConnectionPool:
    """A capacity-bounded pool of connections to a single data source."""

    def __init__(self, env: Environment, datasource: str, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.datasource = datasource
        self.capacity = capacity
        self._resource = Resource(env, capacity=capacity)
        self.total_acquisitions = 0

    def acquire(self) -> ResourceRequest:
        """Request a connection; yield the returned event to wait for it."""
        self.total_acquisitions += 1
        return self._resource.request()

    def release(self, request: ResourceRequest) -> None:
        """Return a connection to the pool."""
        self._resource.release(request)

    @property
    def in_use(self) -> int:
        """Connections currently checked out."""
        return self._resource.count

    @property
    def waiting(self) -> int:
        """Requests queued for a connection."""
        return self._resource.queue_length


class ConnectionPoolSet:
    """The middleware's pools, one per data source."""

    def __init__(self, env: Environment, capacity: int = 128):
        self.env = env
        self.capacity = capacity
        self._pools: Dict[str, ConnectionPool] = {}

    def pool(self, datasource: str) -> ConnectionPool:
        """The pool for ``datasource``, created lazily."""
        if datasource not in self._pools:
            self._pools[datasource] = ConnectionPool(
                self.env, datasource, capacity=self.capacity)
        return self._pools[datasource]

    def pools(self) -> Dict[str, ConnectionPool]:
        """All pools created so far."""
        return dict(self._pools)
