"""Quickstart: compare GeoTP against the SSP baseline on YCSB.

Runs two short simulated experiments on the paper's default four-region
topology (Beijing / Shanghai / Singapore / London) and prints throughput,
latency and abort rate side by side.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, YCSBConfig, run_experiment
from repro.bench.report import print_table


def main() -> None:
    ycsb = YCSBConfig(skew=0.9, distributed_ratio=0.2)
    rows = []
    for system in ("ssp", "geotp"):
        config = ExperimentConfig(
            system=system,
            workload="ycsb",
            ycsb=ycsb,
            terminals=32,
            duration_ms=15_000,
            warmup_ms=3_000,
        )
        result = run_experiment(config)
        rows.append((system,
                     round(result.throughput_tps, 1),
                     round(result.average_latency_ms, 1),
                     round(result.p99_latency_ms, 1),
                     round(result.abort_rate * 100, 1)))

    print_table("GeoTP vs SSP — YCSB, medium contention, 20% distributed",
                ["system", "throughput (txn/s)", "avg latency (ms)",
                 "p99 latency (ms)", "abort rate (%)"], rows)

    ssp_tput, geotp_tput = rows[0][1], rows[1][1]
    if ssp_tput > 0:
        print(f"\nGeoTP / SSP throughput ratio: {geotp_tput / ssp_tput:.2f}x")


if __name__ == "__main__":
    main()
