"""Recovery and atomicity tests (§V of the paper).

These tests drive transactions part-way, crash the middleware or a data
source, run the recovery manager and then assert the atomic-commitment
properties: every branch of a transaction ends in the same state, decisions
are never reversed, and transactions without a logged decision are aborted.
"""

import pytest

from repro import protocol
from repro.common import Operation, OpType, TxnOutcome
from repro.middleware import (
    MiddlewareConfig,
    ModuloPartitioner,
    ParticipantHandle,
    TransactionSpec,
    TwoPhaseCommitCoordinator,
)
from repro.recovery import FailureInjector, RecoveryManager
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect, TxnState
from repro.storage.wal import LogRecordType


def build_cluster(rtts=(10.0, 100.0)):
    env = Environment()
    net = Network(env)
    names = [f"ds{i}" for i in range(len(rtts))]
    datasources, participants = {}, {}
    for name, rtt in zip(names, rtts):
        ds = DataSource(env, net, DataSourceConfig(name=name, dialect=MySQLDialect()))
        ds.load_table("usertable", {key: {"v": 0} for key in range(50)})
        datasources[name] = ds
        participants[name] = ParticipantHandle(name=name, endpoint=name)
        net.set_link("dm", name, ConstantLatency(rtt))
    dm = TwoPhaseCommitCoordinator(env, net, MiddlewareConfig(name="dm"),
                                   participants, ModuloPartitioner(names))
    injector = FailureInjector(env, net)
    return env, net, dm, datasources, injector


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def prepare_branch_by_hand(env, net, ds_name, xid, key):
    """Drive a branch to PREPARED directly (simulating a DM that died mid-commit)."""
    client = net.interface("manual-client")
    done = {}

    def driver():
        yield client.request(ds_name, protocol.MSG_XA_START, {"xid": xid})
        yield client.request(ds_name, protocol.MSG_EXECUTE,
                             {"xid": xid, "operations": [update(key, 99)]})
        yield client.request(ds_name, protocol.MSG_XA_PREPARE, {"xid": xid})
        done["ok"] = True

    env.process(driver())
    env.run(until=env.peek() + 10_000)
    assert done.get("ok")


def test_middleware_recovery_commits_logged_transactions():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    # Both branches prepared, and the middleware logged a COMMIT decision
    # before crashing: recovery must commit both branches.
    prepare_branch_by_hand(env, net, "ds0", "dm-t77.1", 0)
    prepare_branch_by_hand(env, net, "ds1", "dm-t77.2", 1)
    dm.wal.append(LogRecordType.COMMIT, "dm-t77", env.now)

    injector.crash_middleware(dm)
    injector.restart_middleware(dm)

    manager = RecoveryManager(dm)
    report_holder = {}

    def recover():
        report = yield from manager.recover_after_middleware_crash()
        report_holder["report"] = report

    env.process(recover())
    env.run()

    report = report_holder["report"]
    assert len(report.committed) == 2
    assert datasources["ds0"].transactions["dm-t77.1"].state is TxnState.COMMITTED
    assert datasources["ds1"].transactions["dm-t77.2"].state is TxnState.COMMITTED
    assert datasources["ds0"].engine.read("p", "usertable", 0).value == {"v": 99}


def test_middleware_recovery_aborts_undecided_transactions():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    # Branches prepared but no decision logged: the transaction never entered
    # the commit phase, so recovery must abort it (AC3/AC4).
    prepare_branch_by_hand(env, net, "ds0", "dm-t88.1", 2)
    prepare_branch_by_hand(env, net, "ds1", "dm-t88.2", 3)

    injector.crash_middleware(dm)
    injector.restart_middleware(dm)

    manager = RecoveryManager(dm)
    holder = {}

    def recover():
        holder["report"] = yield from manager.recover_after_middleware_crash()

    env.process(recover())
    env.run()

    assert len(holder["report"].rolled_back) == 2
    assert datasources["ds0"].transactions["dm-t88.1"].state is TxnState.ABORTED
    assert datasources["ds1"].transactions["dm-t88.2"].state is TxnState.ABORTED
    # The prepared-but-aborted write never became visible.
    assert datasources["ds0"].engine.read("p", "usertable", 2).value == {"v": 0}


def test_all_branches_reach_the_same_outcome_after_recovery():
    """AC1: no transaction ends with one branch committed and another aborted."""
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))

    prepare_branch_by_hand(env, net, "ds0", "dm-t90.1", 4)
    prepare_branch_by_hand(env, net, "ds1", "dm-t90.2", 5)
    dm.wal.append(LogRecordType.ABORT, "dm-t90", env.now)

    manager = RecoveryManager(dm)

    def recover():
        yield from manager.recover_after_middleware_crash()

    env.process(recover())
    env.run()

    states = {datasources["ds0"].transactions["dm-t90.1"].state,
              datasources["ds1"].transactions["dm-t90.2"].state}
    assert len(states) == 1
    assert states.pop() is TxnState.ABORTED


def test_datasource_crash_loses_unprepared_work_and_siblings_roll_back():
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    net.set_link("manual-client", "ds1", ConstantLatency(1))
    client = net.interface("manual-client")

    progress = {}

    def driver():
        # Branch on ds1 prepared; branch on ds0 only executed (not prepared).
        yield client.request("ds1", protocol.MSG_XA_START, {"xid": "dm-t91.2"})
        yield client.request("ds1", protocol.MSG_EXECUTE,
                             {"xid": "dm-t91.2", "operations": [update(7, 50)]})
        yield client.request("ds1", protocol.MSG_XA_PREPARE, {"xid": "dm-t91.2"})
        yield client.request("ds0", protocol.MSG_XA_START, {"xid": "dm-t91.1"})
        yield client.request("ds0", protocol.MSG_EXECUTE,
                             {"xid": "dm-t91.1", "operations": [update(6, 50)]})
        progress["staged"] = True
        # Crash and restart ds0: its unprepared branch disappears.
        yield from injector.crash_datasource(datasources["ds0"])
        yield from injector.restart_datasource(datasources["ds0"])
        manager = RecoveryManager(dm)
        report = yield from manager.recover_after_datasource_crash(
            "ds0", {"ds0": ["dm-t91.1"], "ds1": ["dm-t91.2"]})
        progress["report"] = report

    env.process(driver())
    env.run()

    assert progress.get("staged")
    report = progress["report"]
    # ds0's branch had not prepared: it is rolled back together with its sibling.
    assert any("ds0" in entry for entry in report.rolled_back)
    assert any("ds1" in entry for entry in report.rolled_back)
    assert datasources["ds1"].transactions["dm-t91.2"].state is TxnState.ABORTED
    assert datasources["ds1"].engine.read("p", "usertable", 7).value == {"v": 0}


def test_recovery_is_idempotent():
    """Running recovery twice must not change outcomes (AC2: decisions stick)."""
    env, net, dm, datasources, injector = build_cluster()
    net.set_link("manual-client", "ds0", ConstantLatency(1))
    prepare_branch_by_hand(env, net, "ds0", "dm-t92.1", 8)
    dm.wal.append(LogRecordType.COMMIT, "dm-t92", env.now)

    manager = RecoveryManager(dm)
    reports = []

    def recover_twice():
        first = yield from manager.recover_after_middleware_crash()
        second = yield from manager.recover_after_middleware_crash()
        reports.extend([first, second])

    env.process(recover_twice())
    env.run()

    assert datasources["ds0"].transactions["dm-t92.1"].state is TxnState.COMMITTED
    assert datasources["ds0"].engine.read("p", "usertable", 8).value == {"v": 99}
    # The second pass finds nothing prepared and changes nothing.
    assert reports[1].total_handled == 0


def test_client_facing_outcome_matches_data_source_state():
    """End-to-end: a committed transaction's writes survive; an aborted one's do not."""
    env, net, dm, datasources, injector = build_cluster()
    spec = TransactionSpec.from_operations([update(0, 5), update(1, 5)])
    proc = dm.submit(spec)
    env.run(until=proc)
    result = proc.value
    assert result.outcome is TxnOutcome.COMMITTED
    for name, key in (("ds0", 0), ("ds1", 1)):
        branch = [t for t in datasources[name].transactions.values()
                  if t.global_txn_id == result.txn_id]
        assert branch and branch[0].state is TxnState.COMMITTED
