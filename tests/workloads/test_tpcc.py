"""Unit tests for the TPC-C workload generator."""

import pytest

from repro.workloads import TPCCConfig, TPCCWorkload

NODES = ["ds0", "ds1", "ds2", "ds3"]


def make_workload(**overrides):
    defaults = dict(warehouses_per_node=2, customers_per_district=10, item_count=50)
    defaults.update(overrides)
    return TPCCWorkload(NODES, TPCCConfig(**defaults))


def test_rejects_bad_configuration():
    with pytest.raises(ValueError):
        TPCCWorkload(NODES, TPCCConfig(warehouses_per_node=0))
    with pytest.raises(ValueError):
        TPCCWorkload(NODES, TPCCConfig(mix={"payment": 0.5}))
    with pytest.raises(ValueError):
        TPCCWorkload(NODES, TPCCConfig(mix={"bogus": 1.0}))


def test_total_warehouses_and_partitioning():
    workload = make_workload()
    assert workload.total_warehouses == 8
    partitioner = workload.make_partitioner()
    assert partitioner.node_for_warehouse(1) == "ds0"
    assert partitioner.node_for_warehouse(8) == "ds3"


def test_initial_data_contains_all_nine_relations():
    workload = make_workload()
    data = workload.initial_data()
    expected_tables = {"warehouse", "district", "customer", "stock", "item",
                       "order", "neworder", "orderline", "history"}
    for node in NODES:
        assert expected_tables == set(data[node])
        # Two warehouses per node, ten districts each.
        assert len(data[node]["warehouse"]) == 2
        assert len(data[node]["district"]) == 20
        # The item catalogue is replicated on every node.
        assert len(data[node]["item"]) == 50


def test_initial_data_partition_consistency():
    workload = make_workload()
    partitioner = workload.make_partitioner()
    data = workload.initial_data()
    for node, tables in data.items():
        for key in tables["stock"]:
            assert partitioner.locate("stock", key) == node


def test_transaction_mix_is_respected():
    workload = make_workload(mix={"payment": 1.0})
    for _ in range(20):
        assert workload.next_transaction().txn_type == "payment"


def test_default_mix_generates_all_types():
    workload = make_workload(seed=3)
    seen = {workload.next_transaction().txn_type for _ in range(300)}
    assert {"new_order", "payment", "order_status", "delivery", "stock_level"} <= seen


def test_payment_distributed_ratio_controls_cross_node_access():
    local = make_workload(mix={"payment": 1.0}, distributed_ratio=0.0)
    remote = make_workload(mix={"payment": 1.0}, distributed_ratio=1.0)
    assert not any(local.next_transaction().metadata["distributed"] for _ in range(50))
    distributed = sum(1 for _ in range(50)
                      if remote.next_transaction().metadata["distributed"])
    assert distributed >= 45


def test_new_order_touches_item_stock_and_orderline():
    workload = make_workload(mix={"new_order": 1.0}, distributed_ratio=0.0)
    spec = workload.next_transaction()
    tables = spec.tables()
    assert {"warehouse", "district", "customer", "order", "neworder",
            "item", "stock", "orderline"} <= tables
    assert spec.statement_count >= 5 + 3 * 5  # header + at least 5 order lines


def test_new_order_distributed_uses_remote_node_stock():
    workload = make_workload(mix={"new_order": 1.0}, distributed_ratio=1.0)
    partitioner = workload.make_partitioner()
    spec = workload.next_transaction()
    home = spec.metadata["warehouse"]
    home_node = partitioner.node_for_warehouse(home)
    stock_nodes = {partitioner.locate("stock", stmt.operation.key)
                   for stmt in spec.all_statements if stmt.operation.table == "stock"}
    assert spec.metadata["distributed"]
    assert any(node != home_node for node in stock_nodes)


def test_read_only_transactions_are_centralized_and_read_only():
    workload = make_workload(mix={"order_status": 0.5, "stock_level": 0.5})
    for _ in range(20):
        spec = workload.next_transaction()
        assert not spec.metadata["distributed"]
        assert all(not stmt.operation.is_write for stmt in spec.all_statements)


def test_delivery_covers_requested_districts():
    workload = make_workload(mix={"delivery": 1.0}, delivery_districts=4)
    spec = workload.next_transaction()
    districts = {stmt.operation.key[1] for stmt in spec.all_statements
                 if stmt.operation.table == "neworder"}
    assert len(districts) == 4
