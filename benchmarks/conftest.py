"""Shared scale settings for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures at a reduced
scale (shorter measurement window, fewer terminals, fewer sweep points) so the
whole suite finishes in a few minutes on a laptop.  EXPERIMENTS.md records a
full-scale run produced with the same experiment functions.

The scale itself lives next to the scenario registry
(:data:`repro.bench.scenarios.BENCH_SCALE`) so benches, experiments and the
CLI share one source of truth; this module only re-exports it under the names
the per-figure bench files import.  A high-contention point needs a window
several times longer than the 5 s lock-wait timeout to accumulate a meaningful
number of commits, which is why the bench window is twice the quick default.
"""

from repro.bench.scenarios import BENCH_SCALE

#: Simulated milliseconds per experiment point.
BENCH_DURATION_MS = BENCH_SCALE.duration_ms
#: Client terminals per experiment point.
BENCH_TERMINALS = BENCH_SCALE.terminals
