"""Tests for the perf-regression harness (``python -m repro.bench perf``)."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.perf import (
    COMPARABLE_METADATA,
    PerfMetrics,
    build_document,
    compare_documents,
    compare_to_baseline,
    document_metadata_mismatches,
    format_comparison,
    format_profile,
    load_history,
    measure_scenario,
    peak_rss_bytes,
    profile_scenario,
)
from repro.sim.engine import active_engine

#: Overrides that shrink the smoke scenario to unit-test scale.
TINY = dict(duration_ms=800.0, warmup_ms=100.0, terminals=2)


def test_measure_scenario_reports_sane_metrics():
    metrics = measure_scenario("smoke", repeats=2, **TINY)
    assert metrics.scenario == "smoke"
    assert metrics.points == 2
    assert metrics.repeats == 2
    assert len(metrics.all_wall_clocks_s) == 2
    assert metrics.wall_clock_s == min(metrics.all_wall_clocks_s) > 0
    assert metrics.events_processed > 0
    assert metrics.events_per_sec > 0
    assert metrics.peak_rss_bytes > 0
    doc = metrics.to_dict()
    assert doc["scenario"] == "smoke" and doc["points"] == 2


def test_measure_scenario_rejects_bad_repeats():
    with pytest.raises(ValueError):
        measure_scenario("smoke", repeats=0)


def _metric(scenario, wall):
    return PerfMetrics(scenario=scenario, points=1, repeats=1, wall_clock_s=wall,
                       all_wall_clocks_s=[wall], events_per_sec=1.0,
                       committed_per_sec=1.0, events_processed=1, committed=1,
                       peak_rss_bytes=peak_rss_bytes())


def test_compare_to_baseline_flags_only_regressions_beyond_threshold():
    baseline = {"metrics": [{"scenario": "a", "wall_clock_s": 1.0},
                            {"scenario": "b", "wall_clock_s": 1.0}]}
    current = [_metric("a", 1.2), _metric("b", 1.5), _metric("c", 9.9)]
    comparisons = compare_to_baseline(current, baseline, threshold=0.30)
    by_name = {c.scenario: c for c in comparisons}
    assert not by_name["a"].regression           # 20% slower: within threshold
    assert by_name["b"].regression               # 50% slower: regression
    assert by_name["c"].ratio is None            # not in baseline: ignored
    assert not by_name["c"].regression


def test_build_document_lists_regressions_and_reference():
    baseline = {"metrics": [{"scenario": "a", "wall_clock_s": 1.0}]}
    comparisons = compare_to_baseline([_metric("a", 2.0)], baseline)
    doc = build_document("t", [_metric("a", 2.0)], comparisons,
                         reference={"speedup_vs_pre_pr": {"a": 2.0}})
    assert doc["regressions"] == ["a"]
    assert doc["reference"]["speedup_vs_pre_pr"] == {"a": 2.0}
    json.dumps(doc)  # document must be JSON-serialisable


# --------------------------------------------------------------- CLI coverage
def test_cli_perf_writes_document_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    code = main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--tag", "test", "--baseline", str(tmp_path / "missing.json"),
                 "--history", str(tmp_path / "hist.jsonl"),
                 "--output", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["tag"] == "test"
    assert doc["metrics"][0]["scenario"] == "smoke"
    assert "baseline_comparison" not in doc  # no baseline file present


def test_cli_perf_fails_on_regression_vs_baseline(tmp_path, capsys):
    baseline = tmp_path / "BENCH_baseline.json"
    baseline.write_text(json.dumps({
        "metrics": [{"scenario": "smoke", "wall_clock_s": 1e-9}]}))
    code = main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--baseline", str(baseline)])
    assert code == 1
    assert "PERF REGRESSION" in capsys.readouterr().err


def test_cli_perf_update_baseline_round_trips(tmp_path, capsys):
    baseline = tmp_path / "BENCH_baseline.json"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--update-baseline", "--baseline", str(baseline)]) == 0
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--baseline", str(baseline)]) in (0, 1)
    doc = json.loads(baseline.read_text())
    assert doc["metrics"][0]["scenario"] == "smoke"


def test_cli_perf_unknown_scenario_fails_cleanly(capsys):
    assert main(["perf", "--scenarios", "no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_perf_missing_baseline_warns_and_require_flag_fails(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--baseline", missing, "--output",
                 str(tmp_path / "o.json")]) == 0
    assert "cannot load baseline" in capsys.readouterr().err
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--baseline", missing, "--require-baseline",
                 "--output", str(tmp_path / "o2.json")]) == 1
    err = capsys.readouterr().err
    assert "--require-baseline" in err
    doc = json.loads((tmp_path / "o2.json").read_text())
    assert "cannot load baseline" in doc["baseline_error"]

# ------------------------------------------------------- history & comparison
def test_cli_perf_appends_history_line(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    out = tmp_path / "BENCH_test.json"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--tag", "t1", "--baseline", str(tmp_path / "missing.json"),
                 "--history", str(history), "--output", str(out)]) == 0
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--tag", "t2", "--baseline", str(tmp_path / "missing.json"),
                 "--history", str(history), "--output", str(out)]) == 0
    entries = load_history(str(history))
    assert [e["tag"] for e in entries] == ["t1", "t2"]
    assert entries[0]["metrics"]["smoke"]["wall_clock_s"] > 0
    assert entries[0]["metrics"]["smoke"]["events_per_sec"] > 0
    assert "timestamp" in entries[0]


def test_cli_perf_no_history_skips_the_log(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--no-history", "--history", str(history),
                 "--baseline", str(tmp_path / "missing.json"),
                 "--output", str(tmp_path / "o.json")]) == 0
    assert not history.exists()
    assert load_history(str(history)) == []


def _bench_doc(tag, walls):
    return {"tag": tag,
            "metrics": [{"scenario": name, "wall_clock_s": wall,
                         "events_per_sec": events, "committed_per_sec": 1.0}
                        for name, (wall, events) in walls.items()]}


def test_compare_documents_reports_speedup_and_event_rate_delta():
    doc_a = _bench_doc("old", {"smoke": (2.0, 100.0), "only_a": (1.0, 50.0)})
    doc_b = _bench_doc("new", {"smoke": (1.0, 150.0), "only_b": (3.0, 60.0)})
    rows = {row["scenario"]: row for row in compare_documents(doc_a, doc_b)}
    assert rows["smoke"]["speedup"] == 2.0
    assert rows["smoke"]["events_per_sec_delta"] == 0.5
    assert rows["only_a"]["speedup"] is None
    assert rows["only_b"]["wall_clock_a_s"] is None
    table = format_comparison(list(rows.values()))
    assert "smoke" in table and "2.00x" in table


def test_cli_perf_compare_prints_table(tmp_path, capsys):
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    path_a.write_text(json.dumps(_bench_doc("old", {"smoke": (2.0, 100.0)})))
    path_b.write_text(json.dumps(_bench_doc("new", {"smoke": (1.0, 150.0)})))
    assert main(["perf", "--compare", str(path_a), str(path_b)]) == 0
    captured = capsys.readouterr()
    assert "2.00x" in captured.out
    assert "B is faster" in captured.err


def test_cli_perf_compare_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["perf", "--compare", str(tmp_path / "a.json"),
                 str(tmp_path / "b.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_perf_bad_history_path_warns_but_keeps_the_run(tmp_path, capsys):
    out = tmp_path / "o.json"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--baseline", str(tmp_path / "missing.json"),
                 "--history", str(tmp_path / "no_such_dir" / "h.jsonl"),
                 "--output", str(out)]) == 0
    assert "cannot append history" in capsys.readouterr().err
    assert json.loads(out.read_text())["metrics"][0]["scenario"] == "smoke"


def test_cli_perf_compare_rejects_measurement_flags(tmp_path, capsys):
    path = tmp_path / "a.json"
    path.write_text(json.dumps(_bench_doc("x", {"smoke": (1.0, 1.0)})))
    assert main(["perf", "--compare", str(path), str(path),
                 "--output", str(tmp_path / "o.json")]) == 2
    assert "--compare cannot be combined" in capsys.readouterr().err
    assert not (tmp_path / "o.json").exists()


# ------------------------------------------------------ engine-aware documents
def test_build_document_records_the_engine():
    doc = build_document("t", [_metric("a", 1.0)], [])
    assert doc["engine"] == active_engine()


def test_history_entries_record_the_engine(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--tag", "t", "--baseline", str(tmp_path / "missing.json"),
                 "--history", str(history),
                 "--output", str(tmp_path / "o.json")]) == 0
    entries = load_history(str(history))
    assert entries[0]["engine"] == active_engine()


def test_document_metadata_mismatches_reports_diffs_and_missing():
    doc_a = {"python": "3.11.0", "platform": "x", "engine": "pure"}
    doc_b = {"python": "3.12.1", "platform": "x"}
    warnings = document_metadata_mismatches(doc_a, doc_b)
    text = "\n".join(warnings)
    assert "python" in text and "3.11.0" in text and "3.12.1" in text
    assert "engine" in text and "<missing>" in text
    assert "platform" not in text
    assert document_metadata_mismatches(doc_a, dict(doc_a)) == []
    assert set(COMPARABLE_METADATA) == {"python", "platform", "engine"}


def test_cli_perf_compare_warns_on_metadata_mismatch(tmp_path, capsys):
    doc_a = _bench_doc("old", {"smoke": (2.0, 100.0)})
    doc_a.update(python="3.11.0", platform="x", engine="pure")
    doc_b = _bench_doc("new", {"smoke": (1.0, 150.0)})
    doc_b.update(python="3.11.0", platform="x", engine="compiled")
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    path_a.write_text(json.dumps(doc_a))
    path_b.write_text(json.dumps(doc_b))
    assert main(["perf", "--compare", str(path_a), str(path_b)]) == 0
    err = capsys.readouterr().err
    assert "engine" in err and "pure" in err and "compiled" in err


# ------------------------------------------------------------------ profiling
def test_profile_scenario_reports_hot_functions():
    profile = profile_scenario("smoke", top_n=10, **TINY)
    assert profile["scenario"] == "smoke"
    assert profile["engine"] == active_engine()
    assert profile["sort"] == "cumulative"
    assert profile["wall_clock_s"] > 0
    assert 0 < len(profile["rows"]) <= 10
    top = profile["rows"][0]
    assert set(top) == {"function", "ncalls", "primitive_calls",
                        "tottime_s", "cumtime_s"}
    # Rows are sorted by cumulative time, and on the pure engine the kernel's
    # run loop must appear near the top; the compiled kernel hides its frames
    # from the profiler (native code), which is fine — rows just shift to the
    # interpreted callers.
    cumtimes = [row["cumtime_s"] for row in profile["rows"]]
    assert cumtimes == sorted(cumtimes, reverse=True)
    if active_engine() == "pure":
        assert any("_kernel" in row["function"] for row in profile["rows"])
    json.dumps(profile)  # profile must be JSON-serialisable
    table = format_profile(profile)
    assert "cumtime" in table and "smoke" in table


def test_cli_perf_profile_writes_table_next_to_document(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    assert main(["perf", "--scenarios", "smoke", "--repeats", "1",
                 "--profile", "--profile-top", "5",
                 "--baseline", str(tmp_path / "missing.json"),
                 "--no-history", "--output", str(out)]) == 0
    doc = json.loads(out.read_text())
    profiles = {p["scenario"]: p for p in doc["profiles"]}
    assert "smoke" in profiles
    assert len(profiles["smoke"]["rows"]) <= 5
    table_path = tmp_path / "BENCH_test.profile.txt"
    assert table_path.exists()
    assert "cumtime" in table_path.read_text()


def test_cli_perf_profile_conflicts_with_compare(tmp_path, capsys):
    path = tmp_path / "a.json"
    path.write_text(json.dumps(_bench_doc("x", {"smoke": (1.0, 1.0)})))
    assert main(["perf", "--compare", str(path), str(path),
                 "--profile"]) == 2
    assert "--compare cannot be combined" in capsys.readouterr().err
