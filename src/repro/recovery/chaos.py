"""Generated chaos-matrix scenarios: faults x latency x arrivals x workloads.

PR 5 made failures declarative (:class:`~repro.recovery.failures.FaultPlan`)
and the fig11b work made link latency a schedule
(:class:`~repro.sim.latency.DynamicLatency`), but every combination still had
to be wired by hand.  This module is the combinator: a
:class:`ChaosMatrix` crosses

* **fault modes** — all five ``FaultKind``\\ s plus two composed multi-fault
  plans (``dual``: a region outage inside a longer cross-target partition
  window, exercising parked-delivery re-interception; ``cascade``: a latency
  spike followed by a datasource crash in sequential windows),
* **latency profiles** — static paper topology, a slow 4-phase drift and a
  12-phase churn of ``DynamicLatency`` schedules,
* **arrival shapes** — the closed terminal loop plus the three open-system
  processes (Poisson / MMPP / diurnal) at a below-knee rate, and
* **workload mixes** — YCSB, TPC-C and the contrib e-commerce sessions,

into generated ``chaos_*`` :class:`~repro.bench.scenarios.ScenarioSpec`
families (each with a two-system axis), registered under the ``"chaos"``
scenario *family* so the registry tables stay readable.  Every generated
point flows through the ordinary sweep/CLI machinery and is judged post-run
by :mod:`repro.recovery.invariants`.

Budget control is two-level and deterministic:

* **pruning at generation** — ``ChaosMatrix(max_scenarios=N, seed=...)``
  keeps a seeded, order-preserving sample of the cross-product;
* **sampling at run time** — :func:`sample_chaos_scenarios` picks a seeded
  subset of the registered names for smoke runs (the CI ``chaos-smoke`` job
  and ``python -m repro.bench chaos``), executed at reduced scale through
  ``SweepRunner --workers``.

The module also registers the two graceful-degradation families from ROADMAP
item 1's follow-on: ``admission_knee`` (admission on/off at and past each
admission-capable system's measured knee) and ``chaos_saturated`` (crashes
injected into open-system runs offered exactly the knee rate).

Import discipline: :func:`register_chaos_scenarios` is called *by*
``repro.bench.scenarios`` near the end of its own import, so everything here
imports the bench registry lazily (inside functions) — by then the needed
names exist.  Module-level imports stay outside ``repro.bench``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.plugins import get_system_plugin
from repro.recovery.failures import FaultEvent, FaultKind, FaultPlan
from repro.sim.latency import DynamicLatency
from repro.sim.rng import SeededRNG
from repro.workloads.arrivals import ArrivalConfig

__all__ = [
    "CHAOS_FAULTS",
    "CHAOS_LATENCY_PROFILES",
    "CHAOS_SHAPES",
    "CHAOS_WORKLOADS",
    "CHAOS_SYSTEMS",
    "KNEE_TPS",
    "ChaosMatrix",
    "build_chaos_fault_plan",
    "register_chaos_scenarios",
    "sample_chaos_scenarios",
    "chaos_scenario_names",
]

# ----------------------------------------------------------------- axis values
#: Fault-mode axis: the five single-event kinds plus two composed plans.
CHAOS_FAULTS: Tuple[str, ...] = (
    "mw_crash", "ds_crash", "outage", "partition", "lat_spike",
    "dual", "cascade",
)

#: Latency-profile axis: ``flat`` keeps the paper topology; ``drift`` and
#: ``churn`` replace it with seeded piecewise-constant schedules (4 and 12
#: phases over the run).
CHAOS_LATENCY_PROFILES: Tuple[str, ...] = ("flat", "drift", "churn")
_LATENCY_PHASES = {"drift": 4, "churn": 12}
#: RTT range the drift/churn schedules draw from (ms) — brackets the paper
#: topology's 10-120ms spread without dwarfing the fault windows.
_LATENCY_RTT_RANGE = (15.0, 160.0)

#: Arrival-shape axis: the closed terminal loop plus the open-system
#: processes at a fixed below-knee offered rate.
CHAOS_SHAPES: Tuple[str, ...] = ("closed", "poisson", "mmpp", "diurnal")
#: Offered rate of the open shapes — below every system's knee (see
#: ``KNEE_TPS``) so chaos points measure fault response, not saturation.
CHAOS_RATE_TPS = 40.0
CHAOS_MAX_CLIENTS = 96

#: Workload-mix axis.  ``ecommerce`` comes from the contrib plugin registry
#: (:mod:`repro.contrib.ecommerce`) — zero core wiring.
CHAOS_WORKLOADS: Tuple[str, ...] = ("ycsb", "tpcc", "ecommerce")

#: System axis of every generated scenario: the plain 2PC baseline against
#: GeoTP (both run the identical §V-A recovery protocol).
CHAOS_SYSTEMS: Tuple[str, ...] = ("ssp", "geotp")

#: Measured saturation knees under the graceful-degradation base (20 s
#: Poisson runs, medium-skew YCSB, 384-slot pool): the offered rate past
#: which goodput stops tracking offered load and starts falling (see
#: EXPERIMENTS.md "Chaos matrix").  The graceful-degradation families park
#: themselves exactly here.
KNEE_TPS: Dict[str, float] = {"ssp": 50.0, "scalardb_plus": 120.0,
                              "geotp": 60.0}

#: Name of the scenario family all generated chaos points register under.
CHAOS_FAMILY = "chaos"


# ------------------------------------------------------------ fault-plan forms
def build_chaos_fault_plan(fault: str, duration_ms: float) -> FaultPlan:
    """The :class:`FaultPlan` for one fault-mode axis value.

    Windows are fractions of ``duration_ms`` (the same 40%/15% anchors as the
    hand-written fault family), so CLI duration overrides keep the fault
    inside the measured window at any scale.
    """
    at_ms = 0.4 * duration_ms
    dur_ms = 0.15 * duration_ms
    if fault == "mw_crash":
        events = (FaultEvent(kind=FaultKind.MIDDLEWARE_CRASH, at_ms=at_ms,
                             duration_ms=dur_ms),)
    elif fault == "ds_crash":
        events = (FaultEvent(kind=FaultKind.DATASOURCE_CRASH, at_ms=at_ms,
                             duration_ms=dur_ms, target="ds1"),)
    elif fault == "outage":
        events = (FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=at_ms,
                             duration_ms=dur_ms, target="ds2"),)
    elif fault == "partition":
        events = (FaultEvent(kind=FaultKind.PARTITION, at_ms=at_ms,
                             duration_ms=dur_ms, target="ds1", peer="ds2"),)
    elif fault == "lat_spike":
        events = (FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=at_ms,
                             duration_ms=dur_ms, factor=4.0),)
    elif fault == "dual":
        # Cross-target concurrency: the ds2 outage heals while the ds1<->ds2
        # partition is still up, so deliveries parked by the outage are
        # re-intercepted by the partition on release (the policy documented
        # on FaultPlan._reject_overlaps, asserted by the chaos plan tests).
        events = (
            FaultEvent(kind=FaultKind.REGION_OUTAGE, at_ms=at_ms,
                       duration_ms=dur_ms, target="ds2"),
            FaultEvent(kind=FaultKind.PARTITION, at_ms=at_ms + dur_ms / 3.0,
                       duration_ms=dur_ms, target="ds1", peer="ds2"),
        )
    elif fault == "cascade":
        # Strictly sequential windows: a WAN-wide latency spike, recovery,
        # then a datasource crash — the "bad day" ordering.
        events = (
            FaultEvent(kind=FaultKind.LATENCY_SPIKE, at_ms=0.2 * duration_ms,
                       duration_ms=0.1 * duration_ms, factor=3.0),
            FaultEvent(kind=FaultKind.DATASOURCE_CRASH,
                       at_ms=0.45 * duration_ms,
                       duration_ms=0.12 * duration_ms, target="ds1"),
        )
    else:
        raise ValueError(f"unknown chaos fault mode {fault!r}; "
                         f"known: {', '.join(CHAOS_FAULTS)}")
    return FaultPlan(events=events)


# -------------------------------------------------------------- apply function
# Module-level so expanded sweeps stay picklable across worker processes.
def _apply_chaos(config: Any, params: Dict[str, Any]) -> Any:
    """Materialise one chaos point from its fixed (fault, latency, shape).

    Runs at sweep expansion, so everything derives from the *final*
    ``config.duration_ms`` — smoke-scale overrides shrink the fault windows,
    latency phases and diurnal period with the run.
    """
    duration_ms = config.duration_ms
    config.fault_plan = build_chaos_fault_plan(params["fault"], duration_ms)

    profile = params["latency"]
    if profile != "flat":
        from repro.cluster.topology import TopologyConfig
        phases = _LATENCY_PHASES[profile]
        phase_ms = duration_ms / phases
        rng = SeededRNG(params["chaos_seed"])
        low, high = _LATENCY_RTT_RANGE
        models = []
        for _node in range(4):
            schedule = [(phase * phase_ms, rng.uniform(low, high))
                        for phase in range(phases)]
            models.append(DynamicLatency(schedule))
        config.topology = TopologyConfig.from_latency_models(models)
        # Capability, not name comparison (same rule as fig11b): probing only
        # helps when latencies move outside the workload's own traffic.
        config.active_probing = get_system_plugin(
            config.system).supports_active_probing

    shape = params["shape"]
    if shape != "closed":
        config.arrival = ArrivalConfig(
            process=shape, rate_tps=CHAOS_RATE_TPS,
            max_clients=CHAOS_MAX_CLIENTS,
            # One full diurnal wave fits the run at any scale.
            period_ms=duration_ms / 2.0)
    return config


def _apply_admission_knee(config: Any, params: Dict[str, Any]) -> Any:
    """Park the offered rate at (a multiple of) the system's knee and toggle
    the late-transaction admission scheduler."""
    config.arrival.rate_tps = KNEE_TPS[config.system] * params["load_multiple"]
    if params["admission"] == "off":
        from repro.core.config import GeoTPConfig
        if config.geotp is None:
            config.geotp = GeoTPConfig()
        # Threshold 0.0 short-circuits the probability test: every
        # transaction is admitted immediately, no waits, no rejects.
        config.geotp.admission_threshold = 0.0
    return config


def _apply_chaos_saturated(config: Any, params: Dict[str, Any]) -> Any:
    """Crash a component while the open system is offered exactly its knee."""
    config.arrival.rate_tps = KNEE_TPS[config.system]
    config.fault_plan = build_chaos_fault_plan(params["fault"],
                                               config.duration_ms)
    return config


# ------------------------------------------------------------------ the matrix
@dataclass(frozen=True)
class ChaosMatrix:
    """The cross-product generator behind the ``chaos_*`` namespace.

    Axis tuples default to the full matrix; ``max_scenarios`` prunes the
    cross-product to a seeded, order-preserving sample at *generation* time
    (every prune with the same seed keeps the same combos, so scenario names
    stay stable across processes and sessions).
    """

    faults: Tuple[str, ...] = CHAOS_FAULTS
    latency_profiles: Tuple[str, ...] = CHAOS_LATENCY_PROFILES
    shapes: Tuple[str, ...] = CHAOS_SHAPES
    workloads: Tuple[str, ...] = CHAOS_WORKLOADS
    systems: Tuple[str, ...] = CHAOS_SYSTEMS
    #: Seeds the pruning sample *and* every point's latency schedules.
    seed: int = 2025
    #: Keep only this many combos (seeded sample); ``None`` = all.
    max_scenarios: Optional[int] = None

    def combos(self) -> List[Dict[str, Any]]:
        """The (optionally pruned) cross-product, in deterministic order.

        Each combo carries a ``chaos_seed`` derived from its position in the
        *full* product, so a pruned matrix generates byte-identical configs
        for the combos it keeps.
        """
        out: List[Dict[str, Any]] = []
        index = 0
        for fault in self.faults:
            for latency in self.latency_profiles:
                for shape in self.shapes:
                    for workload in self.workloads:
                        out.append({
                            "fault": fault, "latency": latency,
                            "shape": shape, "workload": workload,
                            "chaos_seed": SeededRNG(self.seed).spawn(index).seed,
                        })
                        index += 1
        if self.max_scenarios is not None and len(out) > self.max_scenarios:
            keep = sorted(SeededRNG(self.seed).sample(
                range(len(out)), self.max_scenarios))
            out = [out[i] for i in keep]
        return out

    @staticmethod
    def scenario_name(combo: Dict[str, Any]) -> str:
        return (f"chaos_{combo['fault']}_{combo['latency']}"
                f"_{combo['shape']}_{combo['workload']}")

    def register_all(self) -> List[str]:
        """Build and register one ``ScenarioSpec`` per combo; returns names."""
        from repro.bench.scenarios import (Axis, ScenarioSpec, _base,
                                           register, register_family)
        register_family(
            CHAOS_FAMILY,
            "Generated chaos matrix: fault modes (incl. composed dual/cascade "
            "plans) x latency profiles x arrival shapes x workload mixes, "
            "each swept over ssp vs geotp and checked by the robustness "
            "invariants")
        names: List[str] = []
        for combo in self.combos():
            name = self.scenario_name(combo)
            spec = ScenarioSpec(
                name=name,
                description=(f"Generated chaos point: {combo['fault']} fault, "
                             f"{combo['latency']} latency, {combo['shape']} "
                             f"arrivals, {combo['workload']} workload"),
                base=_base(workload=combo["workload"]),
                axes=(Axis("system", self.systems),),
                fixed={key: combo[key] for key in
                       ("fault", "latency", "shape", "chaos_seed")},
                apply=_apply_chaos,
                family=CHAOS_FAMILY,
            )
            register(spec)
            names.append(name)
        return names


def chaos_scenario_names() -> List[str]:
    """All registered ``chaos`` family scenario names, sorted."""
    from repro.bench.scenarios import SCENARIOS
    return sorted(name for name, spec in SCENARIOS.items()
                  if spec.family == CHAOS_FAMILY)


def sample_chaos_scenarios(count: int, seed: int = 0) -> List[str]:
    """A seeded, order-preserving sample of registered chaos scenarios.

    The run-time budget knob: the CI ``chaos-smoke`` job and ``python -m
    repro.bench chaos`` pick ~10 of the hundreds of generated points; the
    same seed always picks the same ones.
    """
    names = chaos_scenario_names()
    if count >= len(names):
        return names
    keep = sorted(SeededRNG(seed).sample(range(len(names)), count))
    return [names[i] for i in keep]


# --------------------------------------------------------------- registration
def register_chaos_scenarios(matrix: Optional[ChaosMatrix] = None) -> List[str]:
    """Register the chaos matrix plus the graceful-degradation families.

    Called by ``repro.bench.scenarios`` once its own registry machinery is
    defined (just before plugin hooks drain), so the generated namespace is
    discoverable everywhere the hand-written scenarios are.
    """
    from repro.bench.scenarios import (Axis, ScenarioSpec, _base,
                                       _open_system_ycsb, register)

    names = (matrix or ChaosMatrix()).register_all()

    register(ScenarioSpec(
        name="admission_knee",
        description="Graceful degradation at the measured knee: admission "
                    "scheduler on vs off at 1x and 2x each admission-capable "
                    "system's saturation rate (on must hold the goodput band "
                    "past saturation where off collapses)",
        base=_base(arrival=ArrivalConfig(process="poisson", rate_tps=120.0,
                                         max_clients=384),
                   ycsb=_open_system_ycsb()),
        axes=(Axis("system", ("scalardb_plus", "geotp")),
              Axis("admission", ("on", "off")),
              Axis("load_multiple", (1.0, 2.0))),
        apply=_apply_admission_knee,
    ))

    register(ScenarioSpec(
        name="chaos_saturated",
        description="Crashes at the knee: middleware/datasource crash "
                    "injected into an open-system run offered exactly the "
                    "system's saturation rate (recovery under zero headroom)",
        base=_base(arrival=ArrivalConfig(process="poisson", rate_tps=100.0,
                                         max_clients=256),
                   ycsb=_open_system_ycsb()),
        axes=(Axis("system", ("ssp", "scalardb_plus", "geotp")),
              Axis("fault", ("mw_crash", "ds_crash"))),
        apply=_apply_chaos_saturated,
    ))

    return names
