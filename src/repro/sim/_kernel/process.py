"""Generator-based processes for the simulation engine (kernel module).

A :class:`Process` wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the environment; the generator is resumed
with the event's value once it fires.  A process is itself an event that
triggers when the generator returns (its value is the generator's return
value), so processes can wait on each other.

Processes are **run-to-first-yield**: ``env.process()`` executes the generator
inline until it first suspends, instead of scheduling an init event on the
heap.  Spawning a process therefore costs no queue entry and no dispatch —
which matters because the server loops in ``DataSource``/``GeoAgent`` spawn
one daemon handler per network message.  The visible consequence is that a
freshly spawned process's body has already run up to its first ``yield`` by
the time ``env.process()`` returns (the old engine deferred that to the next
dispatch); this same-time reordering is covered by the statistical-equivalence
harness (:mod:`repro.bench.equivalence`), not by byte-identical goldens.

The resume loop is the single hottest function of the whole simulator (it runs
once per event wait), so it reads event state directly (``_ok`` / ``_value``
/ ``callbacks``) instead of going through the public properties, and the
generator's bound ``send``/``throw`` are cached at construction time.

This module is part of the mypyc-compilable kernel (see
:mod:`repro.sim._kernel`): fully annotated, relative imports only, no dynamic
attribute tricks.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Generator, Optional, Tuple

from .events import PENDING, Event, Interrupt, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class _Wake:
    """Immutable stand-in event a sleeping process is resumed with."""

    __slots__ = ()
    _ok: ClassVar[bool] = True
    _value: ClassVar[None] = None


_WAKE = _Wake()


class _SleepEntry:
    """Reusable heap carrier for the ``yield <number>`` sleep fast path.

    A process sleeps at most once at a time, so one carrier per process is
    re-armed for every sleep: no :class:`Timeout` event, no callbacks list,
    no subscription — the heap pop resumes the generator directly.  The
    dispatch-loop protocol is the ``Timer`` one (``callbacks`` None at class
    level, ``fn``/``args`` consulted on fire).
    """

    __slots__ = ("fn", "_bound")

    callbacks: ClassVar[None] = None
    args: ClassVar[Tuple[Any, ...]] = ()

    def __init__(self, process: "Process"):
        self._bound: Callable[[], None] = partial(process._resume, _WAKE)
        self.fn: Optional[Callable[[], None]] = None


class Process(Event):
    """An active simulation process driving a generator of events."""

    __slots__ = ("name", "_generator", "_send", "_throw", "_target", "_daemon",
                 "_sleep")

    def __init__(self, env: "Environment", generator: Generator, name: str = "",
                 daemon: bool = False):
        try:
            send = generator.send
            throw = generator.throw
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        super().__init__(env)
        self.name: str = name or getattr(generator, "__name__", "process")
        #: Daemon processes are fire-and-forget servers: when one finishes
        #: successfully with no subscribers, its completion event skips the
        #: queue entirely (nobody could observe the dispatch).
        self._daemon = daemon
        self._generator = generator
        self._send: Callable[[Any], Any] = send
        self._throw: Callable[[Any], Any] = throw
        self._target: Any = None
        self._sleep: Optional[_SleepEntry] = None
        # Run-to-first-yield: drive the generator inline, at the current
        # time, until it first suspends (or finishes).  ``active_process`` is
        # saved and restored so a process that spawns children mid-execution
        # still sees itself as active afterwards.  The shared ``_WAKE``
        # stand-in replaces the old per-spawn init event: its value (None)
        # is consumed synchronously, so no allocation is needed.
        previous = env.active_process
        self._resume(_WAKE)
        env.active_process = previous

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Any:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time.

        The interrupt preempts same-time work: it jumps to the *front* of
        the microqueue, like the old engine's urgent heap priority preempted
        normal same-time events.  Unlike the old engine, *multiple* pending
        same-timestamp interrupts are delivered LIFO rather than FIFO — no
        current caller double-interrupts within one timestamp, so the
        simpler front-of-queue rule wins.
        """
        if self._value is not PENDING:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        sleep = self._sleep
        if sleep is not None and sleep.fn is not None:
            # Interrupted mid-sleep: defuse the armed carrier so the stale
            # wake-up cannot resume the process a second time, and drop the
            # carrier entirely — its dead entry is still buried in the heap,
            # and re-arming the same object for a later sleep would let that
            # stale entry fire the new sleep early.
            sleep.fn = None
            self._sleep = None
            self.env._note_cancelled()
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._soon.appendleft(interrupt_event)

    def _resume(self, event: Any) -> None:
        """Advance the generator with the outcome of ``event``.

        ``event`` is the fired :class:`Event` — or the shared ``_WAKE``
        stand-in when resuming from a sleep-carrier or the inline first run.
        """
        env = self.env
        # Drop our subscription on the event we were waiting for: a process
        # interrupted while waiting must not be resumed again by that event.
        target = self._target
        if target is not None and target is not event:
            target_callbacks = target.callbacks
            if target_callbacks is not None and self._resume in target_callbacks:
                target_callbacks.remove(self._resume)
        self._target = None

        env.active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event.defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                env.active_process = None
                self._ok = True
                self._value = stop.value
                # Drop the sleep carrier: its ``partial(self._resume, ...)``
                # closes the only reference *cycle* a finished process sits
                # on, so clearing it here lets plain refcounting reclaim the
                # process, its generator and their bound methods immediately —
                # long runs stay O(1) in memory even with the cyclic GC
                # suspended (see ``bench.runner``).  The carrier cannot be
                # armed at this point: an armed carrier means the process is
                # sleeping, not returning.
                self._sleep = None
                if self._daemon and not self.callbacks:
                    # Fire-and-forget completion: mark processed in place.
                    self.callbacks = None
                    return
                env._soon.append(self)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure propagates as event failure
                env.active_process = None
                self._ok = False
                self._value = exc
                self._sleep = None
                env._soon.append(self)
                return

            if not isinstance(next_event, Event):
                cls = next_event.__class__
                if cls is float or cls is int:
                    # Sleep fast path: ``yield <delay_ms>`` parks the resume
                    # on a reusable heap carrier — semantically identical to
                    # ``yield env.timeout(delay)`` (the resumed value is
                    # None) minus one event allocation per simulated wait.
                    if next_event < 0:
                        env.active_process = None
                        error = ValueError(f"negative delay {next_event}")
                        self._ok = False
                        self._value = error
                        self._sleep = None
                        env._soon.append(self)
                        return
                    entry = self._sleep
                    if entry is None:
                        self._sleep = entry = _SleepEntry(self)
                    entry.fn = entry._bound
                    env._eid = eid = env._eid + 1
                    heappush(env._queue,
                             (env.now + next_event, 1, eid, entry))
                    env.active_process = None
                    return
                env.active_process = None
                bad = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = bad
                self._sleep = None
                env._soon.append(self)
                return

            callbacks = next_event.callbacks
            if callbacks is None:
                # Already fired: loop immediately with its value instead of
                # round-tripping the queue.
                event = next_event
                continue
            if next_event._value is not PENDING and (
                    next_event.__class__ is not Timeout or not next_event.delay):
                # Triggered but not yet dispatched, and due at the *current*
                # time (a future Timeout is the only triggered event whose
                # firing lies ahead): consume it inline.  The queued entry
                # still dispatches later this timestamp for any other
                # subscribers; we simply don't wait our turn — same-timestamp
                # reordering covered by the equivalence harness.
                event = next_event
                continue

            # Subscribe and suspend.
            callbacks.append(self._resume)
            self._target = next_event
            env.active_process = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
