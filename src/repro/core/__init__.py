"""GeoTP core: the paper's contribution.

* :mod:`repro.core.geotp` — the GeoTP coordinator (drop-in replacement for the
  base XA coordinator) combining the three optimizations;
* :mod:`repro.core.geo_agent` — the per-data-source geo-agent implementing the
  decentralized prepare and early abort of §IV-A;
* :mod:`repro.core.scheduler` — the latency-aware geo-scheduler of §IV-B;
* :mod:`repro.core.hotspot`, :mod:`repro.core.forecasting`,
  :mod:`repro.core.admission` — the high-contention optimizations of §IV-C;
* :mod:`repro.core.latency_monitor` — EWMA network latency tracking;
* :mod:`repro.core.config` — the O1/O2/O3 switches used by the ablation study.
"""

from repro.core.admission import AdmissionDecision, LateTransactionScheduler
from repro.core.avl import AVLTree
from repro.core.config import GeoTPConfig
from repro.core.forecasting import LocalExecutionForecaster
from repro.core.geo_agent import GeoAgent, GeoAgentConfig
from repro.core.geotp import GeoTPCoordinator
from repro.core.hotspot import HotspotEntry, HotspotFootprint
from repro.core.latency_monitor import NetworkLatencyMonitor
from repro.core.scheduler import GeoScheduler, ScheduleDecision

__all__ = [
    "AVLTree",
    "AdmissionDecision",
    "GeoAgent",
    "GeoAgentConfig",
    "GeoScheduler",
    "GeoTPConfig",
    "GeoTPCoordinator",
    "HotspotEntry",
    "HotspotFootprint",
    "LateTransactionScheduler",
    "LocalExecutionForecaster",
    "NetworkLatencyMonitor",
    "ScheduleDecision",
]
