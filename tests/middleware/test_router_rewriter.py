"""Unit tests for partitioners and the statement rewriter."""

import pytest

from repro.common import Operation, OpType
from repro.middleware import (
    ModuloPartitioner,
    Rewriter,
    Statement,
    TableAwarePartitioner,
    WarehousePartitioner,
)
from repro.storage import MySQLDialect, PostgreSQLDialect


NODES = ["ds0", "ds1", "ds2", "ds3"]


def test_modulo_partitioner_spreads_integer_keys():
    partitioner = ModuloPartitioner(NODES)
    assert partitioner.locate("usertable", 0) == "ds0"
    assert partitioner.locate("usertable", 5) == "ds1"
    assert partitioner.locate("usertable", 7) == "ds3"


def test_modulo_partitioner_key_for_node_round_trips():
    partitioner = ModuloPartitioner(NODES)
    for node_index in range(4):
        for seq in (0, 1, 17):
            key = partitioner.key_for_node(node_index, seq)
            assert partitioner.locate("usertable", key) == NODES[node_index]


def test_modulo_partitioner_hashes_non_integer_keys():
    partitioner = ModuloPartitioner(NODES)
    located = partitioner.locate("usertable", "user42")
    assert located in NODES


def test_modulo_partitioner_rejects_empty_nodes():
    with pytest.raises(ValueError):
        ModuloPartitioner([])


def test_warehouse_partitioner_maps_warehouses_to_nodes():
    partitioner = WarehousePartitioner(NODES, warehouses_per_node=4)
    assert partitioner.total_warehouses == 16
    assert partitioner.node_for_warehouse(1) == "ds0"
    assert partitioner.node_for_warehouse(4) == "ds0"
    assert partitioner.node_for_warehouse(5) == "ds1"
    assert partitioner.node_for_warehouse(16) == "ds3"
    assert partitioner.warehouses_on_node(2) == [9, 10, 11, 12]


def test_warehouse_partitioner_uses_tuple_keys_and_replicates_item():
    partitioner = WarehousePartitioner(NODES, warehouses_per_node=4)
    assert partitioner.locate("warehouse", (6,)) == "ds1"
    assert partitioner.locate("stock", (13, 77)) == "ds3"
    assert partitioner.locate("item", 500, home_hint="ds2") == "ds2"
    assert partitioner.locate("item", 500) == "ds0"


def test_warehouse_partitioner_rejects_bad_input():
    partitioner = WarehousePartitioner(NODES, warehouses_per_node=4)
    with pytest.raises(ValueError):
        partitioner.node_for_warehouse(0)
    with pytest.raises(ValueError):
        partitioner.node_for_warehouse(999)
    with pytest.raises(ValueError):
        partitioner.locate("stock", "not-a-tuple")
    with pytest.raises(ValueError):
        WarehousePartitioner(NODES, warehouses_per_node=0)


def test_table_aware_partitioner_delegates_per_table():
    modulo = ModuloPartitioner(NODES)
    warehouse = WarehousePartitioner(NODES, warehouses_per_node=4)
    combined = TableAwarePartitioner(
        NODES, per_table={"stock": warehouse}, default=modulo)
    assert combined.locate("stock", (5, 1)) == "ds1"
    assert combined.locate("usertable", 3) == "ds3"


def statements_for(keys, write=True):
    op_type = OpType.UPDATE if write else OpType.READ
    return [Statement(operation=Operation(op_type=op_type, table="usertable",
                                          key=key, value=key)) for key in keys]


def test_rewriter_groups_by_datasource_and_tracks_last():
    rewriter = Rewriter(ModuloPartitioner(NODES))
    statements = statements_for([0, 1, 4, 5])
    statements[-1].is_last = True
    plans = rewriter.plan_round(statements)
    assert set(plans) == {"ds0", "ds1"}
    assert [op.key for op in plans["ds0"].operations] == [0, 4]
    assert [op.key for op in plans["ds1"].operations] == [1, 5]
    assert plans["ds1"].contains_last
    assert not plans["ds0"].contains_last


def test_rewriter_participants_in_first_use_order():
    rewriter = Rewriter(ModuloPartitioner(NODES))
    statements = statements_for([2, 0, 6, 1])
    assert rewriter.participants(statements) == ["ds2", "ds0", "ds1"]


def test_rewriter_renders_dialect_specific_sql():
    rewriter = Rewriter(ModuloPartitioner(NODES))
    statements = statements_for([0], write=False) + statements_for([4])
    plan = rewriter.plan_round(statements)["ds0"]

    mysql_script = rewriter.render_subtransaction("x1", plan, MySQLDialect())
    assert mysql_script[0] == "XA START 'x1';"
    assert mysql_script[-1] == "XA PREPARE 'x1';"
    assert not any("FOR SHARE" in line for line in mysql_script)

    pg_script = rewriter.render_subtransaction("x1", plan, PostgreSQLDialect())
    assert pg_script[0] == "BEGIN;"
    assert pg_script[-1] == "PREPARE TRANSACTION 'x1';"
    assert any("FOR SHARE" in line for line in pg_script)
