"""QURO: contention-aware operation reordering (Yan & Cheung, VLDB 2016).

QURO preprocesses the application's transaction code so that operations on
highly contended records — in practice, the exclusive-lock acquisitions of
writes — are issued as late as possible, shortening the time those locks are
held.  It has no notion of network latency, which is why the paper finds it
helps over SSP but falls behind latency-aware approaches in geo-distributed
settings.

The reordering is applied to the submitted transaction spec: within each
interaction round reads are issued first and writes last (writes flagged as
hot are pushed to the very end), preserving the relative order within each
class.  Coordination afterwards is plain middleware XA, identical to SSP.
"""

from __future__ import annotations

from typing import List

from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.middleware.statements import Statement, TransactionSpec
from repro.sim.process import Process
from repro.plugins import BuildContext, SystemPlugin, register_system


def reorder_statements(statements: List[Statement]) -> List[Statement]:
    """Reads first, writes last, hot-hinted writes very last (stable order)."""
    reads = [s for s in statements if not s.operation.is_write]
    cold_writes = [s for s in statements
                   if s.operation.is_write and not s.operation.is_hot_hint]
    hot_writes = [s for s in statements
                  if s.operation.is_write and s.operation.is_hot_hint]
    return reads + cold_writes + hot_writes


def reorder_spec(spec: TransactionSpec) -> TransactionSpec:
    """A new spec with every round reordered the QURO way."""
    rounds = [reorder_statements(list(round_)) for round_ in spec.rounds]
    reordered = TransactionSpec(rounds=rounds, txn_type=spec.txn_type,
                                metadata=dict(spec.metadata))
    reordered.mark_last_statements()
    return reordered


class QUROCoordinator(TwoPhaseCommitCoordinator):
    """SSP coordination over QURO-preprocessed transactions."""

    system_name = "QURO"

    def submit(self, spec: TransactionSpec) -> Process:
        return super().submit(reorder_spec(spec))


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> QUROCoordinator:
    return QUROCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                           ctx.participants, ctx.partitioner)


register_system(SystemPlugin(
    name="quro",
    description="QURO contention-aware operation reordering over middleware XA",
    builder=_build,
))
