"""GeoTP reproduction: latency-aware geo-distributed transaction processing.

This package reproduces, on a discrete-event simulated substrate, the system
and evaluation of *GeoTP: Latency-aware Geo-Distributed Transaction Processing
in Database Middlewares* (ICDE 2025).  The public API is small:

* :class:`ExperimentConfig` / :func:`run_experiment` — run one experiment point
  (system x workload x topology) and get throughput / latency / abort metrics;
* :class:`TopologyConfig` — describe where middlewares and data sources live;
* :class:`YCSBConfig` / :class:`TPCCConfig` — workload knobs;
* :class:`GeoTPConfig` — the O1/O2/O3 switches of GeoTP itself;
* :func:`build_cluster` — lower-level access to a wired simulated cluster for
  users who want to drive transactions themselves.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.bench.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
)
from repro.baselines.scalardb import ScalarDBConfig
from repro.cluster.deployment import Cluster, SUPPORTED_SYSTEMS, build_cluster
from repro.cluster.topology import DataNodeSpec, MiddlewareSpec, TopologyConfig
from repro.common import (
    AbortReason,
    Operation,
    OpType,
    TransactionResult,
    TxnOutcome,
)
from repro.core.config import GeoTPConfig
from repro.middleware.statements import Statement, TransactionSpec
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.ycsb import CONTENTION_SKEW, YCSBConfig

__version__ = "1.0.0"

__all__ = [
    "AbortReason",
    "CONTENTION_SKEW",
    "Cluster",
    "DataNodeSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSummary",
    "GeoTPConfig",
    "MiddlewareSpec",
    "Operation",
    "OpType",
    "SUPPORTED_SYSTEMS",
    "ScalarDBConfig",
    "Statement",
    "TPCCConfig",
    "TopologyConfig",
    "TransactionResult",
    "TransactionSpec",
    "TxnOutcome",
    "YCSBConfig",
    "build_cluster",
    "run_experiment",
    "__version__",
]
