"""Workload abstractions.

A workload knows how to (1) build the partitioner that maps its keys onto data
sources, (2) load the initial database into each data source and (3) generate
transaction specs for client terminals, controlling contention (key skew), the
ratio of distributed transactions, transaction length and the number of client
interaction rounds — the four knobs the paper's experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.middleware.router import Partitioner
from repro.middleware.statements import TransactionSpec
from repro.sim.rng import SeededRNG


@dataclass
class WorkloadConfig:
    """Knobs shared by all workloads."""

    #: Fraction of generated transactions that touch more than one data source.
    distributed_ratio: float = 0.2
    #: Number of client interaction rounds per transaction.
    rounds: int = 1
    #: RNG seed for the generator.
    seed: int = 0


class Workload:
    """Base class for transaction generators."""

    name = "workload"

    def __init__(self, datasource_names: Sequence[str], config: WorkloadConfig):
        if not datasource_names:
            raise ValueError("a workload needs at least one data source")
        self.datasource_names = list(datasource_names)
        self.config = config
        self.rng = SeededRNG(config.seed)

    # ------------------------------------------------------------- interface
    def make_partitioner(self) -> Partitioner:
        """The partitioner that routes this workload's keys."""
        raise NotImplementedError

    def initial_data(self) -> Dict[str, Dict[str, Dict]]:
        """Initial rows per data source: ``{datasource: {table: {key: value}}}``."""
        raise NotImplementedError

    def next_transaction(self, terminal_id: int = 0) -> TransactionSpec:
        """Generate the next transaction spec for a client terminal."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def spawn_terminal_rng(self, terminal_id: int) -> SeededRNG:
        """A per-terminal RNG stream so terminals are independent but reproducible."""
        return self.rng.spawn(terminal_id + 1)

    def load_into(self, datasources: Dict[str, object]) -> None:
        """Bulk-load the initial data into :class:`~repro.storage.DataSource` objects."""
        for ds_name, tables in self.initial_data().items():
            datasource = datasources.get(ds_name)
            if datasource is None:
                continue
            for table_name, rows in tables.items():
                datasource.load_table(table_name, rows)
