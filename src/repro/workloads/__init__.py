"""Workload generators: YCSB and TPC-C, as configured in the paper's evaluation."""

from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, CONTENTION_SKEW
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload

__all__ = [
    "CONTENTION_SKEW",
    "TPCCConfig",
    "TPCCWorkload",
    "Workload",
    "WorkloadConfig",
    "YCSBConfig",
    "YCSBWorkload",
]
