"""Unit tests for the contrib SmallBank workload plugin."""

import pytest

from repro.common import OpType
from repro.contrib.smallbank import (
    CHECKING,
    SAVINGS,
    SmallBankConfig,
    SmallBankWorkload,
)

NODES = ["ds0", "ds1", "ds2"]


def _workload(**overrides) -> SmallBankWorkload:
    defaults = dict(accounts_per_node=1_000, preload_accounts_per_node=100)
    defaults.update(overrides)
    return SmallBankWorkload(NODES, SmallBankConfig(**defaults))


def _touched_nodes(workload, spec):
    partitioner = workload.make_partitioner()
    return {partitioner.locate(stmt.operation.table, stmt.operation.key)
            for stmt in spec.all_statements}


def test_initial_data_loads_savings_and_checking_per_node():
    workload = _workload()
    data = workload.initial_data()
    assert set(data) == set(NODES)
    for node, tables in data.items():
        assert set(tables) == {SAVINGS, CHECKING}
        assert len(tables[SAVINGS]) == 100
        assert set(tables[SAVINGS]) == set(tables[CHECKING])
        # Every preloaded account actually lives on its node.
        for account in tables[SAVINGS]:
            assert workload.make_partitioner().locate(SAVINGS, account) == node


def test_distributed_ratio_zero_and_one_are_exact():
    centralized = _workload(distributed_ratio=0.0)
    for _ in range(200):
        spec = centralized.next_transaction()
        assert spec.metadata["distributed"] is False
        assert len(_touched_nodes(centralized, spec)) == 1

    distributed = _workload(distributed_ratio=1.0)
    for _ in range(200):
        spec = distributed.next_transaction()
        assert spec.metadata["distributed"] is True
        assert len(_touched_nodes(distributed, spec)) == 2


def test_distributed_ratio_is_respected_statistically():
    workload = _workload(distributed_ratio=0.4, seed=3)
    hits = sum(workload.next_transaction().metadata["distributed"]
               for _ in range(1_000))
    assert 330 <= hits <= 470


def test_default_mix_is_read_heavy():
    workload = _workload(seed=1)
    reads = writes = 0
    for _ in range(500):
        for stmt in workload.next_transaction().all_statements:
            if stmt.operation.op_type is OpType.READ:
                reads += 1
            else:
                writes += 1
    assert reads > writes


def test_same_seed_reproduces_the_exact_transaction_stream():
    def stream(seed):
        workload = _workload(seed=seed)
        return [[(s.operation.op_type, s.operation.table, s.operation.key)
                 for s in workload.next_transaction().all_statements]
                for _ in range(50)]

    assert stream(7) == stream(7)
    assert stream(7) != stream(8)


def test_two_account_transactions_use_distinct_accounts():
    workload = _workload(distributed_ratio=0.0, seed=5,
                         mix={"send_payment": 0.5, "amalgamate": 0.5})
    for _ in range(200):
        spec = workload.next_transaction()
        accounts = {stmt.operation.key for stmt in spec.all_statements}
        assert len(accounts) == 2


def test_config_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        _workload(mix={"balance": 0.5})
    with pytest.raises(ValueError, match="unknown transaction types"):
        _workload(mix={"balance": 0.5, "wire_fraud": 0.5})
    with pytest.raises(ValueError, match="distributed_ratio"):
        _workload(distributed_ratio=1.5)
    with pytest.raises(ValueError, match="accounts_per_node"):
        _workload(accounts_per_node=1)


def test_pure_balance_mix_still_supports_distribution():
    """A mix without two-account types falls back to cross-node payments."""
    workload = _workload(distributed_ratio=1.0, mix={"deposit_checking": 1.0})
    spec = workload.next_transaction()
    assert spec.metadata["distributed"] is True
    assert len(_touched_nodes(workload, spec)) == 2
    assert spec.txn_type == "send_payment"


def test_switching_workload_drops_the_stale_workload_config():
    """sweep(workload=...) must not feed a SmallBankConfig to another factory."""
    from repro.bench.runner import make_workload
    from repro.bench.scenarios import get_scenario

    sweep = get_scenario("smallbank_dist_ratio").sweep(workload="ycsb")
    assert sweep.base.workload_config is None
    workload = make_workload(sweep.base, NODES)
    assert workload.name == "ycsb"


def test_make_workload_rejects_a_mismatched_workload_config():
    from repro.bench.runner import ExperimentConfig, make_workload

    config = ExperimentConfig(workload="ycsb",
                              workload_config=SmallBankConfig())
    with pytest.raises(TypeError, match="YCSBConfig"):
        make_workload(config, NODES)


def test_registered_scenario_expands_with_ratio_axis():
    from repro.bench.scenarios import get_scenario

    points = get_scenario("smallbank_dist_ratio").sweep().points()
    assert len(points) == 6  # 2 systems x 3 ratios
    for point in points:
        assert point.config.workload == "smallbank"
        assert (point.config.workload_config.distributed_ratio
                == point.params["ratio"])
