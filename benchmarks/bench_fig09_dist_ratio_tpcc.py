"""Figure 9 — TPC-C Payment and NewOrder under varying distributed ratios."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig9_distributed_ratio_tpcc


def test_fig9_tpcc_payment_neworder(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_distributed_ratio_tpcc(
            ratios=(0.2, 1.0), systems=("ssp", "geotp"),
            duration_ms=BENCH_DURATION_MS, terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    for txn_type in ("payment", "new_order"):
        geotp = {r: (t, l) for r, t, l in result[txn_type]["geotp"]}
        ssp = {r: (t, l) for r, t, l in result[txn_type]["ssp"]}
        for ratio in (0.2, 1.0):
            geotp_tput, geotp_latency = geotp[ratio]
            ssp_tput, ssp_latency = ssp[ratio]
            assert geotp_tput > ssp_tput
            assert geotp_latency < ssp_latency
