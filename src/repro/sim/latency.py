"""Latency models for simulated network links.

The paper emulates WAN latency with ``tc`` between a middleware host and data
sources located in Beijing, Shanghai, Singapore and London (round-trip times of
0, 27, 73 and 251 ms) and additionally studies jittered, random and
time-varying latencies (Figures 10 and 11).  Each model here answers a single
question: *what is the one-way delay of a message sent at simulated time t?*

All models express latency as round-trip time (RTT) in milliseconds, matching
the paper's presentation; one-way delay is RTT / 2.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.sim.rng import SeededRNG


class LatencyModel:
    """Base class: a distribution of round-trip times over simulated time."""

    def rtt_at(self, now: float) -> float:
        """Nominal (mean) RTT in ms at simulated time ``now``."""
        raise NotImplementedError

    def sample_one_way(self, now: float) -> float:
        """One-way delay in ms for a message sent at time ``now``."""
        return self.rtt_at(now) / 2.0

    def describe(self) -> str:
        """Human-readable summary used in experiment reports."""
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Fixed RTT, the default model for the paper's main topology."""

    def __init__(self, rtt_ms: float):
        if rtt_ms < 0:
            raise ValueError("rtt_ms must be non-negative")
        self.rtt_ms = float(rtt_ms)

    def rtt_at(self, now: float) -> float:
        return self.rtt_ms

    def describe(self) -> str:
        return f"constant(rtt={self.rtt_ms:.1f}ms)"


class JitterLatency(LatencyModel):
    """RTT with Gaussian jitter around a mean (used for the std-dev sweep, Fig. 10b)."""

    def __init__(self, mean_rtt_ms: float, std_ms: float = 0.0,
                 rng: Optional[SeededRNG] = None, floor_ms: float = 0.0):
        if mean_rtt_ms < 0 or std_ms < 0:
            raise ValueError("mean and std must be non-negative")
        self.mean_rtt_ms = float(mean_rtt_ms)
        self.std_ms = float(std_ms)
        self.floor_ms = float(floor_ms)
        self._rng = rng or SeededRNG(0)

    def rtt_at(self, now: float) -> float:
        return self.mean_rtt_ms

    def sample_one_way(self, now: float) -> float:
        rtt = self._rng.gauss(self.mean_rtt_ms, self.std_ms)
        return max(rtt, self.floor_ms) / 2.0

    def describe(self) -> str:
        return f"jitter(mean={self.mean_rtt_ms:.1f}ms, std={self.std_ms:.1f}ms)"


class RandomLatency(LatencyModel):
    """RTT drawn uniformly from a band around a base value (Fig. 11a).

    The paper lets "the network latency randomly fluctuate by a factor of 1.5
    for some nodes"; this model multiplies the base RTT by a factor drawn
    uniformly from ``[1, max_factor]`` per message.
    """

    def __init__(self, base_rtt_ms: float, max_factor: float = 1.5,
                 rng: Optional[SeededRNG] = None):
        if base_rtt_ms < 0:
            raise ValueError("base_rtt_ms must be non-negative")
        if max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")
        self.base_rtt_ms = float(base_rtt_ms)
        self.max_factor = float(max_factor)
        self._rng = rng or SeededRNG(0)

    def rtt_at(self, now: float) -> float:
        return self.base_rtt_ms * (1.0 + self.max_factor) / 2.0

    def sample_one_way(self, now: float) -> float:
        factor = self._rng.uniform(1.0, self.max_factor)
        return self.base_rtt_ms * factor / 2.0

    def describe(self) -> str:
        return f"random(base={self.base_rtt_ms:.1f}ms, max_factor={self.max_factor:.2f})"


class DynamicLatency(LatencyModel):
    """RTT that follows a piecewise-constant schedule over simulated time.

    Used for the online-adaptivity experiment (Fig. 11b), where the paper
    re-draws link latencies every 40 seconds over a 320-second run.  The
    schedule is a list of ``(start_time_ms, rtt_ms)`` pairs sorted by start
    time; before the first entry the first RTT applies.
    """

    def __init__(self, schedule: Sequence[Tuple[float, float]]):
        if not schedule:
            raise ValueError("schedule must contain at least one entry")
        entries: List[Tuple[float, float]] = sorted(
            (float(t), float(rtt)) for t, rtt in schedule)
        for _, rtt in entries:
            if rtt < 0:
                raise ValueError("rtt values must be non-negative")
        self.schedule = entries
        # Precomputed parallel arrays for bisect: rtt_at runs once per
        # message, and a linear scan over a fine-grained schedule (e.g. the
        # fig11b_fine scenario's 320 one-second phases) made every send
        # O(phases).
        self._starts: List[float] = [start for start, _ in entries]
        self._rtts: List[float] = [rtt for _, rtt in entries]

    def rtt_at(self, now: float) -> float:
        index = bisect_right(self._starts, now) - 1
        # Before the first entry the first RTT applies; ties on equal start
        # times resolve to the last entry, exactly like the old linear scan.
        return self._rtts[index] if index >= 0 else self._rtts[0]

    def describe(self) -> str:
        points = ", ".join(f"{t:.0f}ms→{rtt:.0f}ms" for t, rtt in self.schedule[:4])
        suffix = ", ..." if len(self.schedule) > 4 else ""
        return f"dynamic({points}{suffix})"
