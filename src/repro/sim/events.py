"""Event primitives for the discrete-event simulation engine.

An :class:`Event` is a one-shot occurrence in simulated time.  Processes wait
on events by yielding them; when the event *succeeds* (or *fails*) the waiting
process is resumed with the event's value (or the failure exception is thrown
into it).

The composite events :class:`AllOf` and :class:`AnyOf` allow a process to wait
for several events at once, which the middleware coordinators use to wait for
prepare votes from many data sources.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.environment import Environment


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _PendingValue:
    """Sentinel for "this event has not been given a value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pending>"


PENDING = _PendingValue()


class Event:
    """A one-shot event that processes can wait on.

    The lifecycle is: *pending* -> *triggered* (scheduled on the event queue)
    -> *processed* (callbacks executed).  An event can be triggered at most
    once, either successfully via :meth:`succeed` or with an exception via
    :meth:`fail`.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set to True by a waiter that handles failures itself; prevents the
        #: environment from treating an unhandled failed event as fatal.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is PENDING:
            raise RuntimeError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class ConditionValue:
    """Dict-like access to the values of the events a condition waited on."""

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        """Return ``{event: value}`` for each completed event."""
        return {event: event.value for event in self.events}


class Condition(Event):
    """Base class for composite events over a list of child events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defused = True
            self.fail(event.value)
        elif self._satisfied(self._count, len(self._events)):
            done = [e for e in self._events if e.triggered and e.ok]
            self.succeed(ConditionValue(done))


class AllOf(Condition):
    """Succeeds once *all* child events have succeeded (fails on first failure)."""

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Succeeds as soon as *any* child event succeeds."""

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
