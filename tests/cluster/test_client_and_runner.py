"""Integration tests: client terminals and the experiment runner."""

import pytest

from repro import ExperimentConfig, GeoTPConfig, TPCCConfig, TopologyConfig, YCSBConfig, run_experiment
from repro.bench.runner import make_workload
from repro.cluster import TopologyConfig as ClusterTopology
from repro.cluster import build_cluster, start_terminals
from repro.metrics import MetricsCollector
from repro.workloads import YCSBWorkload


SMALL_YCSB = YCSBConfig(records_per_node=1000, preload_rows_per_node=200,
                        skew=0.5, distributed_ratio=0.2)


def test_terminals_drive_transactions_closed_loop():
    topology = ClusterTopology.from_rtts([5, 30])
    workload = YCSBWorkload(topology.node_names(), SMALL_YCSB)
    cluster = build_cluster("ssp", topology, workload.make_partitioner())
    cluster.load_workload(workload)
    collector = MetricsCollector()
    terminals = start_terminals(cluster.env, cluster.middlewares, workload, collector,
                                terminal_count=4, duration_ms=3000)
    cluster.env.run(until=3000)
    assert len(terminals) == 4
    assert collector.committed_count() > 0
    assert all(t.transactions_run > 0 for t in terminals)


def test_start_terminals_validates_arguments():
    topology = ClusterTopology.from_rtts([5])
    workload = YCSBWorkload(topology.node_names(), SMALL_YCSB)
    cluster = build_cluster("ssp", topology, workload.make_partitioner())
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        start_terminals(cluster.env, cluster.middlewares, workload, collector,
                        terminal_count=0, duration_ms=100)
    with pytest.raises(ValueError):
        start_terminals(cluster.env, [], workload, collector,
                        terminal_count=1, duration_ms=100)


def test_run_experiment_returns_consistent_metrics():
    config = ExperimentConfig(system="geotp", terminals=8, duration_ms=4000,
                              warmup_ms=500, ycsb=SMALL_YCSB)
    result = run_experiment(config)
    assert result.system == "geotp"
    assert result.committed > 0
    assert result.throughput_tps == pytest.approx(
        result.committed / ((4000 - 500) / 1000.0))
    assert 0 <= result.abort_rate <= 1
    assert result.average_latency_ms > 0
    assert "execution" in result.breakdown
    assert result.resources.committed >= result.committed


def test_make_workload_does_not_mutate_shared_workload_configs():
    """Regression: the runner used to stamp ``config.seed`` onto the shared
    YCSB/TPC-C config in place, so a config reused across experiments silently
    carried the last seed."""
    ycsb = YCSBConfig()
    workload = make_workload(ExperimentConfig(ycsb=ycsb, seed=7), ["ds0", "ds1"])
    assert workload.config.seed == 7
    assert ycsb.seed == 0
    assert workload.config is not ycsb

    tpcc = TPCCConfig()
    workload = make_workload(ExperimentConfig(workload="tpcc", tpcc=tpcc, seed=9),
                             ["ds0", "ds1"])
    assert workload.config.seed == 9
    assert tpcc.seed == 0


def test_shared_workload_config_keeps_per_experiment_seeds():
    """Two experiments sharing one YCSBConfig must generate from their own seeds."""
    shared = YCSBConfig(records_per_node=1000, preload_rows_per_node=200)
    first = make_workload(ExperimentConfig(ycsb=shared, seed=1), ["ds0", "ds1"])
    second = make_workload(ExperimentConfig(ycsb=shared, seed=2), ["ds0", "ds1"])
    specs_first = [first.next_transaction(0) for _ in range(5)]
    specs_second = [second.next_transaction(0) for _ in range(5)]
    assert first.config.seed == 1 and second.config.seed == 2

    def keys(specs):
        return [[stmt.operation.key for stmt in spec.all_statements]
                for spec in specs]

    assert keys(specs_first) != keys(specs_second)


def test_run_experiment_rejects_bad_warmup_and_unknown_workload():
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(duration_ms=1000, warmup_ms=2000))
    with pytest.raises(ValueError):
        make_workload(ExperimentConfig(workload="nosuch"), ["ds0"])


def test_run_experiment_tpcc_reports_per_type_metrics():
    config = ExperimentConfig(
        system="ssp", workload="tpcc", terminals=8, duration_ms=4000, warmup_ms=500,
        tpcc=TPCCConfig(warehouses_per_node=2, customers_per_district=10,
                        item_count=50, mix={"payment": 1.0}))
    result = run_experiment(config)
    assert result.committed > 0
    assert result.throughput_for("payment") == pytest.approx(result.throughput_tps)
    assert result.average_latency_for("payment") > 0


def test_run_experiment_timeline_and_multi_middleware():
    config = ExperimentConfig(system="geotp", terminals=8, duration_ms=4000,
                              warmup_ms=500, ycsb=SMALL_YCSB,
                              topology=TopologyConfig.multi_middleware(),
                              timeline_bucket_ms=1000)
    result = run_experiment(config, keep_cluster=True)
    assert result.timeline is not None
    assert result.timeline.total() >= result.committed
    assert len(result.cluster.middlewares) == 2


def test_middleware_count_builds_a_fleet_topology():
    config = ExperimentConfig(system="ssp", terminals=6, duration_ms=3000,
                              warmup_ms=500, ycsb=SMALL_YCSB,
                              middleware_count=3)
    result = run_experiment(config, keep_cluster=True)
    assert [m.name for m in result.cluster.middlewares] == ["dm1", "dm2", "dm3"]
    assert result.fleet is not None
    assert result.fleet["middlewares"] == ["dm1", "dm2", "dm3"]
    # Every coordinator served traffic under the default round-robin policy.
    assert all(counters["submitted"] > 0
               for counters in result.fleet["per_middleware"].values())


def test_middleware_count_must_match_an_explicit_topology():
    with pytest.raises(ValueError, match="middleware_count"):
        run_experiment(ExperimentConfig(
            system="ssp", duration_ms=3000, warmup_ms=500,
            topology=TopologyConfig.multi_middleware(), middleware_count=3))
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(duration_ms=3000, warmup_ms=500,
                                        middleware_count=0))


def test_single_middleware_runs_report_no_fleet():
    config = ExperimentConfig(system="ssp", terminals=4, duration_ms=2000,
                              warmup_ms=500, ycsb=SMALL_YCSB)
    result = run_experiment(config)
    assert result.fleet is None
    assert "fleet" not in result.summary().to_dict()


def test_geotp_ablation_configs_run_via_runner():
    base = GeoTPConfig()
    for variant in (base.ablation_o1(), base.ablation_o1_o2(), base.ablation_o1_o3()):
        config = ExperimentConfig(system="geotp", terminals=6, duration_ms=3000,
                                  warmup_ms=500, ycsb=SMALL_YCSB, geotp=variant)
        result = run_experiment(config)
        assert result.committed > 0
