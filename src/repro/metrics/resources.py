"""Resource-usage accounting (the Figure 6a/6b substitute).

The paper measures CPU utilisation and resident memory of the middleware
process.  Neither is meaningful inside a discrete-event simulator, so the
reproduction reports two proxies with the same comparative story:

* *coordination work per committed transaction* — messages sent plus statements
  routed, divided by commits; GeoTP does strictly less WAN coordination per
  commit than SSP, which is what the paper's "≈30 % higher CPU efficiency"
  captures;
* *middleware metadata bytes* — the extra memory a middleware keeps; GeoTP's
  hotspot footprint and latency statistics report their sizes here,
  reproducing the "≈300 MB more memory" direction (scaled to the simulated
  key space).
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass


def process_peak_rss_bytes() -> int:
    """Peak resident set size of the *calling process*, in bytes.

    Unlike the proxies above, this is real process memory — the flat-RSS
    claim of the open-system load engine is asserted against it.
    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes.  The value is a high-water mark for the whole process lifetime,
    so per-experiment readings taken from a pooled worker are upper bounds,
    not isolated measurements (fresh subprocesses give clean ones).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container in CI
        return int(peak)
    return int(peak * 1024)


@dataclass
class ResourceUsage:
    """Aggregate resource proxies of one middleware over one run."""

    work_units: int = 0
    wan_messages: int = 0
    metadata_bytes: int = 0
    committed: int = 0

    @property
    def work_per_commit(self) -> float:
        """Coordination work units per committed transaction."""
        if self.committed == 0:
            return 0.0
        return self.work_units / self.committed

    @property
    def wan_messages_per_commit(self) -> float:
        """WAN messages per committed transaction."""
        if self.committed == 0:
            return 0.0
        return self.wan_messages / self.committed

    @classmethod
    def from_middleware(cls, middleware) -> "ResourceUsage":
        """Snapshot the counters of a middleware instance."""
        stats = middleware.stats
        return cls(work_units=stats.work_units, wan_messages=stats.wan_messages,
                   metadata_bytes=stats.metadata_bytes, committed=stats.committed)
