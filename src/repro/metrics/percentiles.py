"""Percentile and CDF helpers for latency analysis (Figure 8)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    ``fraction`` is in [0, 1]; an empty input raises ``ValueError`` so callers
    never silently report a latency of zero.
    """
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    low, high = ordered[lower], ordered[upper]
    # Clamp: the interpolation can land one ulp outside [low, high] (e.g.
    # v*(1-w) + v*w < v for tiny w), which would report a quantile outside
    # the sample range.
    return min(max(low * (1.0 - weight) + high * weight, low), high)


class LatencyDistribution:
    """A collection of latency samples with percentile / CDF accessors."""

    def __init__(self, samples: Sequence[float] = ()):
        self._samples: List[float] = list(samples)

    def add(self, value: float) -> None:
        """Record one latency sample (milliseconds)."""
        self._samples.append(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """All recorded samples, in insertion order."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        """Average latency; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def p(self, fraction: float) -> float:
        """Latency at the given quantile (e.g. ``p(0.99)``)."""
        return percentile(self._samples, fraction)

    @property
    def p50(self) -> float:
        return self.p(0.50)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    @property
    def p999(self) -> float:
        return self.p(0.999)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return (latency, cumulative_fraction) pairs for CDF plots.

        ``points`` evenly spaced quantiles are reported, which is what the
        Figure 8 reproduction prints.
        """
        if not self._samples:
            return []
        ordered = sorted(self._samples)
        count = len(ordered)
        out: List[Tuple[float, float]] = []
        for i in range(1, points + 1):
            fraction = i / points
            index = min(int(round(fraction * count)) - 1, count - 1)
            index = max(index, 0)
            out.append((ordered[index], fraction))
        return out
