"""SQL-dialect profiles for heterogeneous data sources.

The paper stresses that GeoTP works across heterogeneous data sources
(MySQL and PostgreSQL in the evaluation, Table I).  What actually differs
between them, from the middleware's point of view, is:

* the command sequence used to drive the XA protocol (``XA START/END/PREPARE/
  COMMIT`` for MySQL versus ``BEGIN`` / ``PREPARE TRANSACTION`` / ``COMMIT
  PREPARED`` for PostgreSQL);
* whether plain ``SELECT`` statements take shared record locks (InnoDB under
  serializable does; PostgreSQL needs the middleware to rewrite reads to
  ``SELECT ... FOR SHARE``, §VII-A);
* local execution costs (per-statement CPU + I/O inside the engine).

A :class:`Dialect` bundles these differences so the data source, the rewriter
and the geo-agent never special-case engine names directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Dialect:
    """Behavioural profile of one database engine."""

    name: str
    #: Per-operation execution cost inside the engine (milliseconds).
    read_cost_ms: float
    write_cost_ms: float
    #: Cost of persisting the prepare record (local WAL flush).
    prepare_cost_ms: float
    #: Cost of applying the commit (installing versions, releasing locks).
    commit_cost_ms: float
    #: True if the middleware must rewrite reads to lock explicitly
    #: (``SELECT ... FOR SHARE``) for shared locks to be taken at all.
    reads_need_explicit_lock_rewrite: bool

    # ------------------------------------------------- XA statement rendering
    def begin_statements(self, xid: str) -> List[str]:
        """Statements that open an XA branch on this engine."""
        raise NotImplementedError

    def end_prepare_statements(self, xid: str) -> List[str]:
        """Statements that end execution and prepare the branch."""
        raise NotImplementedError

    def commit_statements(self, xid: str) -> List[str]:
        """Statements that commit a prepared branch."""
        raise NotImplementedError

    def rollback_statements(self, xid: str) -> List[str]:
        """Statements that roll back the branch."""
        raise NotImplementedError

    def rewrite_read(self, sql: str) -> str:
        """Rewrite a read statement so it takes a shared lock if needed."""
        if not self.reads_need_explicit_lock_rewrite:
            return sql
        stripped = sql.rstrip().rstrip(";")
        if stripped.upper().endswith("FOR SHARE"):
            return sql
        return f"{stripped} FOR SHARE;"


@dataclass(frozen=True)
class MySQLDialect(Dialect):
    """MySQL 8.0 / InnoDB profile (XA verbs, implicit read locks under SERIALIZABLE)."""

    name: str = "mysql"
    read_cost_ms: float = 0.4
    write_cost_ms: float = 0.8
    prepare_cost_ms: float = 2.0
    commit_cost_ms: float = 1.0
    reads_need_explicit_lock_rewrite: bool = False

    def begin_statements(self, xid: str) -> List[str]:
        return [f"XA START '{xid}';"]

    def end_prepare_statements(self, xid: str) -> List[str]:
        return [f"XA END '{xid}';", f"XA PREPARE '{xid}';"]

    def commit_statements(self, xid: str) -> List[str]:
        return [f"XA COMMIT '{xid}';"]

    def rollback_statements(self, xid: str) -> List[str]:
        return [f"XA ROLLBACK '{xid}';"]


@dataclass(frozen=True)
class PostgreSQLDialect(Dialect):
    """PostgreSQL 15 profile (prepared transactions, explicit FOR SHARE reads)."""

    name: str = "postgresql"
    read_cost_ms: float = 0.5
    write_cost_ms: float = 0.9
    prepare_cost_ms: float = 2.5
    commit_cost_ms: float = 1.2
    reads_need_explicit_lock_rewrite: bool = True

    def begin_statements(self, xid: str) -> List[str]:
        return ["BEGIN;"]

    def end_prepare_statements(self, xid: str) -> List[str]:
        return [f"PREPARE TRANSACTION '{xid}';"]

    def commit_statements(self, xid: str) -> List[str]:
        return [f"COMMIT PREPARED '{xid}';"]

    def rollback_statements(self, xid: str) -> List[str]:
        return [f"ROLLBACK PREPARED '{xid}';"]


def dialect_by_name(name: str) -> Dialect:
    """Look up a dialect profile by its engine name."""
    normalized = name.strip().lower()
    if normalized in ("mysql", "innodb"):
        return MySQLDialect()
    if normalized in ("postgresql", "postgres", "pg"):
        return PostgreSQLDialect()
    raise ValueError(f"unknown dialect {name!r}; expected 'mysql' or 'postgresql'")
