"""Collection of per-transaction outcomes during an experiment run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common import TransactionResult, TxnOutcome
from repro.metrics.percentiles import LatencyDistribution


@dataclass(slots=True)
class TransactionSample:
    """One completed transaction as seen by a client terminal."""

    txn_id: str
    txn_type: str
    committed: bool
    is_distributed: bool
    latency_ms: float
    finished_at: float
    abort_reason: Optional[str] = None
    phase_breakdown: Optional[Dict[str, float]] = None


class MetricsCollector:
    """Aggregates transaction samples, honouring a warm-up window.

    Samples finishing before ``warmup_ms`` are counted separately and excluded
    from throughput/latency statistics, mirroring how benchmark harnesses
    discard ramp-up measurements.

    The unfiltered aggregates (committed/aborted counts, abort-reason
    histogram) are maintained incrementally on :meth:`record`, so the
    per-query cost no longer grows with the number of samples; filtered
    queries (by transaction type or distribution) still scan.
    """

    __slots__ = ("warmup_ms", "samples", "warmup_samples",
                 "_committed", "_aborted", "_abort_reasons")

    def __init__(self, warmup_ms: float = 0.0):
        self.warmup_ms = warmup_ms
        self.samples: List[TransactionSample] = []
        self.warmup_samples = 0
        self._committed = 0
        self._aborted = 0
        self._abort_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------- recording
    def record(self, result: TransactionResult, txn_type: str = "generic") -> None:
        """Record the outcome of one transaction."""
        if result.end_time < self.warmup_ms:
            self.warmup_samples += 1
            return
        abort_reason = result.abort_reason.value if result.abort_reason else None
        self.samples.append(TransactionSample(
            txn_id=result.txn_id,
            txn_type=txn_type,
            committed=result.committed,
            is_distributed=result.is_distributed,
            latency_ms=result.latency_ms,
            finished_at=result.end_time,
            abort_reason=abort_reason,
            phase_breakdown=dict(result.phase_breakdown) if result.phase_breakdown else None,
        ))
        if result.committed:
            self._committed += 1
        else:
            self._aborted += 1
            if abort_reason is not None:
                self._abort_reasons[abort_reason] = (
                    self._abort_reasons.get(abort_reason, 0) + 1)

    # ------------------------------------------------------------ aggregation
    def _filtered(self, committed_only: bool = False, txn_type: Optional[str] = None,
                  distributed: Optional[bool] = None) -> List[TransactionSample]:
        out = self.samples
        if committed_only:
            out = [s for s in out if s.committed]
        if txn_type is not None:
            out = [s for s in out if s.txn_type == txn_type]
        if distributed is not None:
            out = [s for s in out if s.is_distributed == distributed]
        return out

    def committed_count(self, txn_type: Optional[str] = None) -> int:
        """Number of committed transactions after warm-up."""
        if txn_type is None:
            return self._committed
        return len(self._filtered(committed_only=True, txn_type=txn_type))

    def aborted_count(self, txn_type: Optional[str] = None) -> int:
        """Number of aborted transactions after warm-up."""
        if txn_type is None:
            return self._aborted
        return len([s for s in self._filtered(txn_type=txn_type) if not s.committed])

    def abort_rate(self, txn_type: Optional[str] = None) -> float:
        """Fraction of measured transactions that aborted (0 when nothing measured)."""
        if txn_type is None:
            total = len(self.samples)
        else:
            total = len(self._filtered(txn_type=txn_type))
        if total == 0:
            return 0.0
        return self.aborted_count(txn_type) / total

    def throughput_tps(self, measured_duration_ms: float,
                       txn_type: Optional[str] = None) -> float:
        """Committed transactions per second over the measured window."""
        if measured_duration_ms <= 0:
            return 0.0
        return self.committed_count(txn_type) / (measured_duration_ms / 1000.0)

    def latency_distribution(self, committed_only: bool = True,
                             txn_type: Optional[str] = None,
                             distributed: Optional[bool] = None) -> LatencyDistribution:
        """Latency distribution of (by default committed) transactions."""
        samples = self._filtered(committed_only=committed_only, txn_type=txn_type,
                                 distributed=distributed)
        return LatencyDistribution([s.latency_ms for s in samples])

    def average_latency_ms(self, committed_only: bool = True,
                           txn_type: Optional[str] = None,
                           distributed: Optional[bool] = None) -> float:
        """Mean latency of the selected transactions."""
        return self.latency_distribution(committed_only, txn_type, distributed).mean

    def abort_reasons(self) -> Dict[str, int]:
        """Histogram of abort reasons after warm-up (first-seen order)."""
        return dict(self._abort_reasons)
