"""Tests for the reporting helpers and (smoke-level) the experiment functions."""

from repro.bench.report import format_table, print_series, print_table
from repro.bench.experiments import fig6_resources_breakdown, fig15_multi_region


def test_format_table_aligns_columns_and_formats_numbers():
    text = format_table(["system", "tput"], [("geotp", 123.456), ("ssp", 7.1)])
    lines = text.splitlines()
    assert lines[0].startswith("system")
    assert "123.5" in text
    assert "7.10" in text
    assert len(lines) == 4  # header, rule, two rows


def test_print_table_and_series_write_to_stdout(capsys):
    print_table("demo", ["x", "y"], [(1, 2)])
    print_series("series", [(0.0, 1.0), (1.0, 2.0)], x_label="t", y_label="v")
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "== series ==" in out
    assert "t" in out and "v" in out


def test_fig6_experiment_smoke(capsys):
    """A tiny fig6 run exercises the experiment plumbing end to end."""
    result = fig6_resources_breakdown(duration_ms=3000, terminals=8, report=True)
    assert set(result) == {"ssp", "geotp"}
    for data in result.values():
        assert data["throughput_tps"] >= 0
        assert "breakdown" in data
    assert "Fig 6a/6b" in capsys.readouterr().out


def test_fig15_experiment_smoke():
    result = fig15_multi_region(duration_ms=3000, terminals=8)
    assert set(result) == {"ssp", "geotp"}
    for data in result.values():
        assert data["single_middleware_tps"] >= 0
        assert data["multi_middleware_tps"] >= 0
