"""Figure 14 — impact of transaction length and client interaction rounds."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig14_length_and_rounds


def test_fig14_length_and_rounds(benchmark):
    result = benchmark.pedantic(
        lambda: fig14_length_and_rounds(lengths=(5, 25), rounds=(1, 6),
                                        duration_ms=BENCH_DURATION_MS,
                                        terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    length = result["length"]
    geotp_by_length = dict(length["geotp"])
    ssp_by_length = dict(length["ssp"])
    # Throughput decreases with transaction length for both systems; GeoTP stays ahead.
    assert geotp_by_length[25] <= geotp_by_length[5]
    assert ssp_by_length[25] <= ssp_by_length[5]
    assert geotp_by_length[5] > ssp_by_length[5]

    rounds_medium = result["rounds"]["medium"]
    geotp_rounds = dict(rounds_medium["geotp"])
    ssp_rounds = dict(rounds_medium["ssp"])
    # With many interaction rounds GeoTP's advantage persists (Fig. 14c).
    assert geotp_rounds[6] > ssp_rounds[6]
