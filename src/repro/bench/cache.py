"""Resumable per-point result cache for scenario sweeps.

Big sweeps (the chaos matrix, ``load_sweep``, the fleet families) are
embarrassingly parallel *and* bit-deterministic: a point's
:class:`~repro.bench.runner.ExperimentSummary` is fully determined by its
``(config, seed, engine)``.  That makes every point safely memoisable — a
crashed or re-run sweep only needs to compute the points that are missing.

:class:`SweepCache` stores one pickled summary per executed point under a
cache directory (default ``.repro_cache/``), keyed on

* the **canonical config hash** — :func:`config_hash` walks the whole
  ``ExperimentConfig`` object graph (dataclasses, nested configs, latency
  models, fault plans, RNG seeds) into a canonical string that is stable
  across processes and ``PYTHONHASHSEED`` values, then digests it;
* the **seed** (redundant with the hash — ``seed`` is a config field — but
  spelled out so the key schema is self-describing on disk);
* the **engine token** — active engine name plus a fingerprint of the kernel
  sources, so switching pure ↔ compiled or editing the simulation kernel
  invalidates every cached result instead of silently replaying stale ones.

Entries live at ``<dir>/<sweep_name>/point<index>__<digest>.pkl``.  A lookup
that finds an entry for the same sweep point under a *different* digest (the
config or engine changed) deletes it and counts an **invalidation**; a
corrupted or truncated entry likewise degrades to a recompute — the cache can
slow a sweep down only by a disk read, never change its results or crash it.

Caching is strictly opt-in: nothing in the hot path touches this module
unless a :class:`SweepCache` is handed to
:class:`~repro.bench.parallel.SweepRunner` (CLI: ``--cache-dir`` /
``--resume``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import random
import time
from pathlib import Path
from typing import Any, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bench.parallel import PointResult
    from repro.bench.scenarios import SweepPoint

#: Default cache directory of the CLI flags (relative to the working dir).
DEFAULT_CACHE_DIR = ".repro_cache"

#: On-disk entry schema; bump to orphan every existing entry at once.
CACHE_SCHEMA = 1


# ------------------------------------------------------------ canonical hashing
def canonical_repr(obj: Any) -> str:
    """A canonical, hash-seed-independent string form of a config object graph.

    Two objects produce the same string iff they would drive a simulation
    identically: dataclasses render their fields sorted by name, dicts/sets
    sort by their elements' canonical forms (never by ``hash()``), enums
    render as member names, ``random.Random`` renders its seeded state, and
    plain objects (latency models, ``SeededRNG``) walk their attributes —
    private ones included, because ``_rng`` seeds are semantics.  Anything the
    walker does not understand raises ``TypeError`` instead of falling back to
    ``repr`` (which could embed a memory address and quietly break stability).
    """
    return _canon(obj, set())


def _canon(obj: Any, active: set) -> str:
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    marker = id(obj)
    if marker in active:
        raise ValueError("cannot canonicalise a cyclic config object graph")
    active.add(marker)
    try:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            cls = type(obj)
            inner = ", ".join(
                f"{f.name}={_canon(getattr(obj, f.name), active)}"
                for f in sorted(dataclasses.fields(obj), key=lambda f: f.name))
            return f"{cls.__module__}.{cls.__qualname__}({inner})"
        if isinstance(obj, (list, tuple)):
            open_, close = ("[", "]") if isinstance(obj, list) else ("(", ")")
            return open_ + ", ".join(_canon(v, active) for v in obj) + close
        if isinstance(obj, dict):
            items = sorted((_canon(k, active), _canon(v, active))
                           for k, v in obj.items())
            return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
        if isinstance(obj, (set, frozenset)):
            return "{" + ", ".join(sorted(_canon(v, active) for v in obj)) + "}"
        if isinstance(obj, random.Random):
            # Fully determined by the seed for freshly built configs; walking
            # the state (plain ints) keeps a pre-advanced generator honest.
            return f"Random(state={_canon(obj.getstate(), active)})"
        if callable(obj) and hasattr(obj, "__qualname__"):
            return f"{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
        attrs = _object_attrs(obj)
        if attrs is not None:
            inner = ", ".join(f"{name}={_canon(value, active)}"
                              for name, value in attrs)
            cls = type(obj)
            return f"{cls.__module__}.{cls.__qualname__}<{inner}>"
    finally:
        active.discard(marker)
    raise TypeError(f"cannot canonicalise {type(obj).__qualname__!r} for the "
                    f"sweep cache key (teach repro.bench.cache.canonical_repr "
                    f"about it)")


def _object_attrs(obj: Any):
    """Sorted ``(name, value)`` attributes of a plain object, or ``None``."""
    names: Dict[str, Any] = {}
    if hasattr(obj, "__dict__"):
        names.update(vars(obj))
    for cls in type(obj).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            if slot != "__dict__" and hasattr(obj, slot):
                names.setdefault(slot, getattr(obj, slot))
    if not names and not hasattr(obj, "__dict__"):
        return None
    return sorted(names.items())


def config_hash(config: Any) -> str:
    """SHA-256 of the canonical form of an :class:`ExperimentConfig`."""
    return hashlib.sha256(canonical_repr(config).encode()).hexdigest()


# ------------------------------------------------------------- engine identity
_kernel_fingerprint: Optional[str] = None


def kernel_fingerprint() -> str:
    """Digest of the simulation-kernel sources (cached per process).

    The pure-Python kernel in ``repro/sim/_kernel/`` is the source of truth
    for both engines (the compiled core is the same code mypycified), so any
    kernel edit changes this fingerprint and orphans every cached summary.
    """
    global _kernel_fingerprint
    if _kernel_fingerprint is None:
        from repro.sim import _kernel

        digest = hashlib.sha256()
        for path in sorted(Path(_kernel.__file__).parent.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _kernel_fingerprint = digest.hexdigest()[:16]
    return _kernel_fingerprint


def engine_token() -> str:
    """The engine component of the cache key: engine name + kernel version."""
    from repro.sim.engine import active_engine

    return f"{active_engine()}:{kernel_fingerprint()}"


# ------------------------------------------------------------------- the cache
class SweepCache:
    """Directory-backed store of executed sweep points.

    One instance serves one sweep run (the hit/miss/invalidation counters are
    per-run statistics, reported in the CLI JSON).  All filesystem access
    happens in the coordinating process — worker processes never see the
    cache — so no cross-process locking is needed.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR,
                 engine: Optional[str] = None):
        self.directory = Path(directory)
        self.engine = engine if engine is not None else engine_token()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ keys
    def entry_digest(self, point: "SweepPoint") -> str:
        """Digest of the full cache key of one sweep point."""
        key = (f"schema={CACHE_SCHEMA};config={config_hash(point.config)};"
               f"seed={point.config.seed};engine={self.engine}")
        return hashlib.sha256(key.encode()).hexdigest()[:32]

    def _point_path(self, sweep_name: str, point: "SweepPoint",
                    digest: str) -> Path:
        return self.directory / sweep_name / f"point{point.index:04d}__{digest}.pkl"

    # ---------------------------------------------------------------- lookup
    def lookup(self, sweep_name: str,
               point: "SweepPoint") -> Optional["PointResult"]:
        """The cached result of ``point``, or ``None`` (and count why).

        Stale siblings — entries for the same point index whose digest no
        longer matches because the config hash or the engine changed — are
        deleted and counted as invalidations, so a cache directory never
        accumulates results that can no longer be produced.
        """
        from repro.bench.parallel import PointResult

        digest = self.entry_digest(point)
        path = self._point_path(sweep_name, point, digest)
        self._drop_stale_siblings(path)
        payload = self._load_entry(path, digest)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(index=point.index, params=dict(point.params),
                           summary=payload["summary"],
                           wall_clock_s=payload["wall_clock_s"])

    def _drop_stale_siblings(self, path: Path) -> None:
        prefix = path.name.split("__", 1)[0]
        if not path.parent.is_dir():
            return
        for sibling in path.parent.glob(f"{prefix}__*.pkl"):
            if sibling.name != path.name:
                sibling.unlink(missing_ok=True)
                self.invalidations += 1

    def _load_entry(self, path: Path, digest: str) -> Optional[Dict[str, Any]]:
        """Unpickle and validate one entry; corrupt entries self-delete."""
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(raw)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != CACHE_SCHEMA
                    or payload.get("digest") != digest
                    or payload.get("engine") != self.engine):
                raise ValueError("cache entry metadata mismatch")
        except Exception:
            # Truncated write, foreign pickle, schema drift — anything short
            # of a clean, self-consistent entry degrades to a recompute.
            path.unlink(missing_ok=True)
            self.invalidations += 1
            return None
        return payload

    # ----------------------------------------------------------------- store
    def store(self, sweep_name: str, point: "SweepPoint",
              result: "PointResult") -> None:
        """Persist one executed point (atomically, so kills cannot truncate)."""
        digest = self.entry_digest(point)
        path = self._point_path(sweep_name, point, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "sweep": sweep_name,
            "index": point.index,
            "params": dict(point.params),
            "config_hash": config_hash(point.config),
            "seed": point.config.seed,
            "engine": self.engine,
            "summary": result.summary,
            "wall_clock_s": result.wall_clock_s,
            "created_unix": time.time(),
        }
        scratch = path.with_suffix(f".tmp{os.getpid()}")
        scratch.write_bytes(pickle.dumps(payload))
        os.replace(scratch, path)

    # ------------------------------------------------------------- reporting
    def stats(self) -> Dict[str, Any]:
        """The per-run counters the CLI JSON reports."""
        return {"dir": str(self.directory), "engine": self.engine,
                "hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations}
