"""Integration tests: GeoTP coordinator + geo-agents + data sources.

These tests build a small two/three-node topology by hand (the cluster
deployment helpers are tested separately) and verify the paper's headline
timing claims:

* decentralized prepare saves one WAN round trip versus SSP;
* latency-aware scheduling shrinks the lock contention span on the fast node;
* early abort completes a distributed abort in about one WAN round trip.
"""

import pytest

from repro.common import Operation, OpType, TxnOutcome
from repro.core import GeoAgent, GeoAgentConfig, GeoTPConfig, GeoTPCoordinator
from repro.middleware import (
    MiddlewareConfig,
    ModuloPartitioner,
    ParticipantHandle,
    Statement,
    TransactionSpec,
    TwoPhaseCommitCoordinator,
)
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect


def build_geotp_cluster(rtts=(10.0, 100.0), lock_wait_timeout_ms=5000.0,
                        geotp_config=None, keys_per_node=200):
    """A GeoTP deployment with one agent per data source."""
    env = Environment()
    net = Network(env)
    names = [f"ds{i}" for i in range(len(rtts))]
    datasources, agents, participants = {}, {}, {}
    for name, rtt in zip(names, rtts):
        ds = DataSource(env, net, DataSourceConfig(
            name=name, dialect=MySQLDialect(),
            lock_wait_timeout_ms=lock_wait_timeout_ms))
        ds.load_table("usertable", {key: {"v": 0} for key in range(keys_per_node)})
        datasources[name] = ds
        agent_name = f"agent-{name}"
        agents[name] = GeoAgent(env, net, GeoAgentConfig(name=agent_name,
                                                         datasource=name))
        participants[name] = ParticipantHandle(name=name, endpoint=agent_name,
                                               dialect=MySQLDialect())
        net.set_link("dm", agent_name, ConstantLatency(rtt))
        net.set_link(agent_name, name, ConstantLatency(0.5))
    # WAN links between agents (for early abort): approximate with the larger
    # of the two middleware RTTs, which is what inter-region links look like.
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if i < j:
                net.set_link(f"agent-{a}", f"agent-{b}",
                             ConstantLatency(max(rtts[i], rtts[j])))
    partitioner = ModuloPartitioner(names)
    dm = GeoTPCoordinator(env, net, MiddlewareConfig(name="dm"), participants,
                          partitioner, geotp_config=geotp_config or GeoTPConfig())
    return env, net, dm, datasources, agents


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def run_txn(env, dm, spec):
    proc = dm.submit(spec)
    env.run(until=proc)
    return proc.value


def test_geotp_centralized_transaction_commits():
    env, net, dm, datasources, agents = build_geotp_cluster()
    spec = TransactionSpec.from_operations([update(0), update(2)])
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert not result.is_distributed
    assert datasources["ds0"].engine.read("p", "usertable", 0).value == {"v": 1}


def test_geotp_distributed_commit_saves_one_wan_round_trip():
    """O1: ~2 WAN RTTs end to end instead of SSP's ~3 (Figure 4a)."""
    env, net, dm, datasources, agents = build_geotp_cluster(rtts=(10.0, 100.0))
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert result.is_distributed
    # Execution (100) + commit (100) plus agent/prepare overheads; well below
    # the ~305 ms the SSP baseline needs.
    assert 200 <= result.latency_ms <= 240
    assert datasources["ds1"].engine.read("p", "usertable", 1).value == {"v": 1}
    assert agents["ds1"].stats.decentralized_prepares >= 1


def test_geotp_prepare_wait_is_short_in_breakdown():
    """Figure 6c: the wait for decentralized prepare votes is a few ms, not a WAN RTT."""
    env, net, dm, datasources, agents = build_geotp_cluster(rtts=(10.0, 100.0))
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.phase_breakdown["prepare"] < 20
    assert result.phase_breakdown["commit"] >= 100


def test_geotp_beats_ssp_latency_on_same_workload():
    geo_env, _net, geo_dm, _ds, _agents = build_geotp_cluster(rtts=(10.0, 100.0))
    geotp_latency = run_txn(
        geo_env, geo_dm,
        TransactionSpec.from_operations([update(0), update(1)])).latency_ms

    # Build the SSP equivalent.
    env = Environment()
    net = Network(env)
    names = ["ds0", "ds1"]
    participants = {}
    for name, rtt in zip(names, (10.0, 100.0)):
        ds = DataSource(env, net, DataSourceConfig(name=name, dialect=MySQLDialect()))
        ds.load_table("usertable", {key: {"v": 0} for key in range(10)})
        participants[name] = ParticipantHandle(name=name, endpoint=name)
        net.set_link("dm", name, ConstantLatency(rtt))
    ssp = TwoPhaseCommitCoordinator(env, net, MiddlewareConfig(name="dm"),
                                    participants, ModuloPartitioner(names))
    proc = ssp.submit(TransactionSpec.from_operations([update(0), update(1)]))
    env.run(until=proc)
    ssp_latency = proc.value.latency_ms

    assert geotp_latency < ssp_latency
    # The saving should be roughly one WAN round trip (100 ms here).
    assert ssp_latency - geotp_latency >= 80


def test_geotp_scheduling_postpones_fast_subtransaction_dispatch():
    """O2: the ds0 statements are dispatched ~90 ms after the ds1 statements."""
    env, net, dm, datasources, agents = build_geotp_cluster(rtts=(10.0, 100.0))
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.committed
    txn_fast = [t for t in datasources["ds0"].transactions.values()][0]
    txn_slow = [t for t in datasources["ds1"].transactions.values()][0]
    # Lock contention spans (Eq. 1): the fast node's span should be far below
    # the slow node's, which is the whole point of the postponement.
    assert txn_slow.lock_contention_span_ms == pytest.approx(100, abs=20)
    assert txn_fast.lock_contention_span_ms <= 30


def test_geotp_without_scheduling_has_long_fast_node_span():
    config = GeoTPConfig(enable_latency_aware_scheduling=False,
                         enable_high_contention_optimization=False)
    env, net, dm, datasources, agents = build_geotp_cluster(
        rtts=(10.0, 100.0), geotp_config=config)
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.committed
    txn_fast = [t for t in datasources["ds0"].transactions.values()][0]
    # Without O2 the fast node holds its locks for about the slow link's RTT.
    assert txn_fast.lock_contention_span_ms >= 80


def test_geotp_early_abort_rolls_back_peers_without_extra_round_trip():
    # A very short lock-wait timeout forces the victim to abort even though
    # GeoTP's scheduling keeps contention spans small.
    env, net, dm, datasources, agents = build_geotp_cluster(
        rtts=(10.0, 100.0), lock_wait_timeout_ms=10.0)

    blocker = TransactionSpec.from_operations([update(0, 1), update(1, 1)])
    victim = TransactionSpec.from_operations([update(0, 2), update(3, 2)])
    results = {}

    def client(name, spec, delay):
        yield env.timeout(delay)
        result = yield dm.submit(spec)
        results[name] = result

    env.process(client("blocker", blocker, 0))
    env.process(client("victim", victim, 5))
    env.run()

    assert results["blocker"].outcome is TxnOutcome.COMMITTED
    assert results["victim"].outcome is TxnOutcome.ABORTED
    # The victim's ds1 write must be gone and the early-abort path used.
    assert datasources["ds1"].engine.read("p", "usertable", 3).value == {"v": 0}
    assert agents["ds0"].stats.early_abort_notifications >= 1


def test_geotp_concurrent_transactions_all_commit_without_conflicts():
    env, net, dm, datasources, agents = build_geotp_cluster(rtts=(10.0, 100.0))
    outcomes = []

    def client(base):
        spec = TransactionSpec.from_operations([update(base), update(base + 1)])
        result = yield dm.submit(spec)
        outcomes.append(result.outcome)

    for i in range(6):
        env.process(client(20 + i * 2))
    env.run()
    assert outcomes.count(TxnOutcome.COMMITTED) == 6
    assert dm.stats.committed == 6


def test_geotp_hotspot_footprint_learns_from_execution():
    env, net, dm, datasources, agents = build_geotp_cluster()
    for i in range(4):
        run_txn(env, dm, TransactionSpec.from_operations([update(0), update(1)]))
    assert len(dm.footprint) >= 2
    assert dm.footprint.entry(("usertable", 0)).c_cnt >= 1
    assert dm.stats.metadata_bytes > 0


def test_geotp_multi_round_transaction_prepares_participants_not_in_final_round():
    env, net, dm, datasources, agents = build_geotp_cluster(rtts=(10.0, 100.0))
    # Round 1 touches ds0 and ds1; round 2 only ds0: ds1 must still prepare.
    spec = TransactionSpec(rounds=[
        [Statement(operation=update(0)), Statement(operation=update(1))],
        [Statement(operation=update(2))],
    ])
    spec.mark_last_statements()
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert datasources["ds1"].engine.read("p", "usertable", 1).value == {"v": 1}
    assert datasources["ds0"].engine.read("p", "usertable", 2).value == {"v": 1}


def test_geotp_admission_control_sheds_hopeless_transactions():
    config = GeoTPConfig(admission_max_retries=2, admission_backoff_ms=1.0)
    env, net, dm, datasources, agents = build_geotp_cluster(geotp_config=config)
    # Poison the footprint so key 0 looks like a hopeless hotspot.
    entry = dm.footprint.get_or_create(("usertable", 0))
    entry.t_cnt, entry.c_cnt, entry.a_cnt = 100, 0, 10
    spec = TransactionSpec.from_operations([update(0), update(1)])
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.ABORTED
    assert result.abort_reason is not None
    assert dm.admission.rejected_count == 1
