"""Local execution latency forecasting (§IV-C, Eq. 5–8).

The forecaster estimates, for a subtransaction about to be dispatched, how long
it will spend *inside* the data source (lock waits plus statement execution),
by summing the weighted-average latencies of the hot records it will touch.
The estimate is scaled down by a configurable factor before use so that an
over-prediction never turns the postponed subtransaction into the new
bottleneck (the mitigation discussed after Eq. 8).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.hotspot import HotspotFootprint

RecordId = Tuple[str, Hashable]


class LocalExecutionForecaster:
    """Predicts per-subtransaction local execution latency from hotspot stats."""

    def __init__(self, footprint: HotspotFootprint, scale: float = 1.0,
                 cap_ms: float = float("inf")):
        if scale < 0:
            raise ValueError("scale must be non-negative")
        if cap_ms < 0:
            raise ValueError("cap_ms must be non-negative")
        self.footprint = footprint
        self.scale = scale
        self.cap_ms = cap_ms
        self.predictions = 0

    def forecast(self, record_ids: Iterable[RecordId]) -> float:
        """dLEL for a subtransaction accessing ``record_ids`` (Eq. 5, scaled and capped)."""
        self.predictions += 1
        raw = self.footprint.forecast_local_latency(record_ids) * self.scale
        return min(raw, self.cap_ms)

    def forecast_per_participant(
            self, records_by_participant: Dict[str, List[RecordId]]) -> Dict[str, float]:
        """dLEL for each participant's subtransaction."""
        return {participant: self.forecast(records)
                for participant, records in records_by_participant.items()}

    def observe(self, record_ids: Iterable[RecordId], local_execution_ms: float,
                committed: bool = True) -> None:
        """Feed an observed local execution latency back into the statistics."""
        ids = list(record_ids)
        self.footprint.update_latency(ids, local_execution_ms)
        self.footprint.on_access_end(ids, committed)
