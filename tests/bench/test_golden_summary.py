"""Golden-output determinism tests for the simulation engine.

These snapshots were captured from the *unoptimized* engine (before the
slotted-event/fast-path work) and pin the exact ``ExperimentSummary`` a fixed
seed must produce: throughput, latency percentiles, abort counts and a SHA-256
digest over the full latency sample list.  Any engine refactor that changes
event ordering — however subtly — shifts at least one latency sample and trips
the digest, so optimizations cannot silently change simulation results.

If a *deliberate* semantic change lands (new protocol behaviour, different
default config), re-capture the snapshot with::

    PYTHONPATH=src python -m pytest tests/bench/test_golden_summary.py --no-header -q

after updating the constants below from the failure output — and say so in the
commit message.
"""

from __future__ import annotations

import hashlib

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.bench.scenarios import get_scenario
from repro.workloads.ycsb import YCSBConfig


def _snapshot(config: ExperimentConfig) -> dict:
    result = run_experiment(config)
    latency = result.latency
    samples = list(latency.samples)
    return {
        "throughput_tps": result.throughput_tps,
        "committed": result.committed,
        "aborted": result.aborted,
        "average_latency_ms": result.average_latency_ms,
        "p50": latency.p50 if len(latency) else None,
        "p99": latency.p99 if len(latency) else None,
        "abort_rate": result.abort_rate,
        "abort_reasons": result.collector.abort_reasons(),
        "n_samples": len(samples),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
    }


#: Exact summaries of the registered ``smoke`` scenario (seed 0), per system.
GOLDEN_SMOKE = {
    "ssp": {
        "throughput_tps": 17.0,
        "committed": 34,
        "aborted": 0,
        "average_latency_ms": 231.03529411764714,
        "p50": 150.60000000000014,
        "p99": 759.0,
        "abort_rate": 0.0,
        "abort_reasons": {},
        "n_samples": 34,
        "latency_sha256":
            "b366dc8c4bf21fe5e92d7e9769378d8b77f7216ebd84a426ba55ce2f7d52cc43",
    },
    "geotp": {
        "throughput_tps": 18.5,
        "committed": 37,
        "aborted": 0,
        "average_latency_ms": 205.33802056726134,
        "p50": 152.19999999999982,
        "p99": 540.8835520000001,
        "abort_rate": 0.0,
        "abort_reasons": {},
        "n_samples": 37,
        "latency_sha256":
            "be467fee84eae3fdaa08fda32dcbb3159e350c9d244af09a59358438226f9aad",
    },
}

#: Exact summary of a high-contention run (seed 7) that exercises lock waits,
#: lock-wait timeouts, admission aborts and the release/withdraw paths.
GOLDEN_CONTENDED = {
    "throughput_tps": 1.875,
    "committed": 15,
    "aborted": 17,
    "average_latency_ms": 3927.064053333334,
    "p50": 5073.8,
    "p99": 5488.048,
    "abort_rate": 0.53125,
    "abort_reasons": {"lock_timeout": 11, "admission_blocked": 6},
    "n_samples": 15,
    "latency_sha256":
        "af16b7148681cdaef3b0e658122f414121015d0464d126fdc612b6a06b42af10",
}


#: Exact summary of the same contended configuration under SSP (seed 7): the
#: registry refactor routes baseline wiring through plugin builders, and this
#: pin keeps a non-GeoTP coordinator byte-identical too (the smoke pins above
#: are too gentle to exercise SSP's lock-timeout and release paths).
GOLDEN_CONTENDED_SSP = {
    "throughput_tps": 1.5,
    "committed": 12,
    "aborted": 22,
    "average_latency_ms": 1210.3249999999996,
    "p50": 388.099999999999,
    "p99": 5542.732,
    "abort_rate": 0.6470588235294118,
    "abort_reasons": {"lock_timeout": 22},
    "n_samples": 12,
    "latency_sha256":
        "89139f3bfc760962c5e652b342db9aefaf48dc194387a7766afd9980f20c8b5a",
}


#: Exact summary of a medium-scale run (32 terminals, 10 s) — large enough to
#: trigger heap compaction and lock-timer churn, which the two snapshots above
#: are too small to reach (a stale-queue compaction bug once stalled exactly
#: this class of run while the small snapshots stayed green).
GOLDEN_SCALE = {
    "throughput_tps": 125.33333333333333,
    "committed": 1128,
    "aborted": 5,
    "average_latency_ms": 239.41741446690526,
    "p50": 151.4000000000001,
    "p99": 1444.40779804659,
    "abort_rate": 0.00441306266548985,
    "abort_reasons": {"admission_blocked": 5},
    "n_samples": 1128,
    "latency_sha256":
        "a60979226c947c592108393806e3432ada2abbdad717f2d242c0bd52a50a3b00",
}


def test_smoke_scenario_summary_is_byte_identical_to_snapshot():
    for point in get_scenario("smoke").sweep().points():
        system = point.params["system"]
        assert _snapshot(point.config) == GOLDEN_SMOKE[system], (
            f"smoke[{system}] diverged from the golden snapshot")


def _contended_config(system: str) -> ExperimentConfig:
    return ExperimentConfig(
        system=system, terminals=24, duration_ms=9_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=1.1, distributed_ratio=0.5,
                        records_per_node=100, preload_rows_per_node=100),
        seed=7)


def test_contended_run_summary_is_byte_identical_to_snapshot():
    assert _snapshot(_contended_config("geotp")) == GOLDEN_CONTENDED


def test_contended_ssp_run_summary_is_byte_identical_to_snapshot():
    assert _snapshot(_contended_config("ssp")) == GOLDEN_CONTENDED_SSP


def test_medium_scale_run_summary_is_byte_identical_to_snapshot():
    config = ExperimentConfig(
        system="geotp", terminals=32, duration_ms=10_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(skew=0.9, distributed_ratio=0.2))
    assert _snapshot(config) == GOLDEN_SCALE
