"""Focused unit tests for the geo-agent's forwarding and peer-abort behaviour."""

from repro import protocol
from repro.common import Operation, OpType
from repro.core import GeoAgent, GeoAgentConfig
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect


def build_agent_pair():
    """One data source with its geo-agent plus a fake coordinator endpoint."""
    env = Environment()
    net = Network(env)
    ds = DataSource(env, net, DataSourceConfig(name="ds0", dialect=MySQLDialect()))
    ds.load_table("usertable", {k: {"v": 0} for k in range(10)})
    agent = GeoAgent(env, net, GeoAgentConfig(name="agent-ds0", datasource="ds0"))
    net.set_link("agent-ds0", "ds0", ConstantLatency(0.5))
    net.set_link("dm", "agent-ds0", ConstantLatency(20))
    coordinator = net.interface("dm")
    return env, net, ds, agent, coordinator


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def test_agent_forwards_plain_xa_verbs_transparently():
    env, net, ds, agent, dm = build_agent_pair()
    replies = {}

    def driver():
        replies["ping"] = yield dm.request("agent-ds0", protocol.MSG_PING, {})
        replies["state"] = yield dm.request("agent-ds0", protocol.MSG_TXN_STATE,
                                            {"xid": "nope"})

    env.process(driver())
    env.run()
    assert replies["ping"]["status"] == "ok"
    assert replies["state"]["state"] == "unknown"
    assert agent.stats.forwarded == 2


def test_agent_execute_with_last_statement_sends_async_prepared_vote():
    env, net, ds, agent, dm = build_agent_pair()
    votes = []

    def vote_listener():
        while True:
            message = yield dm.receive()
            if message.msg_type == protocol.MSG_AGENT_PREPARE_RESULT:
                votes.append(message.payload["state"])

    def driver():
        result = yield dm.request("agent-ds0", protocol.MSG_AGENT_EXECUTE, {
            "xid": "g1.1", "global_txn_id": "g1", "operations": [update(1)],
            "auto_start": True, "is_last": True, "decentralized_prepare": True,
            "peers": ["agent-ds1"], "coordinator": "dm"})
        assert result.success

    env.process(vote_listener())
    env.process(driver())
    env.run(until=500)
    assert votes == [protocol.STATE_PREPARED]
    assert agent.stats.decentralized_prepares == 1


def test_agent_centralized_transaction_reports_idle_instead_of_preparing():
    env, net, ds, agent, dm = build_agent_pair()
    votes = []

    def vote_listener():
        while True:
            message = yield dm.receive()
            votes.append(message.payload["state"])

    def driver():
        yield dm.request("agent-ds0", protocol.MSG_AGENT_EXECUTE, {
            "xid": "g2.1", "global_txn_id": "g2", "operations": [update(2)],
            "auto_start": True, "is_last": True, "decentralized_prepare": True,
            "peers": [], "coordinator": "dm"})

    env.process(vote_listener())
    env.process(driver())
    env.run(until=500)
    assert votes == [protocol.STATE_IDLE]
    assert agent.stats.decentralized_prepares == 0


def test_peer_rollback_before_execute_poisons_the_transaction():
    env, net, ds, agent, dm = build_agent_pair()
    net.set_link("peer", "agent-ds0", ConstantLatency(2))
    peer = net.interface("peer")
    outcomes = {}

    def driver():
        # The peer's early-abort notification arrives before the execute.
        peer.send("agent-ds0", protocol.MSG_PEER_ROLLBACK,
                  {"global_txn_id": "g3", "coordinator": "dm"})
        yield env.timeout(10)
        result = yield dm.request("agent-ds0", protocol.MSG_AGENT_EXECUTE, {
            "xid": "g3.1", "global_txn_id": "g3", "operations": [update(3)],
            "auto_start": True, "is_last": True, "decentralized_prepare": True,
            "peers": ["peer"], "coordinator": "dm"})
        outcomes["result"] = result

    env.process(driver())
    env.run(until=500)
    result = outcomes["result"]
    assert not result.success
    # The poisoned transaction never executed, so the record is untouched.
    assert ds.engine.read("p", "usertable", 3).value == {"v": 0}
    assert agent.stats.peer_rollbacks_handled == 1


def test_agent_bookkeeping_is_bounded_by_xid_retention():
    env, net, ds, agent, dm = build_agent_pair()
    agent.config.xid_retention = 16

    def driver():
        for i in range(100):
            yield dm.request("agent-ds0", protocol.MSG_AGENT_EXECUTE, {
                "xid": f"g{i}.1", "global_txn_id": f"g{i}",
                "operations": [update(i % 10)], "auto_start": True,
                "is_last": False, "peers": [], "coordinator": "dm"})
            yield dm.request("agent-ds0", protocol.MSG_COMMIT_ONE_PHASE,
                             {"xid": f"g{i}.1"})

    env.process(driver())
    env.run()
    # 100 transactions flowed through; only the newest ids are remembered.
    assert len(agent._local_xids) <= 16
    assert len(agent._xid_order) <= 16
    assert "g99" in agent._local_xids and "g0" not in agent._local_xids


def test_peer_rollback_for_forgotten_id_takes_the_poison_path():
    env, net, ds, agent, dm = build_agent_pair()
    agent.config.xid_retention = 16

    def driver():
        # A rollback for an id this agent has never seen (or long forgot).
        net.interface("peer").send("agent-ds0", protocol.MSG_PEER_ROLLBACK,
                                   {"global_txn_id": "ancient",
                                    "coordinator": "dm"})
        yield env.timeout(50)

    net.set_link("peer", "agent-ds0", ConstantLatency(1))
    env.process(driver())
    env.run()
    assert "ancient" in agent._poisoned
    assert agent.stats.peer_rollbacks_handled == 1
