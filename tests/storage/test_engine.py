"""Unit tests for the storage engine and record types."""

from repro.storage import Record, StorageEngine


def test_record_apply_write_bumps_version():
    record = Record(key="k", value=1)
    assert record.version == 0
    record.apply_write(2, writer="t1")
    assert record.value == 2
    assert record.version == 1
    assert record.last_writer == "t1"


def test_record_copy_is_independent():
    record = Record(key="k", value=1)
    clone = record.copy()
    record.apply_write(2, "t")
    assert clone.value == 1
    assert clone.version == 0


def test_engine_load_and_read():
    engine = StorageEngine()
    engine.load("usertable", "user1", {"balance": 100})
    snapshot = engine.read("t1", "usertable", "user1")
    assert snapshot.value == {"balance": 100}
    assert snapshot.version == 1


def test_engine_read_missing_key_returns_none():
    engine = StorageEngine()
    assert engine.read("t1", "usertable", "ghost") is None


def test_buffered_write_visible_only_to_writer():
    engine = StorageEngine()
    engine.load("t", "k", "old")
    engine.buffer_write("writer", "t", "k", "new")
    assert engine.read("writer", "t", "k").value == "new"
    assert engine.read("other", "t", "k").value == "old"


def test_commit_writes_installs_values_and_bumps_version():
    engine = StorageEngine()
    engine.load("t", "k", "old")
    engine.buffer_write("txn", "t", "k", "new")
    count = engine.commit_writes("txn")
    assert count == 1
    snapshot = engine.read("anyone", "t", "k")
    assert snapshot.value == "new"
    assert snapshot.version == 2
    assert not engine.has_pending_writes("txn")


def test_discard_writes_leaves_committed_state_untouched():
    engine = StorageEngine()
    engine.load("t", "k", "old")
    engine.buffer_write("txn", "t", "k", "new")
    dropped = engine.discard_writes("txn")
    assert dropped == 1
    assert engine.read("anyone", "t", "k").value == "old"


def test_commit_writes_for_unknown_txn_is_noop():
    engine = StorageEngine()
    assert engine.commit_writes("ghost") == 0


def test_table_names_and_record_count():
    engine = StorageEngine()
    engine.load("a", 1, "x")
    engine.load("a", 2, "y")
    engine.load("b", 1, "z")
    assert set(engine.table_names()) == {"a", "b"}
    assert engine.record_count() == 3


def test_write_set_snapshot():
    engine = StorageEngine()
    engine.buffer_write("t", "tab", "k1", 1)
    engine.buffer_write("t", "tab", "k2", 2)
    assert engine.write_set("t") == {("tab", "k1"): 1, ("tab", "k2"): 2}


def test_table_contains_and_len():
    engine = StorageEngine()
    table = engine.create_table("t")
    table.put("k", 5)
    assert "k" in table
    assert len(table) == 1
    assert list(table.keys()) == ["k"]
