"""Per-phase latency breakdown (the Figure 6c reproduction)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class PhaseBreakdown:
    """Averages per-phase durations across many transactions."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._count = 0

    def record(self, phase_durations: Optional[Dict[str, float]]) -> None:
        """Add one transaction's phase timings."""
        if not phase_durations:
            return
        self._count += 1
        for phase, duration in phase_durations.items():
            self._totals[phase] = self._totals.get(phase, 0.0) + duration

    def record_many(self, breakdowns: Iterable[Optional[Dict[str, float]]]) -> None:
        """Add many transactions' phase timings."""
        for breakdown in breakdowns:
            self.record(breakdown)

    @property
    def transaction_count(self) -> int:
        """How many transactions contributed."""
        return self._count

    def average(self) -> Dict[str, float]:
        """Average milliseconds per phase across contributing transactions."""
        if self._count == 0:
            return {}
        return {phase: total / self._count for phase, total in self._totals.items()}

    def phases(self) -> List[str]:
        """Phase names seen so far."""
        return list(self._totals)
