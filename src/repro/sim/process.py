"""Generator-based processes for the simulation engine (facade).

The implementation lives in the engine kernel —
:mod:`repro.sim._kernel.process` (pure Python, source of truth) or its
mypyc-compiled twin — and is selected once per process by
:mod:`repro.sim.engine` from the ``REPRO_ENGINE`` environment variable.

See the kernel module for the design notes on run-to-first-yield spawning,
the ``yield <number>`` sleep fast path and the resume hot loop.
"""

from repro.sim.engine import process as _impl

Process = _impl.Process
_Wake = _impl._Wake
_WAKE = _impl._WAKE
_SleepEntry = _impl._SleepEntry

__all__ = ["Process"]
